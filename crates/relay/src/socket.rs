//! The datagram-socket abstraction the relay data path runs over.
//!
//! Everything in this crate that touches the network — the relay's data
//! and control loops, the transfer source, the receivers — speaks
//! [`DatagramSocket`] instead of `std::net::UdpSocket` directly. A plain
//! `UdpSocket` implements it by delegation; the chaos harness
//! ([`crate::chaos::FaultSocket`]) wraps one with deterministic seeded
//! Internet pathologies (drop/duplicate/reorder/delay/crash), so
//! integration tests can subject the *live* socket path to the paper's
//! loss experiments without leaving loopback.

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;

/// Largest number of datagrams moved per batched socket operation.
///
/// Matches [`ncvnf_sysnet::MAX_BATCH`] so one relay flush maps to one
/// `recvmmsg`/`sendmmsg` syscall.
pub const MAX_BATCH: usize = ncvnf_sysnet::MAX_BATCH;

/// Receive-side batch: fixed datagram slots plus per-slot metadata.
///
/// Allocated once per data thread and reused forever — at steady state
/// a [`DatagramSocket::recv_batch`] call touches no heap. Slot buffers
/// keep their full capacity; `meta` records the filled length and
/// source of each received datagram.
pub struct RecvBatch {
    bufs: Vec<Vec<u8>>,
    meta: Vec<(usize, SocketAddr)>,
    count: usize,
}

impl RecvBatch {
    /// A batch of `slots` datagram buffers of `buf_len` bytes each.
    #[must_use]
    pub fn new(slots: usize, buf_len: usize) -> Self {
        let slots = slots.clamp(1, MAX_BATCH);
        let placeholder: SocketAddr = ([0, 0, 0, 0], 0).into();
        Self {
            bufs: (0..slots).map(|_| vec![0u8; buf_len]).collect(),
            meta: vec![(0, placeholder); slots],
            count: 0,
        }
    }

    /// Number of datagrams the last `recv_batch` filled.
    #[must_use]
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the last `recv_batch` filled no datagrams.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Datagram `i` of the last fill: payload bytes and source address.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn get(&self, i: usize) -> (&[u8], SocketAddr) {
        assert!(i < self.count);
        let (len, src) = self.meta[i];
        (&self.bufs[i][..len], src)
    }

    /// Iterates over the filled datagrams.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], SocketAddr)> {
        (0..self.count).map(|i| self.get(i))
    }

    /// Appends a datagram by hand (test/bench harnesses and socket
    /// implementations that fill slots one at a time). Returns `false`
    /// when the batch is full.
    pub fn push(&mut self, bytes: &[u8], src: SocketAddr) -> bool {
        if self.count >= self.bufs.len() || bytes.len() > self.bufs[self.count].len() {
            return false;
        }
        self.bufs[self.count][..bytes.len()].copy_from_slice(bytes);
        self.meta[self.count] = (bytes.len(), src);
        self.count += 1;
        true
    }

    /// Empties the batch (slot capacity is retained).
    pub fn clear(&mut self) {
        self.count = 0;
    }

    /// Raw slot access for socket implementations: `(bufs, meta)`.
    /// Implementations fill slots `0..n` and then call
    /// [`Self::set_filled`]`(n)`.
    pub fn parts_mut(&mut self) -> (&mut [Vec<u8>], &mut [(usize, SocketAddr)]) {
        (&mut self.bufs, &mut self.meta)
    }

    /// Declares how many slots the socket implementation filled.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the slot count.
    pub fn set_filled(&mut self, n: usize) {
        assert!(n <= self.bufs.len());
        self.count = n;
    }
}

/// Send-side batch: datagrams serialized back-to-back into one arena,
/// each described by `(offset, len, destination)`.
///
/// Serializing once and fanning out by reference means a packet routed
/// to `k` next hops costs one serialization and `k` arena-range
/// segments — and the whole batch flushes in one `sendmmsg` on Linux.
#[derive(Debug, Default)]
pub struct SendBatch {
    arena: Vec<u8>,
    segs: Vec<(u32, u32, SocketAddr)>,
}

impl SendBatch {
    /// An empty send batch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Serializes one wire image via `write` (appending to the arena)
    /// and enqueues it for every address in `dests`.
    pub fn push_wire(&mut self, write: impl FnOnce(&mut Vec<u8>), dests: &[SocketAddr]) {
        let start = self.arena.len();
        write(&mut self.arena);
        let len = (self.arena.len() - start) as u32;
        if len == 0 {
            return;
        }
        for &dest in dests {
            self.segs.push((start as u32, len, dest));
        }
    }

    /// Copies pre-serialized `bytes` into the arena for every address
    /// in `dests`.
    pub fn push_bytes(&mut self, bytes: &[u8], dests: &[SocketAddr]) {
        self.push_wire(|arena| arena.extend_from_slice(bytes), dests);
    }

    /// Number of enqueued datagrams (serialized image × destination).
    #[must_use]
    pub fn len(&self) -> usize {
        self.segs.len()
    }

    /// Whether nothing is enqueued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// Iterates over enqueued datagrams as `(bytes, destination)`.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], SocketAddr)> {
        self.segs
            .iter()
            .map(|&(off, len, dest)| (&self.arena[off as usize..(off + len) as usize], dest))
    }

    /// Arena and segment views for batched socket implementations.
    #[must_use]
    pub fn parts(&self) -> (&[u8], &[(u32, u32, SocketAddr)]) {
        (&self.arena, &self.segs)
    }

    /// Empties the batch (arena/segment capacity is retained).
    pub fn clear(&mut self) {
        self.arena.clear();
        self.segs.clear();
    }
}

/// An unconnected datagram endpoint (the `UdpSocket` API subset the relay
/// uses).
pub trait DatagramSocket: Send + Sync {
    /// Sends `buf` to `addr`; returns bytes sent.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    fn send_to(&self, buf: &[u8], addr: SocketAddr) -> io::Result<usize>;

    /// Receives one datagram into `buf`; returns size and sender.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (including read-timeout expiry as
    /// `WouldBlock`/`TimedOut`).
    fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)>;

    /// The local address the socket is bound to.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    fn local_addr(&self) -> io::Result<SocketAddr>;

    /// Sets the blocking-receive timeout.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()>;

    /// Receives up to a batch of datagrams: blocks (under the read
    /// timeout) for the first, then takes whatever else is immediately
    /// available. Returns the number received.
    ///
    /// The default implementation receives exactly one datagram via
    /// [`Self::recv_from`], so every existing socket (including the
    /// chaos harness) is batch-capable with unchanged semantics;
    /// `UdpSocket` overrides it with a single `recvmmsg` on Linux.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; timeout expiry surfaces as
    /// `WouldBlock`/`TimedOut` with the batch left empty.
    fn recv_batch(&self, batch: &mut RecvBatch) -> io::Result<usize> {
        batch.clear();
        let (bufs, meta) = batch.parts_mut();
        let (n, src) = self.recv_from(&mut bufs[0])?;
        meta[0] = (n, src);
        batch.set_filled(1);
        Ok(1)
    }

    /// Sends every datagram in `batch`; returns how many went out.
    ///
    /// Per-datagram failures are tolerated (skipped), matching UDP's
    /// fire-and-forget contract — a vanished loopback peer must not
    /// stall the rest of the flush. The default implementation loops
    /// [`Self::send_to`]; `UdpSocket` overrides it with `sendmmsg` on
    /// Linux.
    ///
    /// # Errors
    ///
    /// Only batch-level failures (e.g. an unusable socket) are raised.
    fn send_batch(&self, batch: &SendBatch) -> io::Result<usize> {
        let mut sent = 0;
        for (bytes, dest) in batch.iter() {
            if self.send_to(bytes, dest).is_ok() {
                sent += 1;
            }
        }
        Ok(sent)
    }
}

impl DatagramSocket for UdpSocket {
    fn send_to(&self, buf: &[u8], addr: SocketAddr) -> io::Result<usize> {
        UdpSocket::send_to(self, buf, addr)
    }

    fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        UdpSocket::recv_from(self, buf)
    }

    fn local_addr(&self) -> io::Result<SocketAddr> {
        UdpSocket::local_addr(self)
    }

    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        UdpSocket::set_read_timeout(self, dur)
    }

    fn recv_batch(&self, batch: &mut RecvBatch) -> io::Result<usize> {
        if !ncvnf_sysnet::batched_syscalls_available() {
            // Portable fallback: one datagram per call.
            batch.clear();
            let (bufs, meta) = batch.parts_mut();
            let (n, src) = UdpSocket::recv_from(self, &mut bufs[0])?;
            meta[0] = (n, src);
            batch.set_filled(1);
            return Ok(1);
        }
        batch.clear();
        let (bufs, meta) = batch.parts_mut();
        let got = ncvnf_sysnet::recv_batch(self, bufs, meta)?;
        batch.set_filled(got);
        Ok(got)
    }

    fn send_batch(&self, batch: &SendBatch) -> io::Result<usize> {
        if !ncvnf_sysnet::batched_syscalls_available() {
            let mut sent = 0;
            for (bytes, dest) in batch.iter() {
                if UdpSocket::send_to(self, bytes, dest).is_ok() {
                    sent += 1;
                }
            }
            return Ok(sent);
        }
        let (arena, segs) = batch.parts();
        ncvnf_sysnet::send_batch(self, arena, segs)
    }
}

impl<S: DatagramSocket + ?Sized> DatagramSocket for &S {
    fn send_to(&self, buf: &[u8], addr: SocketAddr) -> io::Result<usize> {
        (**self).send_to(buf, addr)
    }

    fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        (**self).recv_from(buf)
    }

    fn local_addr(&self) -> io::Result<SocketAddr> {
        (**self).local_addr()
    }

    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        (**self).set_read_timeout(dur)
    }

    fn recv_batch(&self, batch: &mut RecvBatch) -> io::Result<usize> {
        (**self).recv_batch(batch)
    }

    fn send_batch(&self, batch: &SendBatch) -> io::Result<usize> {
        (**self).send_batch(batch)
    }
}
