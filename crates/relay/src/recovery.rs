//! Feedback-driven loss recovery for object transfers.
//!
//! The paper measures how long a receiver "has to wait for
//! retransmissions ... to collect all 4 packets for decoding a
//! generation" under loss; this module implements that protocol on the
//! real-socket path:
//!
//! * the receiver ([`ReliableReceiver`]) ACKs each generation as it
//!   decodes and NACKs generations that stall past a decode timeout,
//!   using the `ncvnf-dataplane` feedback codec (sent straight back to
//!   the source — feedback does not traverse the coding relays);
//! * the source ([`send_object_reliable`]) answers NACKs with *fresh*
//!   random combinations (innovative with overwhelming probability, so
//!   it never needs to know which packets were lost), under bounded
//!   retries with exponential backoff per generation;
//! * an [`AdaptiveRedundancy`] AIMD controller raises the per-generation
//!   redundancy while NACKs arrive and decays it once the path is clean,
//!   replacing the static NCr choice on the live path.
//!
//! [`reliable_chain`] assembles the whole thing — source → fault-injected
//! relays → receiver — for the chaos and failover experiments.

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver as ChanReceiver};
use rand::rngs::StdRng;
use rand::SeedableRng;

use ncvnf_control::signal::{Signal, VnfRoleWire};
use ncvnf_control::ForwardingTable;
use ncvnf_dataplane::{Feedback, FeedbackKind, FEEDBACK_MAGIC};
use ncvnf_obs::{Snapshot, TraceKind};
use ncvnf_rlnc::window::{WindowConfig, WindowDecoder, WindowEncoder, WindowOutcome};
use ncvnf_rlnc::{
    wire_kind, AdaptiveRedundancy, AimdConfig, CodedPacket, ObjectDecoder, ObjectEncoder,
    PayloadPool, SessionId, WindowAck, WindowPacketView, WireKind,
};

use crate::chaos::{FaultConfig, FaultSocket, FaultStats};
use crate::metrics::{RecoveryMetrics, TransferObs};
use crate::node::{RelayConfig, RelayNode, RelayStats};
use crate::socket::DatagramSocket;
use crate::transfer::TransferConfig;

/// Tuning of the feedback/retransmission protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Receiver: a generation silent (no innovative packet) this long is
    /// NACKed.
    pub decode_timeout: Duration,
    /// Receiver: minimum spacing between NACKs for the same generation.
    pub nack_interval: Duration,
    /// Source: retransmission rounds per generation before giving up.
    pub max_retries: u32,
    /// Source: wait after retry `k` before honouring another NACK for
    /// the same generation doubles from this base (exponential backoff).
    pub backoff_base: Duration,
    /// Source: abandon the repair loop after this long without any
    /// feedback (receiver death must not hang the source forever).
    pub idle_timeout: Duration,
    /// Source: base pause imposed by one `Congestion` frame, scaled by
    /// the reported load percent (0.5×–4×). Both the paced pass and the
    /// repair bursts hold off until the pause expires.
    pub congestion_pause: Duration,
    /// AIMD redundancy tuning (floor is overridden by the transfer's
    /// static policy).
    pub aimd: AimdConfig,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            decode_timeout: Duration::from_millis(40),
            nack_interval: Duration::from_millis(40),
            max_retries: 8,
            backoff_base: Duration::from_millis(20),
            idle_timeout: Duration::from_secs(2),
            congestion_pause: Duration::from_millis(5),
            aimd: AimdConfig::default(),
        }
    }
}

/// Counters from one reliable transfer. The source fills the
/// received/retransmit side, the receiver the sent side.
///
/// Like [`RelayStats`], this is a typed *view*: the protocol records
/// into `recovery.*` registry cells (a [`RecoveryMetrics`] bundle inside
/// the caller's [`TransferObs`]) and each call returns the delta it
/// contributed. Controllers derive their health record from the registry
/// snapshot via `DataplaneHealth::from_snapshot`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Coded packets sent in the initial paced pass (source).
    pub initial_packets: u64,
    /// Fresh coded packets sent in response to NACKs (source).
    pub retransmit_packets: u64,
    /// Retransmission rounds: NACKs honoured with a packet burst
    /// (source).
    pub retransmit_rounds: u64,
    /// NACKs emitted (receiver).
    pub nacks_sent: u64,
    /// NACKs received and not ignored as stale/unsent (source).
    pub nacks_received: u64,
    /// ACKs emitted (receiver).
    pub acks_sent: u64,
    /// ACKs received (source).
    pub acks_received: u64,
    /// Generations that needed at least one retransmission round and
    /// still closed out (source).
    pub generations_recovered: u64,
    /// Highest AIMD redundancy reached, in whole extra packets (source).
    pub peak_extra: u32,
    /// Generations never ACKed when the source gave up (0 on success).
    pub unrecovered: u64,
}

/// Reads the current cumulative `recovery.*` cell values as a typed view
/// (`peak_extra` is gauge-derived and left 0 here; callers fill it from
/// the AIMD controller).
fn recovery_counts(m: &RecoveryMetrics) -> RecoveryStats {
    RecoveryStats {
        initial_packets: m.initial_packets.get(),
        retransmit_packets: m.retransmit_packets.get(),
        retransmit_rounds: m.retransmit_rounds.get(),
        nacks_sent: m.nacks_sent.get(),
        nacks_received: m.nacks_received.get(),
        acks_sent: m.acks_sent.get(),
        acks_received: m.acks_received.get(),
        generations_recovered: m.generations_recovered.get(),
        peak_extra: 0,
        unrecovered: m.unrecovered.get(),
    }
}

/// Field-wise `after - before`: the delta one call contributed to shared
/// cumulative cells. Source-side and receiver-side fields are written by
/// disjoint parties, so deltas stay exact even when both ends share one
/// registry.
fn recovery_delta(before: &RecoveryStats, after: &RecoveryStats) -> RecoveryStats {
    RecoveryStats {
        initial_packets: after.initial_packets - before.initial_packets,
        retransmit_packets: after.retransmit_packets - before.retransmit_packets,
        retransmit_rounds: after.retransmit_rounds - before.retransmit_rounds,
        nacks_sent: after.nacks_sent - before.nacks_sent,
        nacks_received: after.nacks_received - before.nacks_received,
        acks_sent: after.acks_sent - before.acks_sent,
        acks_received: after.acks_received - before.acks_received,
        generations_recovered: after.generations_recovered - before.generations_recovered,
        peak_extra: 0,
        unrecovered: after.unrecovered - before.unrecovered,
    }
}

/// Source-side backpressure state, driven by `Congestion` feedback
/// frames (kind 5) from overloaded relays downstream.
#[derive(Debug, Default)]
struct Backpressure {
    /// No data leaves the source before this instant.
    pause_until: Option<Instant>,
}

impl Backpressure {
    /// Extends the pause window (never shortens it).
    fn pause_for(&mut self, pause: Duration) {
        let until = Instant::now() + pause;
        self.pause_until = Some(self.pause_until.map_or(until, |t| t.max(until)));
    }

    /// True while sends should hold off; clears the window once it
    /// expires.
    fn paused(&mut self, now: Instant) -> bool {
        match self.pause_until {
            Some(t) if now < t => true,
            Some(_) => {
                self.pause_until = None;
                false
            }
            None => false,
        }
    }

    /// Sleeps out whatever remains of the pause window.
    fn wait_out(&mut self) {
        if let Some(t) = self.pause_until.take() {
            let now = Instant::now();
            if t > now {
                std::thread::sleep(t - now);
            }
        }
    }
}

/// Per-generation bookkeeping on the source side.
struct GenState {
    acked: bool,
    /// Packets requested by the latest unanswered NACK.
    pending_nack: Option<u16>,
    retries: u32,
    /// Earliest instant another NACK will be honoured (backoff gate).
    next_retry: Instant,
}

/// Streams `object` like [`crate::send_object`], then keeps answering
/// receiver feedback until every generation is ACKed (or retries/idle
/// budgets run out). Feedback arrives on `socket` itself, so the caller
/// binds it and tells the receiver its address.
///
/// Everything the protocol does is recorded into `obs` (the
/// `recovery.*` and `rlnc.redundancy.*` metrics plus repair-burst trace
/// events); the returned [`RecoveryStats`] is the delta this call
/// contributed.
///
/// # Errors
///
/// Propagates socket errors from the data path (feedback I/O errors are
/// absorbed).
///
/// # Panics
///
/// Panics if `next_hops` is empty or `object` does not frame.
pub fn send_object_reliable<S: DatagramSocket>(
    socket: &S,
    config: &TransferConfig,
    recovery: &RecoveryConfig,
    object: &[u8],
    next_hops: &[SocketAddr],
    obs: &TransferObs,
) -> io::Result<RecoveryStats> {
    assert!(!next_hops.is_empty(), "need at least one next hop");
    let encoder =
        ObjectEncoder::new(config.generation, config.session, object).expect("valid object");
    let generations = encoder.generations();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut adaptive = AdaptiveRedundancy::from_policy(config.redundancy, recovery.aimd);
    let m = obs.recovery.clone();
    let before = recovery_counts(&m);
    let now = Instant::now();
    let mut gens: Vec<GenState> = (0..generations)
        .map(|_| GenState {
            acked: false,
            pending_nack: None,
            retries: 0,
            next_retry: now,
        })
        .collect();

    let blocks = config.generation.blocks_per_generation();
    let wire_bytes = config.generation.packet_len() + 28;
    let gap = Duration::from_secs_f64(wire_bytes as f64 * 8.0 / config.rate_bps);
    socket.set_read_timeout(Some(Duration::from_millis(1)))?;

    // Initial paced pass, draining feedback between generations so early
    // ACKs shrink the redundancy (and Congestion frames pause the
    // burst) while the transfer is still going.
    let mut bp = Backpressure::default();
    let start = Instant::now();
    let mut sent = 0u64;
    for g in 0..generations {
        bp.wait_out();
        let per_gen = adaptive.policy().packets_per_generation(blocks);
        for _ in 0..per_gen {
            let pkt = encoder.coded_packet(g, &mut rng);
            let hop = next_hops[(sent as usize) % next_hops.len()];
            socket.send_to(&pkt.to_bytes(), hop)?;
            sent += 1;
            let target = gap * (sent as u32);
            let elapsed = start.elapsed();
            if target > elapsed {
                std::thread::sleep(target - elapsed);
            }
        }
        drain_feedback(
            socket,
            config,
            recovery,
            g + 1,
            &mut gens,
            &mut adaptive,
            &mut bp,
            &m,
        );
    }
    m.initial_packets.add(sent);

    // Repair loop: honour NACKs with fresh combinations until everything
    // is ACKed or the budgets run out.
    socket.set_read_timeout(Some(Duration::from_millis(5)))?;
    let mut last_feedback = Instant::now();
    let mut retransmitted = 0u64;
    let mut buf = [0u8; 64];
    while gens.iter().any(|g| !g.acked) {
        match socket.recv_from(&mut buf) {
            Ok((n, _)) => {
                if absorb_feedback(
                    &buf[..n],
                    config,
                    recovery,
                    generations,
                    &mut gens,
                    &mut adaptive,
                    &mut bp,
                    &m,
                ) {
                    last_feedback = Instant::now();
                }
            }
            Err(ref e) if is_timeout(e) => {}
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
        let now = Instant::now();
        // Backpressure holds the repair bursts too: an overloaded relay
        // gains nothing from retransmissions it would shed.
        let paused = bp.paused(now);
        let mut progress_possible = false;
        for (g, st) in gens.iter_mut().enumerate() {
            if st.acked {
                continue;
            }
            if st.retries < recovery.max_retries {
                progress_possible = true;
            }
            if paused
                || st.pending_nack.is_none()
                || st.retries >= recovery.max_retries
                || now < st.next_retry
            {
                continue;
            }
            let want = st.pending_nack.take().expect("checked above") as usize;
            let burst = want.max(1) + adaptive.policy().extra() as usize;
            for _ in 0..burst {
                let pkt = encoder.coded_packet(g as u64, &mut rng);
                let hop = next_hops[(retransmitted as usize) % next_hops.len()];
                let _ = socket.send_to(&pkt.to_bytes(), hop);
                retransmitted += 1;
            }
            m.retransmit_packets.add(burst as u64);
            m.trace.push(TraceKind::RepairBurst, g as u64, burst as u64);
            st.retries += 1;
            m.retransmit_rounds.inc();
            // Exponential backoff: retry k waits base * 2^(k-1) before
            // honouring the next NACK for this generation.
            let shift = (st.retries - 1).min(16);
            let backoff = recovery.backoff_base * (1u32 << shift);
            m.backoff_ns.record(backoff.as_nanos() as u64);
            st.next_retry = now + backoff;
        }
        if !progress_possible && gens.iter().all(|g| g.pending_nack.is_none()) {
            break; // every open generation has exhausted its retries
        }
        if last_feedback.elapsed() >= recovery.idle_timeout {
            break; // receiver went silent
        }
    }
    m.unrecovered
        .add(gens.iter().filter(|g| !g.acked).count() as u64);
    // Publish where the AIMD controller ended up (and peaked) as gauges.
    obs.rlnc.observe_redundancy(&adaptive);
    let mut stats = recovery_delta(&before, &recovery_counts(&m));
    stats.peak_extra = adaptive.peak_extra().round() as u32;
    Ok(stats)
}

/// Non-blocking-ish drain of queued feedback during the initial pass.
#[allow(clippy::too_many_arguments)]
fn drain_feedback<S: DatagramSocket>(
    socket: &S,
    config: &TransferConfig,
    recovery: &RecoveryConfig,
    gens_sent: u64,
    gens: &mut [GenState],
    adaptive: &mut AdaptiveRedundancy,
    bp: &mut Backpressure,
    metrics: &RecoveryMetrics,
) {
    let mut buf = [0u8; 64];
    while let Ok((n, _)) = socket.recv_from(&mut buf) {
        absorb_feedback(
            &buf[..n],
            config,
            recovery,
            gens_sent,
            gens,
            adaptive,
            bp,
            metrics,
        );
    }
}

/// Applies one feedback frame to the source state. Returns true if the
/// frame was valid feedback for this session.
#[allow(clippy::too_many_arguments)]
fn absorb_feedback(
    frame: &[u8],
    config: &TransferConfig,
    recovery: &RecoveryConfig,
    gens_sent: u64,
    gens: &mut [GenState],
    adaptive: &mut AdaptiveRedundancy,
    bp: &mut Backpressure,
    metrics: &RecoveryMetrics,
) -> bool {
    let Ok(fb) = Feedback::from_bytes(frame) else {
        return false;
    };
    if fb.kind == FeedbackKind::Congestion {
        // Handled before the generation guard: a Congestion frame's
        // generation field carries the reporter's load percent, not a
        // generation index. Session 0 is the wildcard for sheds the
        // relay could not attribute.
        if fb.session != config.session && fb.session.value() != 0 {
            return false;
        }
        // Multiplicative decrease plus a send pause scaled by how
        // overloaded the reporter says it is.
        adaptive.on_congestion();
        let scale = (f64::from(fb.load_pct()) / 100.0).clamp(0.5, 4.0);
        let pause = recovery.congestion_pause.mul_f64(scale);
        bp.pause_for(pause);
        metrics.congestion_events.inc();
        metrics.congestion_window.set(f64::from(fb.load_pct()));
        metrics.backpressure_ns.record(pause.as_nanos() as u64);
        return true;
    }
    if fb.session != config.session || fb.generation >= gens.len() as u64 {
        // Heartbeats and wake requests address the controller, not this
        // source; consume them without treating them as recovery state.
        return matches!(fb.kind, FeedbackKind::Heartbeat | FeedbackKind::Wake);
    }
    let g = &mut gens[fb.generation as usize];
    match fb.kind {
        FeedbackKind::GenerationAck => {
            metrics.acks_received.inc();
            if !g.acked {
                g.acked = true;
                g.pending_nack = None;
                if g.retries == 0 {
                    adaptive.on_clean();
                } else {
                    metrics.generations_recovered.inc();
                }
            }
            true
        }
        FeedbackKind::RetransmitRequest => {
            // A NACK for a generation the initial pass has not reached
            // yet says nothing about loss — ignore it entirely (it must
            // not burn this generation's retry budget).
            if fb.generation >= gens_sent || g.acked {
                return true;
            }
            metrics.nacks_received.inc();
            adaptive.on_loss(fb.count);
            g.pending_nack = Some(g.pending_nack.unwrap_or(0).max(fb.count));
            true
        }
        FeedbackKind::Heartbeat | FeedbackKind::Wake => true,
        // Congestion frames are consumed before the generation-bounds
        // guard above; the generation field carries a load percent here.
        FeedbackKind::Congestion => unreachable!("congestion handled before the generation guard"),
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Counters from one reliable sliding-window stream (source side).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowSendStats {
    /// Systematic data packets sent (one per symbol, first pass).
    pub data_packets: u64,
    /// Coded repair packets sent answering NACK bursts from the live
    /// window.
    pub repair_packets: u64,
    /// Cumulative acks received.
    pub acks_received: u64,
    /// Acks carrying `repair_wanted > 0` (window NACKs) received.
    pub nacks_received: u64,
    /// Whether every symbol was acknowledged before the budgets ran out.
    pub completed: bool,
}

/// Streams `data` over a sliding window: each symbol goes out verbatim
/// (systematic, width-1), and receiver NACKs — [`WindowAck`] frames with
/// `repair_wanted > 0` — are answered with that many fresh random
/// combinations of exactly the *unacknowledged* symbols. Unlike
/// [`send_object_reliable`], loss never stalls a whole generation:
/// repair coverage tracks the live window as acks slide it forward.
///
/// Feedback arrives on `socket` itself; metrics land in `obs` under the
/// same `recovery.*` names as the generational protocol
/// (`initial_packets` = systematic pass, `retransmit_packets` = repair
/// bursts).
///
/// # Errors
///
/// Propagates socket errors from the data path.
///
/// # Panics
///
/// Panics if `next_hops` or `data` is empty.
pub fn send_window_reliable<S: DatagramSocket>(
    socket: &S,
    window: WindowConfig,
    session: SessionId,
    recovery: &RecoveryConfig,
    data: &[u8],
    next_hops: &[SocketAddr],
    obs: &TransferObs,
) -> io::Result<WindowSendStats> {
    assert!(!next_hops.is_empty(), "need at least one next hop");
    assert!(!data.is_empty(), "nothing to stream");
    let m = obs.recovery.clone();
    let mut enc = WindowEncoder::new(window, session);
    let mut rng = StdRng::seed_from_u64(0x5EED_u64 ^ u64::from(session.value()));
    let mut pool = PayloadPool::new();
    let mut stats = WindowSendStats::default();
    let mut chunks = data.chunks(window.symbol_size());
    let total = data.len().div_ceil(window.symbol_size()) as u64;
    let mut sent_all = false;
    let mut last_feedback = Instant::now();
    let mut buf = [0u8; 64];
    socket.set_read_timeout(Some(Duration::from_millis(1)))?;
    loop {
        // Fill the window and emit each new symbol systematically.
        while !sent_all && enc.live() < window.capacity() {
            let Some(chunk) = chunks.next() else {
                sent_all = true;
                break;
            };
            let idx = enc.push(chunk).expect("window has room");
            let pkt = enc
                .systematic_packet_pooled(idx, &mut pool)
                .expect("symbol is live");
            let hop = next_hops[(stats.data_packets as usize) % next_hops.len()];
            socket.send_to(&pkt.to_bytes(), hop)?;
            stats.data_packets += 1;
        }
        if sent_all && enc.live() == 0 {
            stats.completed = true;
            break;
        }
        // Drain feedback: cumulative acks slide the window; NACKs ask
        // for repair bursts from whatever is still unacknowledged.
        match socket.recv_from(&mut buf) {
            Ok((n, _)) => {
                if wire_kind(&buf[..n]) == Some(WireKind::WindowAck) {
                    if let Ok(ack) = WindowAck::parse(&buf[..n]) {
                        if ack.session == session {
                            last_feedback = Instant::now();
                            stats.acks_received += 1;
                            m.acks_received.inc();
                            enc.handle_ack(ack.cumulative);
                            if ack.cumulative >= total {
                                stats.completed = true;
                                break;
                            }
                            if ack.repair_wanted > 0 && enc.live() > 0 {
                                stats.nacks_received += 1;
                                m.nacks_received.inc();
                                let burst = usize::from(ack.repair_wanted);
                                for _ in 0..burst {
                                    let pkt = enc
                                        .coded_packet_pooled(&mut rng, &mut pool)
                                        .expect("window is non-empty");
                                    let hop = next_hops
                                        [(stats.repair_packets as usize) % next_hops.len()];
                                    let _ = socket.send_to(&pkt.to_bytes(), hop);
                                    stats.repair_packets += 1;
                                }
                                m.retransmit_packets.add(burst as u64);
                                m.retransmit_rounds.inc();
                                m.trace
                                    .push(TraceKind::RepairBurst, enc.base(), burst as u64);
                            }
                        }
                    }
                }
            }
            Err(ref e) if is_timeout(e) => {}
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
        if last_feedback.elapsed() >= recovery.idle_timeout {
            break; // receiver went silent
        }
    }
    m.initial_packets.add(stats.data_packets);
    Ok(stats)
}

/// Outcome of a reliable sliding-window receive.
#[derive(Debug)]
pub struct WindowStreamReport {
    /// The delivered symbols, concatenated in order (zero-padded tail
    /// included — the stream layer does not know the original length).
    pub data: Vec<u8>,
    /// Data packets received (systematic + repair).
    pub packets: u64,
    /// Cumulative acks sent (including NACK-bearing ones).
    pub acks_sent: u64,
    /// Acks sent with `repair_wanted > 0`.
    pub nacks_sent: u64,
    /// Wall-clock duration until the last symbol was delivered.
    pub elapsed: Duration,
}

/// A background receiver for a sliding-window stream: delivers symbols
/// in order, acks cumulatively after every delivery, and NACKs gaps —
/// an ack with `repair_wanted` set to exactly the number of missing
/// symbols blocking the delivery cursor.
pub struct WindowStreamReceiver {
    /// The UDP address the receiver listens on.
    pub addr: SocketAddr,
    done: ChanReceiver<WindowStreamReport>,
    running: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl WindowStreamReceiver {
    /// Spawns a receiver expecting `total_symbols` in-order symbols,
    /// sending [`WindowAck`] frames to `source`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn spawn(
        window: WindowConfig,
        session: SessionId,
        total_symbols: u64,
        source: SocketAddr,
        obs: &TransferObs,
    ) -> io::Result<WindowStreamReceiver> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        socket.set_read_timeout(Some(Duration::from_millis(5)))?;
        let addr = socket.local_addr()?;
        let (tx, rx) = bounded(1);
        let running = Arc::new(AtomicBool::new(true));
        let run = Arc::clone(&running);
        let m = obs.recovery.clone();
        let nack_interval = Duration::from_millis(10);
        let thread = std::thread::spawn(move || {
            let mut dec = WindowDecoder::new(window);
            let mut data = Vec::new();
            let mut packets = 0u64;
            let mut acks_sent = 0u64;
            let mut nacks_sent = 0u64;
            // Highest absolute symbol index referenced by any packet —
            // the NACK sizing baseline: everything at or below it was
            // sent, so `undelivered - pending_rank` packets are missing.
            let mut max_seen: Option<u64> = None;
            let mut last_arrival: Option<Instant> = None;
            let mut last_nack: Option<Instant> = None;
            let start = Instant::now();
            let mut buf = vec![0u8; 65536];
            while run.load(Ordering::Relaxed) && dec.delivered() < total_symbols {
                match socket.recv_from(&mut buf) {
                    Ok((n, _)) => {
                        let Ok(view) = WindowPacketView::parse(&buf[..n]) else {
                            continue;
                        };
                        if view.session() != session {
                            continue;
                        }
                        packets += 1;
                        last_arrival = Some(Instant::now());
                        let top = view.base() + view.coefficients().len() as u64 - 1;
                        max_seen = Some(max_seen.map_or(top, |m: u64| m.max(top)));
                        let outcome = dec.receive(view.base(), view.coefficients(), view.payload());
                        if let Ok(WindowOutcome::Delivered { payloads, .. }) = outcome {
                            for p in payloads {
                                data.extend_from_slice(&p);
                            }
                            let ack = WindowAck {
                                session,
                                cumulative: dec.delivered(),
                                repair_wanted: 0,
                            };
                            let _ = socket.send_to(&ack.encode(), source);
                            acks_sent += 1;
                            m.acks_sent.inc();
                        }
                    }
                    Err(ref e) if is_timeout(e) => {}
                    Err(_) => std::thread::sleep(Duration::from_millis(1)),
                }
                // NACK scan: a gap (undelivered symbols at or below the
                // highest index seen) that stalls past the decode
                // timeout asks for exactly the missing count.
                let now = Instant::now();
                let stalled = last_arrival
                    .is_some_and(|t| now.duration_since(t) >= Duration::from_millis(10));
                // Tail losses leave no trace in `max_seen`, so any stall
                // short of completion asks for at least one repair.
                let missing = max_seen
                    .map(|m| (m + 1 - dec.delivered()).saturating_sub(dec.pending_rank() as u64))
                    .unwrap_or(0)
                    .max(u64::from(stalled));
                if stalled
                    && missing > 0
                    && last_nack.is_none_or(|t| now.duration_since(t) >= nack_interval)
                {
                    let ack = WindowAck {
                        session,
                        cumulative: dec.delivered(),
                        repair_wanted: missing.min(255) as u8,
                    };
                    let _ = socket.send_to(&ack.encode(), source);
                    acks_sent += 1;
                    nacks_sent += 1;
                    m.nacks_sent.inc();
                    last_nack = Some(now);
                }
            }
            // Final ack so the source's window closes out; repeated a
            // few times because a dropped final ack would otherwise
            // leave the source waiting out its idle timeout.
            let ack = WindowAck {
                session,
                cumulative: dec.delivered(),
                repair_wanted: 0,
            };
            for _ in 0..3 {
                let _ = socket.send_to(&ack.encode(), source);
            }
            let _ = tx.send(WindowStreamReport {
                data,
                packets,
                acks_sent: acks_sent + 1,
                nacks_sent,
                elapsed: start.elapsed(),
            });
        });
        Ok(WindowStreamReceiver {
            addr,
            done: rx,
            running,
            thread: Some(thread),
        })
    }

    /// Waits up to `timeout` for the stream to finish.
    pub fn wait(mut self, timeout: Duration) -> Option<WindowStreamReport> {
        let report = self.done.recv_timeout(timeout).ok();
        self.running.store(false, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        report
    }
}

/// Outcome of a reliable receive.
#[derive(Debug)]
pub struct ReliableReport {
    /// The decoded object (empty if incomplete at shutdown).
    pub object: Vec<u8>,
    /// Data packets received.
    pub packets: u64,
    /// Wall-clock duration until completion.
    pub elapsed: Duration,
    /// The receiver-side feedback counters.
    pub stats: RecoveryStats,
}

/// A background receiver that ACKs decoded generations and NACKs stalled
/// ones back to the source.
pub struct ReliableReceiver {
    /// The UDP address the receiver listens on.
    pub addr: SocketAddr,
    done: ChanReceiver<ReliableReport>,
    running: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ReliableReceiver {
    /// Spawns a receiver expecting `generations` generations, sending
    /// feedback to `source`. Feedback counters, decode-progress metrics
    /// and `generation_decoded` trace events are recorded into `obs`;
    /// the report's [`RecoveryStats`] is this receiver's delta.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn spawn(
        config: &TransferConfig,
        recovery: &RecoveryConfig,
        generations: u64,
        source: SocketAddr,
        obs: &TransferObs,
    ) -> io::Result<ReliableReceiver> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        socket.set_read_timeout(Some(Duration::from_millis(10)))?;
        let addr = socket.local_addr()?;
        let (tx, rx) = bounded(1);
        let running = Arc::new(AtomicBool::new(true));
        let session = config.session;
        let generation = config.generation;
        let recovery = *recovery;
        let obs = obs.clone();
        let run = Arc::clone(&running);
        let thread = std::thread::spawn(move || {
            let blocks = generation.blocks_per_generation();
            let mut decoder = ObjectDecoder::new(generation, generations);
            let m = obs.recovery.clone();
            let before = recovery_counts(&m);
            // Packets that arrived per generation, reported into the
            // codec's decode histogram when the generation closes.
            let mut gen_packets = vec![0u64; generations as usize];
            let mut packets = 0u64;
            let start = Instant::now();
            // A generation becomes NACK-eligible once its `last_event`
            // is set: on its first packet, when a later generation is
            // seen (in-order source ⇒ it was sent), or on a global
            // stall.
            let mut last_event: Vec<Option<Instant>> = vec![None; generations as usize];
            let mut last_nack: Vec<Option<Instant>> = vec![None; generations as usize];
            let mut acked = vec![false; generations as usize];
            let mut last_arrival: Option<Instant> = None;
            let mut buf = vec![0u8; 65536];
            while run.load(Ordering::Relaxed) {
                match socket.recv_from(&mut buf) {
                    Ok((n, _)) => {
                        if n > 0 && buf[0] == FEEDBACK_MAGIC {
                            continue; // stray feedback is not data
                        }
                        let Ok(pkt) = CodedPacket::from_bytes(&buf[..n], blocks) else {
                            continue;
                        };
                        if pkt.session() != session {
                            continue;
                        }
                        let now = Instant::now();
                        packets += 1;
                        last_arrival = Some(now);
                        let gen = pkt.generation();
                        if gen < generations {
                            // Everything up to the highest generation
                            // seen has been sent: start its stall clock.
                            for ev in last_event[..=(gen as usize)].iter_mut() {
                                ev.get_or_insert(now);
                            }
                        }
                        let innovative = matches!(
                            decoder.receive(&pkt),
                            Ok(ncvnf_rlnc::ReceiveOutcome::Innovative { .. })
                        );
                        if gen < generations {
                            let gi = gen as usize;
                            gen_packets[gi] += 1;
                            if innovative {
                                last_event[gi] = Some(now);
                            }
                            if decoder.generation_complete(gen) && !acked[gi] {
                                acked[gi] = true;
                                let ack = Feedback::ack(session, gen).to_bytes();
                                let _ = socket.send_to(&ack, source);
                                m.acks_sent.inc();
                                obs.rlnc.record_generation_decoded(gen_packets[gi]);
                                m.trace
                                    .push(TraceKind::GenerationDecoded, gen, gen_packets[gi]);
                            }
                        }
                        if decoder.is_complete() {
                            let elapsed = start.elapsed();
                            // Completion burst: re-ACK everything so a
                            // lost ACK cannot leave the source retrying.
                            for g in 0..generations {
                                let ack = Feedback::ack(session, g).to_bytes();
                                let _ = socket.send_to(&ack, source);
                                m.acks_sent.inc();
                            }
                            let object = decoder.into_object().unwrap_or_default();
                            let _ = tx.send(ReliableReport {
                                object,
                                packets,
                                elapsed,
                                stats: recovery_delta(&before, &recovery_counts(&m)),
                            });
                            return;
                        }
                    }
                    Err(ref e) if is_timeout(e) => {}
                    Err(_) => std::thread::sleep(Duration::from_millis(1)),
                }
                // NACK scan. A global stall (nothing arriving at all —
                // e.g. a dead relay) makes every open generation
                // eligible, tail generations included.
                let now = Instant::now();
                let stalled_globally =
                    last_arrival.is_some_and(|t| now.duration_since(t) >= recovery.decode_timeout);
                for g in 0..generations as usize {
                    if decoder.generation_complete(g as u64) {
                        continue;
                    }
                    if stalled_globally {
                        last_event[g].get_or_insert_with(|| last_arrival.expect("stalled"));
                    }
                    let Some(ev) = last_event[g] else {
                        continue;
                    };
                    if now.duration_since(ev) < recovery.decode_timeout {
                        continue;
                    }
                    if last_nack[g].is_some_and(|t| now.duration_since(t) < recovery.nack_interval)
                    {
                        continue;
                    }
                    let missing = (blocks - decoder.generation_rank(g as u64).unwrap_or(0)) as u16;
                    let mut bitmap = 0u32;
                    for c in decoder.generation_missing_columns(g as u64) {
                        if c < 32 {
                            bitmap |= 1 << c;
                        }
                    }
                    let nack = Feedback::nack(session, g as u64, missing, bitmap).to_bytes();
                    let _ = socket.send_to(&nack, source);
                    m.nacks_sent.inc();
                    last_nack[g] = Some(now);
                }
            }
            // Shutdown without completion.
            let _ = tx.send(ReliableReport {
                object: Vec::new(),
                packets,
                elapsed: start.elapsed(),
                stats: recovery_delta(&before, &recovery_counts(&m)),
            });
        });
        Ok(ReliableReceiver {
            addr,
            done: rx,
            running,
            thread: Some(thread),
        })
    }

    /// Waits up to `timeout` for the transfer to finish.
    pub fn wait(mut self, timeout: Duration) -> Option<ReliableReport> {
        let report = self.done.recv_timeout(timeout).ok();
        self.running.store(false, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        report
    }
}

/// Everything a chaos experiment wants to assert on afterwards.
#[derive(Debug)]
pub struct ReliableChainReport {
    /// The receiver's outcome (object, packet count, elapsed, feedback
    /// counters).
    pub receiver: ReliableReport,
    /// The source's recovery counters.
    pub source: RecoveryStats,
    /// Per-relay counters, chain order.
    pub relays: Vec<RelayStats>,
    /// Per-relay fault-injection counters (`None` for clean relays),
    /// chain order.
    pub faults: Vec<Option<FaultStats>>,
    /// Observability snapshot of the shared endpoint registry (source +
    /// receiver `recovery.*`/`rlnc.*` metrics and trace events).
    pub snapshot: Snapshot,
}

/// Builds a source → relays → receiver pipeline where relay `i`'s data
/// socket is wrapped in a [`FaultSocket`] when `faults[i]` is set, runs
/// a *reliable* transfer of `object`, and returns the combined report
/// (`None` if the receiver timed out).
///
/// Relays are configured over their control channel exactly like
/// [`crate::chain`]; feedback flows receiver → source directly.
///
/// # Errors
///
/// Propagates socket errors.
///
/// # Panics
///
/// Panics if `object` does not frame.
pub fn reliable_chain(
    config: &TransferConfig,
    recovery: &RecoveryConfig,
    object: &[u8],
    faults: &[Option<FaultConfig>],
    timeout: Duration,
) -> io::Result<Option<ReliableChainReport>> {
    let encoder =
        ObjectEncoder::new(config.generation, config.session, object).expect("valid object");
    let source_socket = UdpSocket::bind(("127.0.0.1", 0))?;
    let source_addr = source_socket.local_addr()?;
    // Both endpoints record into one registry: the chain snapshot is the
    // single source of truth for the transfer's recovery/codec metrics.
    let obs = TransferObs::new();
    let receiver =
        ReliableReceiver::spawn(config, recovery, encoder.generations(), source_addr, &obs)?;

    let mut relays = Vec::new();
    let mut fault_handles = Vec::new();
    for (i, fault) in faults.iter().enumerate() {
        let relay_config = RelayConfig {
            generation: config.generation,
            buffer_generations: 1024,
            seed: config.seed + 100 + i as u64,
            heartbeat: None,
            registry: None,
            ..RelayConfig::default()
        };
        let control_socket = UdpSocket::bind(("127.0.0.1", 0))?;
        let relay = match fault {
            Some(fc) => {
                let (data_socket, handle) = FaultSocket::bind_loopback(*fc)?;
                fault_handles.push(Some(handle));
                RelayNode::spawn_with(relay_config, data_socket, control_socket)?
            }
            None => {
                fault_handles.push(None);
                let data_socket = UdpSocket::bind(("127.0.0.1", 0))?;
                RelayNode::spawn_with(relay_config, data_socket, control_socket)?
            }
        };
        relays.push(relay);
    }

    // Wire the chain back to front over the control channel.
    let control = UdpSocket::bind(("127.0.0.1", 0))?;
    control.set_read_timeout(Some(Duration::from_millis(200)))?;
    let mut ack = [0u8; 16];
    for i in 0..relays.len() {
        let next = if i + 1 < relays.len() {
            relays[i + 1].data_addr
        } else {
            receiver.addr
        };
        let settings = Signal::NcSettings {
            session: config.session,
            role: VnfRoleWire::Recoder,
            data_port: relays[i].data_addr.port(),
            block_size: config.generation.block_size() as u32,
            generation_size: config.generation.blocks_per_generation() as u32,
            buffer_generations: 1024,
        };
        control.send_to(&settings.to_bytes(), relays[i].control_addr)?;
        let _ = control.recv_from(&mut ack);
        let mut table = ForwardingTable::new();
        table.set(config.session, vec![next.to_string()]);
        let sig = Signal::NcForwardTab {
            table: table.to_text(),
        };
        control.send_to(&sig.to_bytes(), relays[i].control_addr)?;
        let _ = control.recv_from(&mut ack);
    }

    let first_hop = if relays.is_empty() {
        receiver.addr
    } else {
        relays[0].data_addr
    };
    let source =
        send_object_reliable(&source_socket, config, recovery, object, &[first_hop], &obs)?;
    let report = receiver.wait(timeout);
    let relay_stats: Vec<RelayStats> = relays.iter().map(|r| r.handle().stats()).collect();
    let fault_stats: Vec<Option<FaultStats>> = fault_handles
        .iter()
        .map(|h| h.as_ref().map(|h| h.stats()))
        .collect();
    for r in relays {
        r.shutdown();
    }
    let snapshot = obs.snapshot();
    Ok(report.map(|receiver| ReliableChainReport {
        receiver,
        source,
        relays: relay_stats,
        faults: fault_stats,
        snapshot,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncvnf_rlnc::{GenerationConfig, RedundancyPolicy, SessionId};

    fn config() -> TransferConfig {
        TransferConfig {
            session: SessionId::new(4),
            generation: GenerationConfig::new(128, 4).unwrap(),
            redundancy: RedundancyPolicy::NC0,
            rate_bps: 200e6,
            seed: 21,
        }
    }

    fn recovery() -> RecoveryConfig {
        RecoveryConfig {
            decode_timeout: Duration::from_millis(30),
            nack_interval: Duration::from_millis(30),
            backoff_base: Duration::from_millis(10),
            ..RecoveryConfig::default()
        }
    }

    #[test]
    fn congestion_feedback_halves_redundancy_and_pauses() {
        let cfg = config();
        let rec = recovery();
        let now = Instant::now();
        let mut gens: Vec<GenState> = (0..4)
            .map(|_| GenState {
                acked: false,
                pending_nack: None,
                retries: 0,
                next_retry: now,
            })
            .collect();
        let mut adaptive = AdaptiveRedundancy::from_policy(cfg.redundancy, rec.aimd);
        for _ in 0..6 {
            adaptive.on_loss(3); // pump extra redundancy above the floor
        }
        let before = adaptive.current_extra();
        let mut bp = Backpressure::default();
        let obs = TransferObs::new();
        let m = RecoveryMetrics::register(obs.registry());

        // Relay reports 200% load for our session: multiplicative
        // decrease plus a pause window at the 2.0x clamp point.
        let frame = Feedback::congestion(cfg.session, 200, 7, 40).to_bytes();
        assert!(absorb_feedback(
            &frame,
            &cfg,
            &rec,
            4,
            &mut gens,
            &mut adaptive,
            &mut bp,
            &m
        ));
        assert!(
            adaptive.current_extra() < before,
            "congestion is a multiplicative decrease: {} -> {}",
            before,
            adaptive.current_extra()
        );
        assert!(bp.paused(Instant::now()), "pause window armed");
        let snap = obs.snapshot();
        assert_eq!(snap.counter("recovery.congestion_events"), Some(1));
        assert_eq!(snap.gauge("recovery.congestion_window"), Some(200.0));

        // Session 0 is the unattributed wildcard: also honoured.
        let wild = Feedback::congestion(SessionId::new(0), 120, 1, 41).to_bytes();
        assert!(absorb_feedback(
            &wild,
            &cfg,
            &rec,
            4,
            &mut gens,
            &mut adaptive,
            &mut bp,
            &m
        ));
        assert_eq!(snap_counter(&obs, "recovery.congestion_events"), 2);

        // A congestion frame for some other session is ignored: no
        // decrease, no pause extension, no event.
        let other = Feedback::congestion(SessionId::new(99), 400, 9, 90).to_bytes();
        let extra = adaptive.current_extra();
        assert!(!absorb_feedback(
            &other,
            &cfg,
            &rec,
            4,
            &mut gens,
            &mut adaptive,
            &mut bp,
            &m
        ));
        assert_eq!(adaptive.current_extra(), extra);
        assert_eq!(snap_counter(&obs, "recovery.congestion_events"), 2);
    }

    fn snap_counter(obs: &TransferObs, name: &str) -> u64 {
        obs.snapshot().counter(name).unwrap_or(0)
    }

    #[test]
    fn backpressure_window_extends_and_expires() {
        let mut bp = Backpressure::default();
        assert!(!bp.paused(Instant::now()), "starts unpaused");
        bp.pause_for(Duration::from_millis(50));
        bp.pause_for(Duration::from_millis(5)); // shorter: must not shrink
        let now = Instant::now();
        assert!(bp.paused(now));
        assert!(
            bp.paused(now + Duration::from_millis(20)),
            "50ms window survives a later 5ms report"
        );
        assert!(!bp.paused(now + Duration::from_millis(60)), "expires");
        assert!(
            !bp.paused(now + Duration::from_millis(60)),
            "expired window is cleared, not re-armed"
        );
    }

    #[test]
    fn clean_direct_transfer_needs_no_recovery() {
        let cfg = config();
        let rec = recovery();
        let object: Vec<u8> = (0..4096u32).map(|i| (i % 255) as u8).collect();
        let encoder = ObjectEncoder::new(cfg.generation, cfg.session, &object).unwrap();
        let source_socket = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        let obs = TransferObs::new();
        let receiver = ReliableReceiver::spawn(
            &cfg,
            &rec,
            encoder.generations(),
            source_socket.local_addr().unwrap(),
            &obs,
        )
        .unwrap();
        let hops = [receiver.addr];
        let stats = send_object_reliable(&source_socket, &cfg, &rec, &object, &hops, &obs).unwrap();
        let report = receiver.wait(Duration::from_secs(10)).expect("completes");
        assert_eq!(report.object, object, "byte-identical");
        assert_eq!(stats.unrecovered, 0);
        assert_eq!(stats.retransmit_packets, 0, "clean path: no retransmits");
        assert_eq!(report.stats.nacks_sent, 0, "clean path: no NACKs");
        assert!(stats.acks_received > 0, "ACKs close out generations");
        // The registry saw the same protocol the structs report.
        let snap = obs.snapshot();
        assert_eq!(snap.counter("recovery.retransmit_packets"), Some(0));
        assert_eq!(
            snap.counter("recovery.acks_received"),
            Some(stats.acks_received)
        );
        assert_eq!(
            snap.counter("rlnc.decode.generations"),
            Some(encoder.generations())
        );
    }

    #[test]
    fn lossy_source_egress_recovers_via_nacks() {
        let cfg = config();
        let rec = recovery();
        let object: Vec<u8> = (0..6000u32).map(|i| (i * 7 % 253) as u8).collect();
        let encoder = ObjectEncoder::new(cfg.generation, cfg.session, &object).unwrap();
        // 25% egress loss on the source's own socket: recovery must carry
        // the transfer without any relay in the path.
        let (source_socket, fault) =
            FaultSocket::bind_loopback(FaultConfig::new(0xBEEF).with_drop(0.25)).unwrap();
        let obs = TransferObs::new();
        let receiver = ReliableReceiver::spawn(
            &cfg,
            &rec,
            encoder.generations(),
            source_socket.local_addr().unwrap(),
            &obs,
        )
        .unwrap();
        let hops = [receiver.addr];
        let stats = send_object_reliable(&source_socket, &cfg, &rec, &object, &hops, &obs).unwrap();
        let report = receiver.wait(Duration::from_secs(30)).expect("completes");
        assert_eq!(report.object, object, "byte-identical despite loss");
        assert_eq!(stats.unrecovered, 0);
        assert!(fault.stats().dropped > 0, "faults actually fired");
        assert!(report.stats.nacks_sent > 0, "receiver NACKed stalls");
        assert!(stats.retransmit_packets > 0, "source retransmitted");
        assert!(
            stats.generations_recovered > 0,
            "recovered generations are counted"
        );
        // Repair activity left its trail in the registry: backoff
        // timings and repair-burst trace events.
        let snap = obs.snapshot();
        assert!(snap.histogram("recovery.backoff_ns").unwrap().count > 0);
        assert!(snap
            .events
            .iter()
            .any(|e| e.kind == ncvnf_obs::TraceKind::RepairBurst));
    }

    #[test]
    fn lossy_window_stream_recovers_via_repair_bursts() {
        let window = WindowConfig::new(128, 8).unwrap();
        let session = SessionId::new(9);
        let rec = recovery();
        let data: Vec<u8> = (0..4096u32).map(|i| (i * 11 % 251) as u8).collect();
        let total = data.len().div_ceil(window.symbol_size()) as u64;
        // 25% egress loss on the source's own socket: the stream must
        // heal from NACK-driven repair bursts over the live window.
        let (source_socket, fault) =
            FaultSocket::bind_loopback(FaultConfig::new(0xD00F).with_drop(0.25)).unwrap();
        let obs = TransferObs::new();
        let receiver = WindowStreamReceiver::spawn(
            window,
            session,
            total,
            source_socket.local_addr().unwrap(),
            &obs,
        )
        .unwrap();
        let hops = [receiver.addr];
        let stats = send_window_reliable(&source_socket, window, session, &rec, &data, &hops, &obs)
            .unwrap();
        let report = receiver.wait(Duration::from_secs(30)).expect("completes");
        assert_eq!(report.data, data, "byte-identical in-order delivery");
        assert!(stats.completed, "source saw the stream acknowledged");
        assert_eq!(stats.data_packets, total);
        assert!(fault.stats().dropped > 0, "faults actually fired");
        assert!(report.nacks_sent > 0, "receiver NACKed stalls");
        assert!(stats.repair_packets > 0, "repairs answered from the window");
        let snap = obs.snapshot();
        assert!(snap
            .events
            .iter()
            .any(|e| e.kind == ncvnf_obs::TraceKind::RepairBurst));
    }

    #[test]
    fn clean_window_stream_is_pure_systematic() {
        let window = WindowConfig::new(64, 4).unwrap();
        let session = SessionId::new(10);
        let rec = recovery();
        let data: Vec<u8> = (0..640u32).map(|i| (i % 241) as u8).collect();
        let total = data.len().div_ceil(window.symbol_size()) as u64;
        let socket = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        let obs = TransferObs::new();
        let receiver =
            WindowStreamReceiver::spawn(window, session, total, socket.local_addr().unwrap(), &obs)
                .unwrap();
        let hops = [receiver.addr];
        let stats =
            send_window_reliable(&socket, window, session, &rec, &data, &hops, &obs).unwrap();
        let report = receiver.wait(Duration::from_secs(10)).expect("completes");
        assert_eq!(report.data, data);
        assert!(stats.completed);
        assert_eq!(
            stats.data_packets, total,
            "one systematic packet per symbol"
        );
        assert_eq!(stats.repair_packets, 0, "no loss, no repairs");
    }

    #[test]
    fn health_record_derives_from_transfer_snapshot() {
        use ncvnf_control::telemetry::DataplaneHealth;
        let obs = TransferObs::new();
        obs.recovery.nacks_sent.add(3);
        obs.recovery.retransmit_packets.add(9);
        obs.recovery.generations_recovered.add(2);
        let health = DataplaneHealth::from_snapshot(&obs.snapshot());
        assert_eq!(health.nacks_sent, 3);
        assert_eq!(health.retransmit_packets, 9);
        assert_eq!(health.generations_recovered, 2);
    }
}
