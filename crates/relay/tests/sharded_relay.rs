//! Sharded relay runtime invariants (DESIGN.md §14).
//!
//! Three families of guarantees keep the sharded data path equivalent to
//! the single-engine relay it replaced:
//!
//! 1. **Placement** — [`shard_of`] is a pure function of `(session,
//!    generation)`: every packet of one generation lands on the same
//!    shard (a generation's decoder state is not splittable), while the
//!    generations of one session spread across shards (one heavy session
//!    can use more than one core). Pinned by proptest.
//! 2. **Reconfiguration** — a live table swap reaches *every* shard's
//!    route cache: under traffic that covers all four shards, no packet
//!    reaches the removed hop after the swap ACK plus a grace window.
//! 3. **Chaos determinism** — a pinned `NCVNF_CHAOS_SEED` reproduces the
//!    identical fault pattern whether datagrams move through
//!    [`FaultSocket`] one at a time or via `recv_batch`/`send_batch`:
//!    the four fault gates are drawn once per *wire* datagram in arrival
//!    order in both modes.

use std::collections::HashSet;
use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ncvnf_control::signal::{Signal, VnfRoleWire};
use ncvnf_control::ForwardingTable;
use ncvnf_relay::{
    shard_of, DatagramSocket, FaultConfig, FaultSocket, FaultStats, RecvBatch, RelayConfig,
    RelayNode, SendBatch, MAX_BATCH,
};
use ncvnf_rlnc::{GenerationConfig, GenerationEncoder, SessionId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

// ---------------------------------------------------------------- placement

proptest! {
    /// The shard map is total, in range, and deterministic: every packet
    /// of one `(session, generation)` resolves to the same shard no
    /// matter which ingress thread computes it.
    #[test]
    fn shard_of_is_deterministic_and_in_range(
        session in any::<u16>(),
        generation in any::<u64>(),
        shards in 1usize..=16,
    ) {
        let owner = shard_of(SessionId::new(session), generation, shards);
        prop_assert!(owner < shards);
        for _ in 0..4 {
            prop_assert_eq!(owner, shard_of(SessionId::new(session), generation, shards));
        }
    }

    /// Successive generations of a single session do not pile onto one
    /// shard: a lone heavy session still parallelizes.
    #[test]
    fn generations_of_one_session_spread_across_shards(session in any::<u16>()) {
        for shards in [2usize, 4, 8] {
            let hit: HashSet<usize> = (0..64u64)
                .map(|g| shard_of(SessionId::new(session), g, shards))
                .collect();
            prop_assert!(
                hit.len() > 1,
                "64 generations of session {} all hashed to one of {} shards",
                session, shards
            );
        }
    }

    /// A single shard degenerates to the unsharded relay: everything is
    /// shard 0.
    #[test]
    fn single_shard_owns_everything(session in any::<u16>(), generation in any::<u64>()) {
        prop_assert_eq!(shard_of(SessionId::new(session), generation, 1), 0);
    }
}

// ----------------------------------------------------------- reconfiguration

const SESSION: u16 = 7;

fn cfg() -> GenerationConfig {
    GenerationConfig::new(256, 4).unwrap()
}

fn control_client() -> UdpSocket {
    let s = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    s
}

fn signal_roundtrip(control: &UdpSocket, to: std::net::SocketAddr, sig: &Signal) -> Vec<u8> {
    let mut ack = [0u8; 16];
    control.send_to(&sig.to_bytes(), to).unwrap();
    let (n, _) = control.recv_from(&mut ack).expect("relay replies");
    ack[..n].to_vec()
}

fn table_signal(hop: String) -> Signal {
    let mut table = ForwardingTable::new();
    table.set(SessionId::new(SESSION), vec![hop]);
    Signal::NcForwardTab {
        table: table.to_text(),
    }
}

fn drain_for(sink: &UdpSocket, window: Duration) -> u64 {
    let mut buf = vec![0u8; 2048];
    let deadline = Instant::now() + window;
    let mut got = 0;
    while Instant::now() < deadline {
        if sink.recv_from(&mut buf).is_ok() {
            got += 1;
        }
    }
    got
}

/// A live table swap on a 4-shard relay reaches every shard's route
/// cache: traffic spanning generations owned by all four shards keeps
/// flowing to the new hop and never again reaches the removed one.
#[test]
fn four_shard_table_swap_under_traffic_reaches_every_shard() {
    const SHARDS: usize = 4;
    // The sender cycles one generation per shard (found by scanning the
    // shard map), so a shard with a stale RouteCache would necessarily
    // leak packets to the removed hop below.
    let mut picks: Vec<u64> = Vec::new();
    let mut owners_seen = [false; SHARDS];
    for g in 0..256u64 {
        let owner = shard_of(SessionId::new(SESSION), g, SHARDS);
        if !owners_seen[owner] {
            owners_seen[owner] = true;
            picks.push(g);
        }
    }
    assert_eq!(picks.len(), SHARDS, "traffic covers every shard");

    let relay = RelayNode::spawn(RelayConfig {
        generation: cfg(),
        buffer_generations: 64,
        seed: 21,
        heartbeat: None,
        registry: None,
        shards: SHARDS,
        ..RelayConfig::default()
    })
    .unwrap();
    let sink_a = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    let sink_b = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    for s in [&sink_a, &sink_b] {
        s.set_read_timeout(Some(Duration::from_millis(20))).unwrap();
    }

    let control = control_client();
    let settings = Signal::NcSettings {
        session: SessionId::new(SESSION),
        role: VnfRoleWire::Recoder,
        data_port: relay.data_addr.port(),
        block_size: 256,
        generation_size: 4,
        buffer_generations: 64,
    };
    assert_eq!(
        signal_roundtrip(&control, relay.control_addr, &settings),
        b"OK"
    );
    let hop_a = sink_a.local_addr().unwrap().to_string();
    assert_eq!(
        signal_roundtrip(&control, relay.control_addr, &table_signal(hop_a)),
        b"OK"
    );

    let stop = Arc::new(AtomicBool::new(false));
    let sender = {
        let stop = Arc::clone(&stop);
        let data_addr = relay.data_addr;
        std::thread::spawn(move || {
            let enc = GenerationEncoder::new(cfg(), &[0xC4; 1024]).unwrap();
            let mut rng = StdRng::seed_from_u64(13);
            let socket = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                for _ in 0..8 {
                    let generation = picks[i % picks.len()];
                    let pkt = enc.coded_packet(SessionId::new(SESSION), generation, &mut rng);
                    let _ = socket.send_to(&pkt.to_bytes(), data_addr);
                    i += 1;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };

    assert!(
        drain_for(&sink_a, Duration::from_millis(200)) > 0,
        "traffic reaches hop A before the swap"
    );

    let hop_b = sink_b.local_addr().unwrap().to_string();
    assert_eq!(
        signal_roundtrip(&control, relay.control_addr, &table_signal(hop_b)),
        b"OK"
    );

    // Grace window for packets already routed / queued in A's buffer.
    drain_for(&sink_a, Duration::from_millis(200));

    let late_a = drain_for(&sink_a, Duration::from_millis(300));
    assert_eq!(
        late_a, 0,
        "no shard may route to the removed hop after the swap"
    );
    assert!(
        drain_for(&sink_b, Duration::from_millis(300)) > 0,
        "traffic reaches the new hop after the swap"
    );

    stop.store(true, Ordering::Relaxed);
    sender.join().unwrap();
    let handle = relay.handle();
    let stats = handle.stats();
    relay.shutdown();
    assert_eq!(stats.shards, SHARDS as u64);
    assert!(stats.batches > 0, "data moved through the batched loop");
    assert!(
        stats.cross_shard_packets > 0,
        "one ingress queue fed generations owned by other shards"
    );
    assert!(stats.datagrams_in > 0 && stats.datagrams_out > 0);
    assert_eq!(stats.rejected_signals, 0);
}

// -------------------------------------------------------- chaos determinism

fn chaos_seed() -> u64 {
    std::env::var("NCVNF_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC405_2017)
}

const CHAOS_DATAGRAMS: u16 = 160;

fn payload(i: u16) -> [u8; 3] {
    [(i >> 8) as u8, i as u8, (i as u8).wrapping_mul(7)]
}

/// Sends the standard datagram sequence into a freshly wrapped ingress
/// fault socket, then receives everything either one datagram at a time
/// or via `recv_batch`, returning the delivered payloads in order plus
/// the final fault counters.
fn run_ingress_chaos(seed: u64, batched: bool) -> (Vec<Vec<u8>>, FaultStats) {
    let (sock, handle) = FaultSocket::bind_loopback(
        FaultConfig::new(seed)
            .with_drop(0.2)
            .with_duplicate(0.15)
            .with_reorder(0.2)
            .with_directions(true, false),
    )
    .unwrap();
    sock.set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    let sender = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    let to = sock.local_addr().unwrap();
    for i in 0..CHAOS_DATAGRAMS {
        sender.send_to(&payload(i), to).unwrap();
    }
    // Let every datagram land in the receive queue before draining, so
    // neither mode observes a mid-stream timeout (which releases the
    // reorder stash early and would make the comparison timing-
    // dependent rather than seed-dependent).
    std::thread::sleep(Duration::from_millis(50));

    let mut got = Vec::new();
    if batched {
        let mut batch = RecvBatch::new(MAX_BATCH, 64);
        while sock.recv_batch(&mut batch).is_ok() {
            for (bytes, _src) in batch.iter() {
                got.push(bytes.to_vec());
            }
        }
    } else {
        let mut buf = [0u8; 64];
        while let Ok((n, _)) = sock.recv_from(&mut buf) {
            got.push(buf[..n].to_vec());
        }
    }
    (got, handle.stats())
}

/// The pinned chaos seed reproduces the identical ingress fault pattern
/// batched and unbatched: same delivered payloads in the same order,
/// same drop/duplicate/reorder counters.
#[test]
fn ingress_chaos_is_identical_batched_and_unbatched() {
    let seed = chaos_seed();
    let (unbatched, stats_u) = run_ingress_chaos(seed, false);
    let (batched, stats_b) = run_ingress_chaos(seed, true);
    assert_eq!(
        stats_u, stats_b,
        "fault counters diverge between modes (seed {seed:#x})"
    );
    assert_eq!(
        unbatched, batched,
        "delivered sequence diverges between modes (seed {seed:#x})"
    );
    // The comparison only means something if every pathology fired.
    assert!(stats_u.dropped > 0, "seed produced no drops");
    assert!(stats_u.duplicated > 0, "seed produced no duplicates");
    assert!(stats_u.reordered > 0, "seed produced no reorders");
    // `delivered` counts originals; duplicate copies and released
    // reorder stashes arrive on top of it.
    assert_eq!(
        stats_u.delivered + stats_u.duplicated + stats_u.reordered,
        unbatched.len() as u64,
        "every delivered datagram was observed"
    );
}

/// Egress: flushing a `SendBatch` through a `FaultSocket` draws the same
/// per-datagram gates as a `send_to` loop — same arrivals at the sink,
/// same counters.
#[test]
fn egress_chaos_is_identical_batched_and_unbatched() {
    let seed = chaos_seed();
    let run = |batched: bool| -> (Vec<Vec<u8>>, FaultStats) {
        let sink = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        sink.set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        let (sock, handle) = FaultSocket::bind_loopback(
            FaultConfig::new(seed)
                .with_drop(0.2)
                .with_duplicate(0.15)
                .with_reorder(0.2)
                .with_directions(false, true),
        )
        .unwrap();
        let to = sink.local_addr().unwrap();
        if batched {
            let mut out = SendBatch::new();
            for i in 0..CHAOS_DATAGRAMS {
                out.push_bytes(&payload(i), &[to]);
                if out.len() == MAX_BATCH {
                    sock.send_batch(&out).unwrap();
                    out.clear();
                }
            }
            if !out.is_empty() {
                sock.send_batch(&out).unwrap();
            }
        } else {
            for i in 0..CHAOS_DATAGRAMS {
                sock.send_to(&payload(i), to).unwrap();
            }
        }
        let mut got = Vec::new();
        let mut buf = [0u8; 64];
        while let Ok((n, _)) = sink.recv_from(&mut buf) {
            got.push(buf[..n].to_vec());
        }
        (got, handle.stats())
    };
    let (unbatched, stats_u) = run(false);
    let (batched, stats_b) = run(true);
    assert_eq!(stats_u, stats_b, "egress counters diverge (seed {seed:#x})");
    assert_eq!(unbatched, batched, "arrivals diverge (seed {seed:#x})");
    assert!(stats_u.dropped > 0 && stats_u.duplicated > 0 && stats_u.reordered > 0);
}
