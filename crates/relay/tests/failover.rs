//! Liveness failover: killing a relay mid-transfer must be detected via
//! missed heartbeats, rerouted around, and survived.
//!
//! Topology: source → R0 → R1 → receiver, with a pre-configured standby
//! R2. All three relays beacon heartbeats (feedback kind 3) at a monitor
//! every 25 ms. Mid-transfer R1 is killed; the monitor's
//! `LivenessTracker` escalates it Suspect → Dead on silence, computes
//! the failover delta with `ncvnf_control::failover::reroute_table`
//! (R0: replace the dead R1 hop with R2) and pushes the new
//! `NC_FORWARD_TAB` to R0. The reliable transfer's NACK/retransmit loop
//! then refills whatever died with R1, and the object decodes
//! byte-identically. The kill → table-acked failover time is reported.

use std::net::{SocketAddr, UdpSocket};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use ncvnf_control::failover::reroute_table;
use ncvnf_control::liveness::{LivenessConfig, LivenessEvent, LivenessTracker};
use ncvnf_control::signal::{Signal, VnfRoleWire};
use ncvnf_control::{ControlMetrics, ForwardingTable};
use ncvnf_dataplane::{Feedback, FeedbackKind};
use ncvnf_obs::Registry;
use ncvnf_relay::{
    send_object_reliable, HeartbeatConfig, RecoveryConfig, RelayConfig, RelayNode,
    ReliableReceiver, TransferConfig, TransferObs,
};
use ncvnf_rlnc::{GenerationConfig, ObjectEncoder, RedundancyPolicy, SessionId};

const SESSION: u16 = 21;
const HEARTBEAT_EVERY: Duration = Duration::from_millis(25);

fn transfer_config() -> TransferConfig {
    TransferConfig {
        session: SessionId::new(SESSION),
        generation: GenerationConfig::new(256, 4).unwrap(),
        redundancy: RedundancyPolicy::NC0,
        // Slow enough that the initial pass spans the kill comfortably.
        rate_bps: 400e3,
        seed: 0xFA11,
    }
}

fn relay_config(node_id: u32, monitor: SocketAddr) -> RelayConfig {
    RelayConfig {
        generation: transfer_config().generation,
        buffer_generations: 256,
        seed: 0xD00D + node_id as u64,
        heartbeat: Some(HeartbeatConfig {
            monitor,
            interval: HEARTBEAT_EVERY,
            node_id,
        }),
        registry: None,
        ..RelayConfig::default()
    }
}

/// Sends a signal and asserts the relay applied it.
fn configure(control: &UdpSocket, to: SocketAddr, sig: &Signal) {
    let mut ack = [0u8; 16];
    control.send_to(&sig.to_bytes(), to).unwrap();
    let (n, _) = control.recv_from(&mut ack).expect("relay replies");
    assert_eq!(&ack[..n], b"OK", "signal applied");
}

fn settings_for(relay: &RelayNode) -> Signal {
    let gen = transfer_config().generation;
    Signal::NcSettings {
        session: SessionId::new(SESSION),
        role: VnfRoleWire::Recoder,
        data_port: relay.data_addr.port(),
        block_size: gen.block_size() as u32,
        generation_size: gen.blocks_per_generation() as u32,
        buffer_generations: 256,
    }
}

fn table_to(hop: SocketAddr) -> Signal {
    let mut table = ForwardingTable::new();
    table.set(SessionId::new(SESSION), vec![hop.to_string()]);
    Signal::NcForwardTab {
        table: table.to_text(),
    }
}

#[derive(Default)]
struct MonitorState {
    /// Instant the kill happened (set by the main thread).
    killed_at: Option<Instant>,
    /// Kill → failover-table-acked latency.
    failover: Option<Duration>,
    /// Every node the tracker ever declared dead.
    deaths: Vec<u32>,
}

#[test]
fn relay_death_is_detected_and_routed_around_mid_transfer() {
    let monitor_socket = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    monitor_socket
        .set_read_timeout(Some(Duration::from_millis(10)))
        .unwrap();
    let monitor_addr = monitor_socket.local_addr().unwrap();

    let r0 = RelayNode::spawn(relay_config(0, monitor_addr)).unwrap();
    let r1 = RelayNode::spawn(relay_config(1, monitor_addr)).unwrap();
    let r2 = RelayNode::spawn(relay_config(2, monitor_addr)).unwrap();

    let config = transfer_config();
    let object: Vec<u8> = (0..20 * 1024u32)
        .map(|i| (i.wrapping_mul(37)) as u8)
        .collect();
    let encoder = ObjectEncoder::new(config.generation, config.session, &object).unwrap();

    let source_socket = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    let recovery = RecoveryConfig {
        decode_timeout: Duration::from_millis(50),
        nack_interval: Duration::from_millis(50),
        backoff_base: Duration::from_millis(25),
        max_retries: 10,
        idle_timeout: Duration::from_secs(5),
        ..RecoveryConfig::default()
    };
    let obs = TransferObs::new();
    let receiver = ReliableReceiver::spawn(
        &config,
        &recovery,
        encoder.generations(),
        source_socket.local_addr().unwrap(),
        &obs,
    )
    .unwrap();

    // Wire the mesh: R0 → R1 → receiver, standby R2 → receiver.
    let control = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    control
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    configure(&control, r0.control_addr, &settings_for(&r0));
    configure(&control, r0.control_addr, &table_to(r1.data_addr));
    configure(&control, r1.control_addr, &settings_for(&r1));
    configure(&control, r1.control_addr, &table_to(receiver.addr));
    configure(&control, r2.control_addr, &settings_for(&r2));
    configure(&control, r2.control_addr, &table_to(receiver.addr));

    // The monitor: heartbeats → liveness tracker → failover push. Its
    // liveness transitions and table-push latency go through the
    // control-plane metrics bundle, so the test can assert on the
    // registry snapshot instead of ad-hoc counters.
    let controller_registry = Registry::new();
    let state = Arc::new(Mutex::new(MonitorState::default()));
    let r0_handle = r0.handle();
    let monitor = {
        let state = Arc::clone(&state);
        let metrics = ControlMetrics::register(&controller_registry);
        let r0_handle = r0_handle.clone();
        let r0_control = r0.control_addr;
        let dead_hop = r1.data_addr.to_string();
        let replacement = r2.data_addr.to_string();
        std::thread::spawn(move || {
            let mut tracker = LivenessTracker::new(LivenessConfig {
                suspect_after: 3 * HEARTBEAT_EVERY,
                dead_after: 6 * HEARTBEAT_EVERY,
            });
            let mut buf = [0u8; 64];
            loop {
                if let Ok((n, _)) = monitor_socket.recv_from(&mut buf) {
                    if let Ok(fb) = Feedback::from_bytes(&buf[..n]) {
                        if fb.kind == FeedbackKind::Heartbeat {
                            tracker.heartbeat(fb.node_id(), Instant::now());
                        }
                    }
                }
                for ev in tracker.poll(Instant::now()) {
                    metrics.record_liveness_event(&ev);
                    let LivenessEvent::Died(node) = ev else {
                        continue;
                    };
                    let mut st = state.lock();
                    st.deaths.push(node);
                    if node != 1 || st.failover.is_some() {
                        continue;
                    }
                    let killed_at = st.killed_at;
                    drop(st);
                    // Reroute R0 around the corpse and push the delta.
                    let current = ForwardingTable::parse(&r0_handle.table_text())
                        .expect("relay table parses");
                    let delta = reroute_table(&current, &dead_hop, &replacement)
                        .expect("R0 pointed at the dead relay");
                    let sig = Signal::NcForwardTab {
                        table: delta.to_text(),
                    };
                    let push = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
                    push.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
                    let mut ack = [0u8; 16];
                    let push_started = Instant::now();
                    push.send_to(&sig.to_bytes(), r0_control).unwrap();
                    let (n, _) = push.recv_from(&mut ack).expect("R0 acks failover table");
                    assert_eq!(&ack[..n], b"OK");
                    metrics.record_table_push_ns(push_started.elapsed().as_nanos() as u64);
                    let mut st = state.lock();
                    st.failover = Some(killed_at.map_or(Duration::ZERO, |t| t.elapsed()));
                    return; // failover done; monitor's job is over
                }
                // Transfer (and test) end well before this safety stop.
                if state
                    .lock()
                    .killed_at
                    .is_some_and(|t| t.elapsed() > Duration::from_secs(20))
                {
                    return;
                }
            }
        })
    };

    // Stream in the background; the kill lands mid-initial-pass.
    let transfer = {
        let config = config.clone();
        let object = object.clone();
        let first_hop = r0.data_addr;
        let obs = obs.clone();
        std::thread::spawn(move || {
            send_object_reliable(
                &source_socket,
                &config,
                &recovery,
                &object,
                &[first_hop],
                &obs,
            )
            .expect("source runs")
        })
    };

    std::thread::sleep(Duration::from_millis(400));
    // Heartbeats flowed before the kill.
    assert!(r1.handle().stats().heartbeats_sent > 0, "R1 beaconed");
    state.lock().killed_at = Some(Instant::now());
    r1.shutdown(); // heartbeats stop, data path goes dark

    let source_stats = transfer.join().expect("source thread");
    let report = receiver
        .wait(Duration::from_secs(60))
        .expect("transfer completes through the rerouted path");
    monitor.join().expect("monitor thread");

    assert_eq!(report.object, object, "byte-identical after failover");
    assert_eq!(source_stats.unrecovered, 0, "every generation closed out");
    assert!(
        source_stats.retransmit_packets > 0,
        "the dead window forced retransmissions: {source_stats:?}"
    );
    assert!(
        report.stats.nacks_sent > 0,
        "receiver NACKed the dark window"
    );

    let st = state.lock();
    assert!(st.deaths.contains(&1), "tracker declared R1 dead");
    assert!(!st.deaths.contains(&0), "R0 never suspected dead");
    assert!(!st.deaths.contains(&2), "R2 never suspected dead");
    let failover = st.failover.expect("failover executed");
    drop(st);
    println!(
        "failover time (kill -> rerouted table acked): {:.1} ms",
        failover.as_secs_f64() * 1e3
    );
    // Detection is bounded by dead_after (150 ms) plus poll/push slack.
    assert!(
        failover < Duration::from_secs(5),
        "failover took {failover:?}"
    );

    // R2 carried traffic only after the failover.
    assert!(
        r2.handle().stats().datagrams_in > 0,
        "standby took over the flow"
    );

    // The controller's registry recorded the whole episode: the death,
    // at least one suspicion, and the timed failover-table push.
    let csnap = controller_registry.snapshot();
    assert!(csnap.counter("control.liveness.died").unwrap() >= 1);
    assert!(csnap.counter("control.liveness.suspected").unwrap() >= 1);
    assert_eq!(csnap.histogram("control.table_push_ns").unwrap().count, 1);

    // R0's own registry timed both table swaps (initial wiring + the
    // failover push) and traced them.
    let r0_snap = r0_handle.snapshot();
    assert_eq!(r0_snap.histogram("relay.table_swap_ns").unwrap().count, 2);
    assert!(r0_snap
        .events
        .iter()
        .any(|e| e.kind == ncvnf_obs::TraceKind::TableSwap));
    r0.shutdown();
    r2.shutdown();
}
