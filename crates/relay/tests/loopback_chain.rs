//! Real-socket integration: coded transfers through live UDP relays.

use std::time::{Duration, Instant};

use ncvnf_control::signal::{Signal, VnfRoleWire};
use ncvnf_control::ForwardingTable;
use ncvnf_relay::{chain, RelayConfig, RelayNode, TransferConfig};
use ncvnf_rlnc::{GenerationConfig, RedundancyPolicy, SessionId};

fn small_cfg() -> TransferConfig {
    TransferConfig {
        session: SessionId::new(5),
        generation: GenerationConfig::new(1460, 4).unwrap(),
        redundancy: RedundancyPolicy::NC1,
        rate_bps: 80e6,
        seed: 42,
    }
}

#[test]
fn direct_transfer_recovers_object() {
    let cfg = small_cfg();
    let object: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
    let report = chain(&cfg, &object, 0, Duration::from_secs(30))
        .unwrap()
        .expect("transfer completes");
    assert_eq!(report.object, object);
    assert!(report.innovative >= report.object.len() as u64 / 1460);
}

#[test]
fn two_relay_chain_recovers_object() {
    let cfg = small_cfg();
    let object: Vec<u8> = (0..150_000u32).map(|i| (i * 7 % 256) as u8).collect();
    let report = chain(&cfg, &object, 2, Duration::from_secs(30))
        .unwrap()
        .expect("relayed transfer completes");
    assert_eq!(report.object, object);
}

#[test]
fn relay_cold_start_is_fast() {
    // §V-C-5: starting a coding function on a warm VM took ≈376 ms on
    // EC2; our in-process spawn must be far below that.
    let t0 = Instant::now();
    let relay = RelayNode::spawn(RelayConfig::default()).unwrap();
    let startup = t0.elapsed();
    relay.shutdown();
    assert!(
        startup < Duration::from_millis(376),
        "relay spawn took {startup:?}"
    );
}

#[test]
fn live_forwarding_table_update_acks() {
    let relay = RelayNode::spawn(RelayConfig::default()).unwrap();
    let control = std::net::UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    control
        .set_read_timeout(Some(Duration::from_millis(500)))
        .unwrap();
    let settings = Signal::NcSettings {
        session: SessionId::new(1),
        role: VnfRoleWire::Encoder,
        data_port: relay.data_addr.port(),
        block_size: 1460,
        generation_size: 4,
        buffer_generations: 1024,
    };
    let mut ack = [0u8; 8];
    control
        .send_to(&settings.to_bytes(), relay.control_addr)
        .unwrap();
    control.recv_from(&mut ack).unwrap();

    let mut table = ForwardingTable::new();
    table.set(SessionId::new(1), vec!["127.0.0.1:9999".into()]);
    let sig = Signal::NcForwardTab {
        table: table.to_text(),
    };
    let t0 = Instant::now();
    control
        .send_to(&sig.to_bytes(), relay.control_addr)
        .unwrap();
    control.recv_from(&mut ack).unwrap();
    let update = t0.elapsed();
    let handle = relay.handle();
    assert!(handle.table_text().contains("127.0.0.1:9999"));
    assert_eq!(handle.stats().signals, 2);
    relay.shutdown();
    // Loopback update round trip should be well under the paper's 78 ms.
    assert!(update < Duration::from_millis(78), "update took {update:?}");
}

#[test]
fn decoder_relay_delivers_plain_chunks() {
    use ncvnf_dataplane::DecodedChunk;
    use ncvnf_rlnc::ObjectEncoder;
    use rand::{rngs::StdRng, SeedableRng};

    let cfg = GenerationConfig::new(1460, 4).unwrap();
    let relay = RelayNode::spawn(RelayConfig {
        generation: cfg,
        buffer_generations: 64,
        seed: 1,
        heartbeat: None,
        registry: None,
        ..RelayConfig::default()
    })
    .unwrap();
    // A plain sink for decoded chunks.
    let sink = std::net::UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    sink.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

    // Configure the relay as a decoder pointing at the sink.
    let control = std::net::UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    control
        .set_read_timeout(Some(Duration::from_millis(500)))
        .unwrap();
    let mut ack = [0u8; 8];
    let settings = Signal::NcSettings {
        session: SessionId::new(2),
        role: VnfRoleWire::Decoder,
        data_port: relay.data_addr.port(),
        block_size: 1460,
        generation_size: 4,
        buffer_generations: 64,
    };
    control
        .send_to(&settings.to_bytes(), relay.control_addr)
        .unwrap();
    control.recv_from(&mut ack).unwrap();
    let mut table = ForwardingTable::new();
    table.set(
        SessionId::new(2),
        vec![sink.local_addr().unwrap().to_string()],
    );
    let sig = Signal::NcForwardTab {
        table: table.to_text(),
    };
    control
        .send_to(&sig.to_bytes(), relay.control_addr)
        .unwrap();
    control.recv_from(&mut ack).unwrap();

    // Send coded packets of one generation straight at the decoder.
    let object: Vec<u8> = (0..4000u32).map(|i| (i % 253) as u8).collect();
    let enc = ObjectEncoder::new(cfg, SessionId::new(2), &object).unwrap();
    assert_eq!(enc.generations(), 1);
    let sender = std::net::UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..8 {
        let pkt = enc.coded_packet(0, &mut rng);
        sender.send_to(&pkt.to_bytes(), relay.data_addr).unwrap();
    }
    // The decoder should emit 4 plain chunks reassembling the generation.
    let mut chunks = Vec::new();
    let mut buf = vec![0u8; 4096];
    while chunks.len() < 4 {
        let (n, _) = sink.recv_from(&mut buf).expect("decoded chunk arrives");
        if let Some(c) = DecodedChunk::from_bytes(&buf[..n]) {
            chunks.push(c);
        }
    }
    chunks.sort_by_key(|c| c.index);
    let mut payload = Vec::new();
    for c in &chunks {
        payload.extend_from_slice(&c.payload);
    }
    // Framing: 8-byte length prefix + object + padding.
    let len = u64::from_be_bytes(payload[..8].try_into().unwrap()) as usize;
    assert_eq!(len, object.len());
    assert_eq!(&payload[8..8 + len], &object[..]);
    relay.shutdown();
}
