//! Chaos experiment: a multi-hop reliable transfer through relays whose
//! sockets drop, duplicate and reorder datagrams on every hop.
//!
//! This is the repo's netem stand-in for the paper's loss experiments
//! (Figs. 8–9): with 10% seeded loss (+ duplication and reordering) on
//! each of the three hops, the feedback protocol — NACKs on decode
//! stalls, fresh-combination retransmissions with bounded backoff, AIMD
//! redundancy — must still deliver the object byte-identically.
//!
//! The fault seed is pinned (override with `NCVNF_CHAOS_SEED`) so CI
//! failures replay exactly.

use std::time::Duration;

use ncvnf_relay::{reliable_chain, FaultConfig, RecoveryConfig, TransferConfig};
use ncvnf_rlnc::{AimdConfig, GenerationConfig, RedundancyPolicy, SessionId};

fn chaos_seed() -> u64 {
    std::env::var("NCVNF_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC405_2017)
}

/// Source → R1 → R2 → receiver with seeded faults on every hop:
/// R1 perturbs both its ingress (hop 1) and egress (hop 2), R2 its
/// egress (hop 3). The transfer must complete byte-identically, the
/// recovery counters must show the protocol actually worked, and no
/// loop may panic.
#[test]
fn seeded_chaos_on_every_hop_still_delivers_byte_identical() {
    let seed = chaos_seed();
    let config = TransferConfig {
        session: SessionId::new(12),
        generation: GenerationConfig::new(256, 4).unwrap(),
        redundancy: RedundancyPolicy::NC0,
        rate_bps: 50e6,
        seed,
    };
    let recovery = RecoveryConfig {
        decode_timeout: Duration::from_millis(40),
        nack_interval: Duration::from_millis(40),
        backoff_base: Duration::from_millis(15),
        max_retries: 12,
        aimd: AimdConfig::default(),
        ..RecoveryConfig::default()
    };
    let object: Vec<u8> = (0..32 * 1024u32)
        .map(|i| (i.wrapping_mul(2654435761)) as u8)
        .collect();

    let faults = [
        // R1: ingress covers the source→R1 hop, egress the R1→R2 hop.
        Some(
            FaultConfig::new(seed ^ 0x1)
                .with_drop(0.10)
                .with_duplicate(0.05)
                .with_reorder(0.05)
                .with_directions(true, true),
        ),
        // R2: egress covers the R2→receiver hop (its ingress is hop 2,
        // already perturbed by R1's egress).
        Some(
            FaultConfig::new(seed ^ 0x2)
                .with_drop(0.10)
                .with_duplicate(0.05)
                .with_reorder(0.05)
                .with_directions(false, true),
        ),
    ];

    let report = reliable_chain(
        &config,
        &recovery,
        &object,
        &faults,
        Duration::from_secs(60),
    )
    .expect("chain runs")
    .expect("transfer completes despite chaos");

    assert_eq!(report.receiver.object, object, "byte-identical object");

    // The pathologies genuinely fired on every faulted socket…
    for (i, fs) in report.faults.iter().enumerate() {
        let fs = fs.expect("both relays are faulted");
        assert!(fs.dropped > 0, "relay {i} dropped packets: {fs:?}");
        assert!(fs.duplicated > 0, "relay {i} duplicated packets: {fs:?}");
        assert!(fs.reordered > 0, "relay {i} reordered packets: {fs:?}");
    }

    // …and recovery did real work to beat them.
    assert!(
        report.receiver.stats.nacks_sent > 0,
        "receiver NACKed stalled generations: {:?}",
        report.receiver.stats
    );
    assert!(
        report.source.retransmit_packets > 0,
        "source retransmitted fresh combinations: {:?}",
        report.source
    );
    assert!(report.source.nacks_received > 0, "NACKs reached the source");
    assert!(
        report.source.generations_recovered > 0,
        "recovered generations are counted"
    );
    assert_eq!(report.source.unrecovered, 0, "nothing was abandoned");

    // Relays survived the abuse without choking on feedback or signals.
    for (i, rs) in report.relays.iter().enumerate() {
        assert!(
            rs.datagrams_in > 0 && rs.datagrams_out > 0,
            "relay {i} flowed"
        );
        assert_eq!(rs.rejected_signals, 0, "relay {i} control plane clean");
    }

    // The endpoint registry snapshot is the same source of truth the
    // typed stats came from — the numbers must agree, and the repair
    // work must have left trace events behind.
    let snap = &report.snapshot;
    assert_eq!(
        snap.counter("recovery.nacks_sent"),
        Some(report.receiver.stats.nacks_sent)
    );
    assert_eq!(
        snap.counter("recovery.retransmit_packets"),
        Some(report.source.retransmit_packets)
    );
    assert!(snap.counter("rlnc.decode.generations").unwrap() > 0);
    assert!(snap.histogram("recovery.backoff_ns").unwrap().count > 0);
    assert!(
        snap.events
            .iter()
            .any(|e| e.kind == ncvnf_obs::TraceKind::RepairBurst),
        "repair bursts were traced"
    );
    assert!(
        snap.events
            .iter()
            .any(|e| e.kind == ncvnf_obs::TraceKind::GenerationDecoded),
        "decoded generations were traced"
    );
}

/// Under sustained loss the AIMD controller must actually raise the
/// redundancy above its floor (and report the peak), so the source
/// front-loads extra combinations instead of relying on round trips.
#[test]
fn adaptive_redundancy_rises_under_chaos() {
    let seed = chaos_seed().wrapping_add(1);
    let config = TransferConfig {
        session: SessionId::new(13),
        generation: GenerationConfig::new(128, 4).unwrap(),
        redundancy: RedundancyPolicy::NC0,
        rate_bps: 50e6,
        seed,
    };
    let recovery = RecoveryConfig {
        decode_timeout: Duration::from_millis(30),
        nack_interval: Duration::from_millis(30),
        backoff_base: Duration::from_millis(10),
        max_retries: 12,
        ..RecoveryConfig::default()
    };
    let object: Vec<u8> = (0..24 * 1024u32).map(|i| (i * 31) as u8).collect();
    let faults = [Some(
        FaultConfig::new(seed)
            .with_drop(0.20)
            .with_directions(true, true),
    )];

    let report = reliable_chain(
        &config,
        &recovery,
        &object,
        &faults,
        Duration::from_secs(60),
    )
    .expect("chain runs")
    .expect("transfer completes");

    assert_eq!(report.receiver.object, object);
    assert!(
        report.source.peak_extra > 0,
        "AIMD redundancy rose above the NC0 floor: {:?}",
        report.source
    );
    // The peak is also published as a registry gauge.
    let peak = report
        .snapshot
        .gauge("rlnc.redundancy.peak_extra")
        .expect("gauge registered");
    assert!(peak > 0.0, "peak redundancy gauge rose: {peak}");
}
