//! The relay processing step is allocation-free at steady state.
//!
//! Extends the rlnc counting-allocator test to the full relay data path:
//! after warm-up, a [`relay_step`] cycle — recycle the previous packets,
//! parse the datagram into pooled buffers, recode (or pass through),
//! serialize into the scratch wire buffer, send — must perform zero heap
//! operations, for both the forwarder and recoder roles. The counter is
//! scoped to the measuring thread so harness threads (e.g. libtest's
//! result-channel lazy init) cannot pollute it.
//!
//! The scratch is *instrumented*: every measured step records into the
//! `ncvnf-obs` registry (counters, the pending-depth gauge, and sampled
//! step-latency histogram), so this test also proves the observability
//! layer's record path is heap-free.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};

use ncvnf_control::ForwardingTable;
use ncvnf_dataplane::{CodingVnf, VnfRole};
use ncvnf_obs::Registry;
use ncvnf_relay::{
    relay_batch, relay_step, shard_of, BatchScratch, QuotaConfig, RecvBatch, RelayEngine,
    RelayScratch, RelayShard, RouteCache, MAX_BATCH,
};
use ncvnf_rlnc::{
    GenerationConfig, GenerationEncoder, PayloadPool, SessionId, WindowConfig, WindowEncoder,
};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct CountingAlloc;

static HEAP_OPS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Count only allocations made by the thread under measurement: the
    // libtest main thread lazily initializes its mpsc receiver context
    // (one-time ~48 B Arc) while blocked waiting for the test result,
    // which otherwise races into the measured window. Const-initialized
    // native TLS for a `Cell<bool>` never allocates, so reading the flag
    // inside the allocator is safe.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn counting_here() -> bool {
    COUNTING.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_here() {
            HEAP_OPS.fetch_add(1, Ordering::SeqCst);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_here() {
            HEAP_OPS.fetch_add(1, Ordering::SeqCst);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Number of heap allocations (incl. reallocations) performed by `work`
/// on the calling thread.
fn heap_ops_during(mut work: impl FnMut()) -> u64 {
    let before = HEAP_OPS.load(Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
    work();
    COUNTING.with(|c| c.set(false));
    HEAP_OPS.load(Ordering::SeqCst) - before
}

const BLOCK: usize = 1460;
const G: usize = 4;

fn relay_with_role(role: VnfRole) -> Mutex<RelayEngine> {
    let config = GenerationConfig::new(BLOCK, G).expect("valid layout");
    let mut vnf = CodingVnf::new(config, 16);
    vnf.set_role(SessionId::new(1), role);
    Mutex::new(RelayEngine::new(vnf, StdRng::seed_from_u64(0xA110_C002)))
}

fn routes() -> Mutex<RouteCache> {
    let mut table = ForwardingTable::new();
    table.set(SessionId::new(1), vec!["127.0.0.1:9000".to_string()]);
    let mut cache = RouteCache::new();
    cache.rebuild(&table);
    Mutex::new(cache)
}

/// One step per pre-serialized wire datagram, with a send sink that only
/// reads the bytes (a checksum stands in for the `send_to` syscall).
fn drive(
    engine: &Mutex<RelayEngine>,
    routes: &Mutex<RouteCache>,
    scratch: &mut RelayScratch,
    wires: &[Vec<u8>],
    sink: &mut u64,
) {
    for wire in wires {
        let mut send = |_hop: SocketAddr, bytes: &[u8]| {
            *sink = sink.wrapping_add(bytes.iter().map(|&b| b as u64).sum::<u64>());
            true
        };
        relay_step(engine, routes, scratch, wire, &mut send);
    }
}

#[test]
fn warm_relay_forward_and_recode_steps_do_not_allocate() {
    let config = GenerationConfig::new(BLOCK, G).expect("valid layout");
    let data: Vec<u8> = (0..config.generation_payload())
        .map(|i| (i * 7 + 3) as u8)
        .collect();
    let enc = GenerationEncoder::new(config, &data).expect("valid generation");
    let mut rng = StdRng::seed_from_u64(0xA110_C003);
    // A ring of pre-serialized datagrams for one generation: the steady
    // state of a relay serving a session (the generation reaches full rank
    // during warm-up, after which absorb is a cheap early return).
    let wires: Vec<Vec<u8>> = (0..32)
        .map(|_| {
            enc.coded_packet(SessionId::new(1), 0, &mut rng)
                .to_bytes()
                .to_vec()
        })
        .collect();
    let mut sink = 0u64;

    for role in [VnfRole::Recoder, VnfRole::Forwarder] {
        let engine = relay_with_role(role);
        let routes = routes();
        // Metrics ON: registration (the only locking/allocating part)
        // happens here, outside the measured window.
        let registry = Registry::new();
        let mut scratch = RelayScratch::instrumented(&registry);

        // Warm-up: fills the pool, brings the generation to full rank, and
        // settles every scratch buffer at its final capacity.
        for _ in 0..8 {
            drive(&engine, &routes, &mut scratch, &wires, &mut sink);
        }

        let steps = 4 * wires.len() as u64;
        let allocs = heap_ops_during(|| {
            for _ in 0..4 {
                drive(&engine, &routes, &mut scratch, &wires, &mut sink);
            }
        });
        assert_eq!(
            allocs, 0,
            "warm {role:?} relay step must not touch the heap ({steps} datagrams)"
        );

        let stats = engine.lock().vnf().stats();
        assert_eq!(stats.packets_in, 12 * wires.len() as u64);
        assert_eq!(stats.malformed, 0);
        // The zero-alloc steps really did record: every step counted,
        // and the sampled latency histogram saw its 1-in-32 share.
        let snap = registry.snapshot();
        assert_eq!(snap.counter("relay.steps"), Some(12 * wires.len() as u64));
        let step_ns = snap.histogram("relay.step_ns").expect("registered");
        assert!(
            step_ns.count >= 12 * wires.len() as u64 / 32,
            "sampled latency points recorded ({})",
            step_ns.count
        );
        let pool = engine.lock().vnf().pool_stats();
        assert!(
            pool.hit_rate() > 0.9,
            "steady state should run from recycled buffers (hit rate {})",
            pool.hit_rate()
        );
    }
    assert_ne!(sink, 0, "send sink observed real bytes");
}

/// The sharded batch path ([`relay_batch`]) is also allocation-free at
/// steady state, per shard, with metrics ON: one full receive batch
/// spanning generations owned by all four shards — dispatch, per-shard
/// recycle + recode, serialization into the egress arena, and the batch
/// metrics record — performs zero heap operations once warm.
#[test]
fn warm_sharded_batch_does_not_allocate() {
    const SHARDS: usize = 4;
    let config = GenerationConfig::new(BLOCK, G).expect("valid layout");
    let data: Vec<u8> = (0..config.generation_payload())
        .map(|i| (i * 11 + 5) as u8)
        .collect();
    let enc = GenerationEncoder::new(config, &data).expect("valid generation");
    let mut rng = StdRng::seed_from_u64(0xA110_C004);

    // One generation per shard: walk generation ids until every shard
    // owns exactly one, so a single receive batch exercises all four
    // engine locks.
    let mut picks: Vec<u64> = Vec::new();
    let mut owners_seen = [false; SHARDS];
    for g in 0..256u64 {
        let owner = shard_of(SessionId::new(1), g, SHARDS);
        if !owners_seen[owner] {
            owners_seen[owner] = true;
            picks.push(g);
        }
    }
    assert_eq!(picks.len(), SHARDS, "found one generation per shard");

    // A full batch cycling through those generations, pre-serialized
    // once (the steady state: every generation at full rank).
    let src: SocketAddr = ([127, 0, 0, 1], 4242).into();
    let mut batch = RecvBatch::new(MAX_BATCH, 2048);
    let mut i = 0usize;
    loop {
        let generation = picks[i % SHARDS];
        let wire = enc
            .coded_packet(SessionId::new(1), generation, &mut rng)
            .to_bytes()
            .to_vec();
        if !batch.push(&wire, src) {
            break;
        }
        i += 1;
    }
    assert_eq!(batch.len(), MAX_BATCH, "batch filled to capacity");

    let mut table = ForwardingTable::new();
    table.set(SessionId::new(1), vec!["127.0.0.1:9000".to_string()]);
    let shards: Vec<RelayShard> = (0..SHARDS as u64)
        .map(|s| {
            let config = GenerationConfig::new(BLOCK, G).expect("valid layout");
            let mut vnf = CodingVnf::new(config, 16);
            vnf.set_role(SessionId::new(1), VnfRole::Recoder);
            let shard = RelayShard::new(RelayEngine::new(
                vnf,
                StdRng::seed_from_u64(0xA110_C005 + s),
            ));
            shard.routes().lock().rebuild(&table);
            shard
        })
        .collect();

    // Metrics ON: registration happens here, outside the measured window.
    let registry = Registry::new();
    let mut scratch = BatchScratch::instrumented(SHARDS, &registry);

    // Warm-up: full rank everywhere, pools filled, every scratch buffer
    // (dispatch groups, egress arena, recycle queues) at final capacity.
    for _ in 0..8 {
        relay_batch(&shards, 0, &mut scratch, &batch);
    }

    const MEASURED: u64 = 4;
    let allocs = heap_ops_during(|| {
        for _ in 0..MEASURED {
            let report = relay_batch(&shards, 0, &mut scratch, &batch);
            assert_eq!(report.steps, MAX_BATCH as u64);
        }
    });
    assert_eq!(
        allocs, 0,
        "a warm {MAX_BATCH}-datagram batch across {SHARDS} shards must not touch the heap"
    );

    // Every shard really processed its slice of each batch.
    for (s, shard) in shards.iter().enumerate() {
        let stats = shard.engine().lock().vnf().stats();
        assert_eq!(
            stats.packets_in,
            (8 + MEASURED) * (MAX_BATCH / SHARDS) as u64,
            "shard {s} saw its dispatch group every batch"
        );
        assert_eq!(stats.malformed, 0);
    }
    // The zero-alloc batches really did record, including the batch
    // family.
    let snap = registry.snapshot();
    let batches = 8 + MEASURED;
    assert_eq!(snap.counter("relay.batches"), Some(batches));
    assert_eq!(
        snap.counter("relay.steps"),
        Some(batches * MAX_BATCH as u64)
    );
    let fill = snap.histogram("relay.batch_fill").expect("registered");
    assert_eq!(fill.count, batches);
    assert_eq!(
        snap.counter("relay.cross_shard_packets"),
        Some(batches * (MAX_BATCH - MAX_BATCH / SHARDS) as u64),
        "home shard 0 owns a quarter of each batch"
    );
}

/// The windowed relay path is heap-free at steady state too: a warm
/// batch of sliding-window datagrams (wire kind 2) — dispatch by
/// session, recycle the previous emissions, absorb into the session's
/// [`WindowRecoder`], recode, serialize — performs zero heap operations
/// once the recoder is saturated and every scratch buffer has settled.
#[test]
fn warm_windowed_batch_does_not_allocate() {
    const CAPACITY: usize = 8;
    let window = WindowConfig::new(BLOCK, CAPACITY).expect("valid window");
    let mut enc = WindowEncoder::new(window, SessionId::new(1));
    let mut rng = StdRng::seed_from_u64(0xA110_C008);
    let mut symbol = vec![0u8; BLOCK];
    for _ in 0..CAPACITY {
        use rand::Rng;
        rng.fill(&mut symbol[..]);
        enc.push(&symbol).expect("window has room");
    }

    // A full receive batch of coded window packets over one live window
    // (the steady state of a relay serving a stream between slides).
    let mut pool = PayloadPool::new();
    let src: SocketAddr = ([127, 0, 0, 1], 4244).into();
    let mut batch = RecvBatch::new(MAX_BATCH, 2048);
    loop {
        let pkt = enc
            .coded_packet_pooled(&mut rng, &mut pool)
            .expect("window is non-empty");
        let wire = pkt.to_bytes();
        pool.recycle_window(pkt);
        if !batch.push(&wire, src) {
            break;
        }
    }
    assert_eq!(batch.len(), MAX_BATCH, "batch filled to capacity");

    let mut table = ForwardingTable::new();
    table.set(SessionId::new(1), vec!["127.0.0.1:9000".to_string()]);
    let config = GenerationConfig::new(BLOCK, G).expect("valid layout");
    let mut vnf = CodingVnf::new(config, 16);
    vnf.set_role(SessionId::new(1), VnfRole::Recoder);
    let shards = [RelayShard::new(RelayEngine::new(
        vnf,
        StdRng::seed_from_u64(0xA110_C009),
    ))];
    shards[0].routes().lock().rebuild(&table);

    // Metrics ON: registration happens here, outside the measured window.
    let registry = Registry::new();
    let mut scratch = BatchScratch::instrumented(1, &registry);

    // Warm-up: the recoder saturates its window, pools fill, and the
    // windowed dispatch/decision/emission buffers reach final capacity.
    for _ in 0..8 {
        relay_batch(&shards, 0, &mut scratch, &batch);
    }

    const MEASURED: u64 = 4;
    let allocs = heap_ops_during(|| {
        for _ in 0..MEASURED {
            let report = relay_batch(&shards, 0, &mut scratch, &batch);
            assert_eq!(report.window_steps, MAX_BATCH as u64);
        }
    });
    assert_eq!(
        allocs, 0,
        "a warm {MAX_BATCH}-datagram windowed batch must not touch the heap"
    );

    let stats = shards[0].engine().lock().vnf().stats();
    assert_eq!(
        stats.window_packets_in,
        (8 + MEASURED) * MAX_BATCH as u64,
        "every windowed datagram reached the VNF"
    );
    assert_eq!(stats.malformed, 0);
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("relay.window_packets"),
        Some((8 + MEASURED) * MAX_BATCH as u64)
    );
    let pool_stats = shards[0].engine().lock().vnf().pool_stats();
    assert!(
        pool_stats.hit_rate() > 0.9,
        "steady state should run from recycled buffers (hit rate {})",
        pool_stats.hit_rate()
    );
}

/// The admission gate on the non-shedding path is heap-free too: with
/// the overload regime armed by a provisioned quota (generous enough
/// that every datagram is admitted), a warm batch — peek, token-bucket
/// take, pressure check, then the usual recycle/recode/serialize — must
/// still perform zero heap operations.
#[test]
fn warm_batch_with_admission_gate_does_not_allocate() {
    let config = GenerationConfig::new(BLOCK, G).expect("valid layout");
    let data: Vec<u8> = (0..config.generation_payload())
        .map(|i| (i * 13 + 1) as u8)
        .collect();
    let enc = GenerationEncoder::new(config, &data).expect("valid generation");
    let mut rng = StdRng::seed_from_u64(0xA110_C006);

    let src: SocketAddr = ([127, 0, 0, 1], 4243).into();
    let mut batch = RecvBatch::new(MAX_BATCH, 2048);
    while batch.push(
        &enc.coded_packet(SessionId::new(1), 0, &mut rng).to_bytes(),
        src,
    ) {}
    assert_eq!(batch.len(), MAX_BATCH, "batch filled to capacity");

    let mut table = ForwardingTable::new();
    table.set(SessionId::new(1), vec!["127.0.0.1:9000".to_string()]);
    let mut vnf = CodingVnf::new(config, 16);
    vnf.set_role(SessionId::new(1), VnfRole::Forwarder);
    let mut engine = RelayEngine::new(vnf, StdRng::seed_from_u64(0xA110_C007));
    // A quota no warm batch can drain: the gate runs on every datagram
    // but never sheds, which is the regime this test pins.
    engine.provision_quota(
        SessionId::new(1),
        QuotaConfig {
            rate_pps: 1e9,
            burst: 1e6,
            priority: 0,
        },
    );
    let shards = [RelayShard::new(engine)];
    shards[0].routes().lock().rebuild(&table);
    let mut scratch = BatchScratch::new(1);

    for _ in 0..8 {
        relay_batch(&shards, 0, &mut scratch, &batch);
    }

    const MEASURED: u64 = 4;
    let allocs = heap_ops_during(|| {
        for _ in 0..MEASURED {
            let report = relay_batch(&shards, 0, &mut scratch, &batch);
            assert_eq!(report.steps, MAX_BATCH as u64);
            assert_eq!(report.total_shed(), 0, "nothing shed at this quota");
        }
    });
    assert_eq!(
        allocs, 0,
        "the admission gate must not touch the heap while admitting"
    );

    let guard = shards[0].engine().lock();
    let ov = guard.overload().expect("regime armed by the quota");
    assert_eq!(
        ov.stats().admitted,
        (8 + MEASURED) * MAX_BATCH as u64,
        "every datagram went through the token bucket"
    );
    assert_eq!(ov.stats().total_shed(), 0);
}
