//! Live control-plane reconfiguration of a running relay.
//!
//! Covers the Table III scenario end to end: a forwarding-table swap is
//! applied to a relay *while data is flowing through it*, and the control
//! channel distinguishes applied signals (`OK`) from rejected ones
//! (`ERR`).

use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ncvnf_control::signal::{Signal, VnfRoleWire};
use ncvnf_control::ForwardingTable;
use ncvnf_relay::{RelayConfig, RelayNode};
use ncvnf_rlnc::{GenerationConfig, GenerationEncoder, SessionId};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SESSION: u16 = 7;

fn cfg() -> GenerationConfig {
    GenerationConfig::new(256, 4).unwrap()
}

fn control_client() -> UdpSocket {
    let s = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    s
}

/// Sends a signal and returns the relay's reply bytes.
fn signal_roundtrip(control: &UdpSocket, to: std::net::SocketAddr, sig: &Signal) -> Vec<u8> {
    let mut ack = [0u8; 16];
    control.send_to(&sig.to_bytes(), to).unwrap();
    let (n, _) = control.recv_from(&mut ack).expect("relay replies");
    ack[..n].to_vec()
}

fn table_signal(hop: String) -> Signal {
    let mut table = ForwardingTable::new();
    table.set(SessionId::new(SESSION), vec![hop]);
    Signal::NcForwardTab {
        table: table.to_text(),
    }
}

/// Number of packets received on `sink` during `window`.
fn drain_for(sink: &UdpSocket, window: Duration) -> u64 {
    let mut buf = vec![0u8; 2048];
    let deadline = Instant::now() + window;
    let mut got = 0;
    while Instant::now() < deadline {
        if sink.recv_from(&mut buf).is_ok() {
            got += 1;
        }
    }
    got
}

/// Swapping the forwarding table under live traffic: after the swap ACK
/// (plus a grace window for packets already in flight), the removed hop
/// goes silent, the new hop receives traffic, and shutdown completes
/// without deadlock.
#[test]
fn table_swap_under_live_traffic_redirects_cleanly() {
    let relay = RelayNode::spawn(RelayConfig {
        generation: cfg(),
        buffer_generations: 64,
        seed: 3,
        heartbeat: None,
        registry: None,
        ..RelayConfig::default()
    })
    .unwrap();
    let sink_a = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    let sink_b = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    for s in [&sink_a, &sink_b] {
        s.set_read_timeout(Some(Duration::from_millis(20))).unwrap();
    }

    let control = control_client();
    let settings = Signal::NcSettings {
        session: SessionId::new(SESSION),
        role: VnfRoleWire::Recoder,
        data_port: relay.data_addr.port(),
        block_size: 256,
        generation_size: 4,
        buffer_generations: 64,
    };
    assert_eq!(
        signal_roundtrip(&control, relay.control_addr, &settings),
        b"OK"
    );
    let hop_a = sink_a.local_addr().unwrap().to_string();
    assert_eq!(
        signal_roundtrip(&control, relay.control_addr, &table_signal(hop_a)),
        b"OK"
    );

    // Live traffic: a sender thread streams coded packets at the relay for
    // the whole test.
    let stop = Arc::new(AtomicBool::new(false));
    let sent = Arc::new(AtomicU64::new(0));
    let sender = {
        let stop = Arc::clone(&stop);
        let sent = Arc::clone(&sent);
        let data_addr = relay.data_addr;
        std::thread::spawn(move || {
            let enc = GenerationEncoder::new(cfg(), &[0xAB; 1024]).unwrap();
            let mut rng = StdRng::seed_from_u64(11);
            let socket = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
            let mut generation = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for _ in 0..8 {
                    let pkt = enc.coded_packet(SessionId::new(SESSION), generation, &mut rng);
                    let _ = socket.send_to(&pkt.to_bytes(), data_addr);
                    sent.fetch_add(1, Ordering::Relaxed);
                }
                generation += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };

    assert!(
        drain_for(&sink_a, Duration::from_millis(200)) > 0,
        "traffic reaches hop A before the swap"
    );

    // Swap A → B while the sender keeps going.
    let hop_b = sink_b.local_addr().unwrap().to_string();
    assert_eq!(
        signal_roundtrip(&control, relay.control_addr, &table_signal(hop_b)),
        b"OK"
    );

    // Grace window: packets the data thread had already routed (plus any
    // queued in A's socket buffer) may still arrive.
    drain_for(&sink_a, Duration::from_millis(200));

    let late_a = drain_for(&sink_a, Duration::from_millis(300));
    assert_eq!(late_a, 0, "no packet reaches the removed hop after swap");
    assert!(
        drain_for(&sink_b, Duration::from_millis(300)) > 0,
        "traffic reaches the new hop after the swap"
    );

    stop.store(true, Ordering::Relaxed);
    sender.join().unwrap();
    let handle = relay.handle();
    let stats = handle.stats();
    relay.shutdown(); // must not deadlock with traffic recently in flight
    assert!(stats.datagrams_in > 0);
    assert!(stats.datagrams_out > 0);
    assert_eq!(handle.stats().rejected_signals, 0);
}

/// The control channel replies `ERR` (not `OK`) both for frames that do
/// not decode and for well-formed `NC_FORWARD_TAB` signals whose table is
/// rejected — and keeps serving afterwards.
#[test]
fn rejected_signals_get_err_replies() {
    let relay = RelayNode::spawn(RelayConfig::default()).unwrap();
    let control = control_client();

    // Garbage frame: undecodable. The reply names the reason.
    let mut ack = [0u8; 16];
    control.send_to(b"\xEE junk", relay.control_addr).unwrap();
    let (n, _) = control.recv_from(&mut ack).expect("relay replies to junk");
    assert_eq!(&ack[..n], b"ERR bad-frame");

    // Valid frame, invalid table text: daemon rejects the swap.
    let bad_table = Signal::NcForwardTab {
        table: "bogus line\n".into(),
    };
    assert_eq!(
        signal_roundtrip(&control, relay.control_addr, &bad_table),
        b"ERR bad-table"
    );

    // The relay still applies good signals afterwards.
    assert_eq!(
        signal_roundtrip(
            &control,
            relay.control_addr,
            &table_signal("127.0.0.1:9999".into())
        ),
        b"OK"
    );

    let handle = relay.handle();
    let stats = handle.stats();
    relay.shutdown();
    assert_eq!(stats.rejected_signals, 2);
    assert_eq!(stats.signals, 2, "decodable frames are counted");
}

/// A rejected table swap must leave the previous routes fully in force:
/// traffic flowing through the relay keeps reaching the old hop while
/// and after the bad swap is refused.
#[test]
fn rejected_table_swap_preserves_routes_under_traffic() {
    let relay = RelayNode::spawn(RelayConfig {
        generation: cfg(),
        buffer_generations: 64,
        seed: 9,
        heartbeat: None,
        registry: None,
        ..RelayConfig::default()
    })
    .unwrap();
    let sink = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    sink.set_read_timeout(Some(Duration::from_millis(20)))
        .unwrap();

    let control = control_client();
    let settings = Signal::NcSettings {
        session: SessionId::new(SESSION),
        role: VnfRoleWire::Recoder,
        data_port: relay.data_addr.port(),
        block_size: 256,
        generation_size: 4,
        buffer_generations: 64,
    };
    assert_eq!(
        signal_roundtrip(&control, relay.control_addr, &settings),
        b"OK"
    );
    let hop = sink.local_addr().unwrap().to_string();
    assert_eq!(
        signal_roundtrip(&control, relay.control_addr, &table_signal(hop)),
        b"OK"
    );
    let handle = relay.handle();
    let good_table = handle.table_text();

    let stop = Arc::new(AtomicBool::new(false));
    let sender = {
        let stop = Arc::clone(&stop);
        let data_addr = relay.data_addr;
        std::thread::spawn(move || {
            let enc = GenerationEncoder::new(cfg(), &[0x5A; 1024]).unwrap();
            let mut rng = StdRng::seed_from_u64(17);
            let socket = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
            let mut generation = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for _ in 0..8 {
                    let pkt = enc.coded_packet(SessionId::new(SESSION), generation, &mut rng);
                    let _ = socket.send_to(&pkt.to_bytes(), data_addr);
                }
                generation += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };

    assert!(
        drain_for(&sink, Duration::from_millis(200)) > 0,
        "traffic flows before the bad swap"
    );

    // A malformed table is refused mid-stream…
    let bad_table = Signal::NcForwardTab {
        table: "session notanumber 127.0.0.1:1\n".into(),
    };
    assert_eq!(
        signal_roundtrip(&control, relay.control_addr, &bad_table),
        b"ERR bad-table"
    );

    // …and the old routes stay in force: the hop keeps receiving.
    assert!(
        drain_for(&sink, Duration::from_millis(300)) > 0,
        "old RouteCache survives a rejected swap"
    );
    assert_eq!(
        handle.table_text(),
        good_table,
        "authoritative table is untouched by the rejected swap"
    );

    stop.store(true, Ordering::Relaxed);
    sender.join().unwrap();
    let stats = handle.stats();
    relay.shutdown();
    assert_eq!(stats.rejected_signals, 1);
    assert!(stats.datagrams_out > 0);
}
