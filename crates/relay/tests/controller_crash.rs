//! Crash-safe controller end to end (DESIGN.md §13).
//!
//! A controller wires a source → R0 → R1 → receiver relay chain with
//! epoch-fenced signals, journaling every action write-ahead. Mid-
//! transfer it "crashes" at the worst moment: a v2 table for R0 is
//! journaled but never sent, and the journal file gains a torn partial
//! frame (the classic power-cut tail). A second incarnation then:
//!
//! 1. replays the journal — detecting and truncating the torn tail;
//! 2. fences itself one epoch above everything journaled;
//! 3. reconciles: R1's live table digest matches the belief (re-adopt
//!    untouched), R0's diverged (the interrupted push — re-push), and a
//!    lingering instance whose τ deadline passed during the outage is
//!    expired without probing;
//! 4. survives a zombie predecessor: a stale-epoch push is rejected
//!    without being applied, and a duplicate of the reconciler's own
//!    push is ACKed without re-applying — both asserted via registry
//!    counters, not just replies.
//!
//! Throughout, the reliable transfer keeps running and completes
//! byte-identically.

use std::fs::OpenOptions;
use std::io::Write;
use std::net::UdpSocket;
use std::path::PathBuf;
use std::time::Duration;

use ncvnf_control::signal::{FencedSignal, Signal, VnfRoleWire};
use ncvnf_control::{
    reconcile, ControlMetrics, ControlRecord, ForwardingTable, Journal, NodeStatus, SenderConfig,
    SignalSender,
};
use ncvnf_obs::Registry;
use ncvnf_relay::{
    send_object_reliable, RecoveryConfig, RelayConfig, RelayNode, ReliableReceiver, TransferConfig,
    TransferObs,
};
use ncvnf_rlnc::{GenerationConfig, ObjectEncoder, RedundancyPolicy, SessionId};

const SESSION: u16 = 31;
/// Controller-clock deadline of the lingering node 9 — long past by the
/// time the new incarnation reconciles at `NOW_SECS`.
const LINGER_DEADLINE: f64 = 100.0;
const NOW_SECS: f64 = 1000.0;

fn transfer_config() -> TransferConfig {
    TransferConfig {
        session: SessionId::new(SESSION),
        generation: GenerationConfig::new(256, 4).unwrap(),
        redundancy: RedundancyPolicy::NC0,
        // Slow enough that the crash + recovery lands mid-transfer.
        rate_bps: 400e3,
        seed: 0xC4A5,
    }
}

fn relay_config(node_id: u32) -> RelayConfig {
    RelayConfig {
        generation: transfer_config().generation,
        buffer_generations: 256,
        seed: 0xBEEF + node_id as u64,
        heartbeat: None,
        registry: None,
        ..RelayConfig::default()
    }
}

fn settings_for(relay: &RelayNode) -> Signal {
    let gen = transfer_config().generation;
    Signal::NcSettings {
        session: SessionId::new(SESSION),
        role: VnfRoleWire::Recoder,
        data_port: relay.data_addr.port(),
        block_size: gen.block_size() as u32,
        generation_size: gen.blocks_per_generation() as u32,
        buffer_generations: 256,
    }
}

fn table_text_to(hop: std::net::SocketAddr) -> String {
    let mut table = ForwardingTable::new();
    table.set(SessionId::new(SESSION), vec![hop.to_string()]);
    table.to_text()
}

fn temp_journal() -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("ncvnf-controller-crash-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn controller_crash_recovers_from_journal_and_reconciles() {
    let r0 = RelayNode::spawn(relay_config(0)).unwrap();
    let r1 = RelayNode::spawn(relay_config(1)).unwrap();

    let config = transfer_config();
    let object: Vec<u8> = (0..20 * 1024u32)
        .map(|i| (i.wrapping_mul(41)) as u8)
        .collect();
    let encoder = ObjectEncoder::new(config.generation, config.session, &object).unwrap();

    let source_socket = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    let recovery = RecoveryConfig {
        decode_timeout: Duration::from_millis(50),
        nack_interval: Duration::from_millis(50),
        backoff_base: Duration::from_millis(25),
        max_retries: 10,
        idle_timeout: Duration::from_secs(5),
        ..RecoveryConfig::default()
    };
    let obs = TransferObs::new();
    let receiver = ReliableReceiver::spawn(
        &config,
        &recovery,
        encoder.generations(),
        source_socket.local_addr().unwrap(),
        &obs,
    )
    .unwrap();

    // ---- Controller incarnation #1: journaled, fenced wiring. -------
    let journal_path = temp_journal();
    let (mut journal, state0, report0) = Journal::open(&journal_path).unwrap();
    assert_eq!(report0.records, 0, "fresh journal");
    let epoch1 = state0.next_epoch();
    assert_eq!(epoch1, 1);
    journal
        .log(&ControlRecord::EpochStarted { epoch: epoch1 })
        .unwrap();

    let gen = config.generation;
    journal
        .log(&ControlRecord::SessionCreated {
            session: SessionId::new(SESSION),
            block_size: gen.block_size() as u32,
            generation_size: gen.blocks_per_generation() as u32,
            buffer_generations: 256,
        })
        .unwrap();
    for (node, relay) in [(0u32, &r0), (1u32, &r1)] {
        journal
            .log(&ControlRecord::VnfLaunched {
                node,
                data_center: "dc-east".into(),
                control_addr: relay.control_addr.to_string(),
            })
            .unwrap();
    }
    // Node 9: an instance the previous incarnation put in the τ-pool.
    // Its linger deadline passes during the outage; the new incarnation
    // must expire it from the journal alone, without probing.
    journal
        .log(&ControlRecord::VnfLaunched {
            node: 9,
            data_center: "dc-east".into(),
            control_addr: "127.0.0.1:1".into(),
        })
        .unwrap();
    journal
        .log(&ControlRecord::VnfEnded {
            node: 9,
            linger_deadline_secs: LINGER_DEADLINE,
        })
        .unwrap();

    let mut sender1 = SignalSender::new(epoch1, SenderConfig::default()).unwrap();
    let r0_table_v1 = table_text_to(r1.data_addr);
    let r1_table = table_text_to(receiver.addr);
    for (node, relay, table) in [(0u32, &r0, &r0_table_v1), (1u32, &r1, &r1_table)] {
        sender1
            .push(relay.control_addr, &settings_for(relay))
            .unwrap();
        let receipt = sender1
            .push(
                relay.control_addr,
                &Signal::NcForwardTab {
                    table: table.clone(),
                },
            )
            .unwrap();
        journal
            .log(&ControlRecord::TablePushed {
                node,
                epoch: epoch1,
                seq: receipt.seq,
                table: table.clone(),
            })
            .unwrap();
    }

    // Stream in the background; the crash + recovery lands mid-pass.
    let transfer = {
        let config = config.clone();
        let object = object.clone();
        let first_hop = r0.data_addr;
        let obs = obs.clone();
        std::thread::spawn(move || {
            send_object_reliable(
                &source_socket,
                &config,
                &recovery,
                &object,
                &[first_hop],
                &obs,
            )
            .expect("source runs")
        })
    };
    std::thread::sleep(Duration::from_millis(100));

    // ---- The crash. --------------------------------------------------
    // Write-ahead means the journal can be exactly one push ahead of the
    // network: a v2 table for R0 (same route plus a new session) is
    // committed to the WAL, but the controller dies before sending it.
    let r0_v2_delta = {
        let mut t = ForwardingTable::new();
        t.set(SessionId::new(99), vec!["127.0.0.1:9".to_string()]);
        t.to_text()
    };
    journal
        .log(&ControlRecord::TablePushed {
            node: 0,
            epoch: epoch1,
            seq: sender1.next_seq(r0.control_addr),
            table: r0_v2_delta.clone(),
        })
        .unwrap();
    drop(journal);
    drop(sender1);
    // The power cut leaves a torn frame at the tail: a length header
    // promising 64 bytes, followed by only 4.
    {
        let mut f = OpenOptions::new().append(true).open(&journal_path).unwrap();
        f.write_all(&[0, 0, 0, 64, 0xDE, 0xAD, 0xBE, 0xEF]).unwrap();
        f.sync_all().unwrap();
    }

    // ---- Controller incarnation #2: replay, fence, reconcile. --------
    let registry = Registry::new();
    let metrics = ControlMetrics::register(&registry);
    let (mut journal2, state, replay) = Journal::open(&journal_path).unwrap();
    journal2 = journal2.with_metrics(metrics.clone());
    metrics.record_journal_replay(replay.records, replay.torn_tail);

    assert!(replay.torn_tail, "the torn tail was detected");
    assert_eq!(replay.truncated_bytes, 8, "exactly the partial frame went");
    assert_eq!(replay.records, 9, "every committed record replayed");
    assert_eq!(state.epoch, epoch1);
    assert!(state.sessions.contains_key(&SessionId::new(SESSION)));
    assert_eq!(state.nodes.len(), 3);
    assert!(matches!(
        state.nodes[&9].status,
        NodeStatus::Draining { .. }
    ));
    // The journal-believed R0 table is v1 ∪ v2 — ahead of the network.
    assert!(state.nodes[&0]
        .table
        .next_hops(SessionId::new(99))
        .is_some());

    // The rebuilt τ-pool expires node 9 the moment the clock catches up.
    let mut pool = state.rebuild_pool(600.0, 80.0);
    assert_eq!(pool.total_launches(), 3);
    assert_eq!(pool.billable(0.0), 3);
    pool.tick(NOW_SECS);
    assert_eq!(pool.active(), 2);
    assert_eq!(pool.billable(NOW_SECS), 2, "the overdue lingerer is gone");

    let epoch2 = state.next_epoch();
    assert_eq!(epoch2, 2, "fenced one above everything journaled");
    journal2
        .log(&ControlRecord::EpochStarted { epoch: epoch2 })
        .unwrap();
    let mut sender2 = SignalSender::new(epoch2, SenderConfig::default())
        .unwrap()
        .with_metrics(metrics.clone());

    let report = reconcile(&mut sender2, &state, NOW_SECS, Some(&metrics));
    assert_eq!(
        report.plan.readopt,
        vec![1],
        "R1's digest matched: untouched"
    );
    assert_eq!(report.plan.expired, vec![9], "τ window closed while down");
    assert!(report.plan.unreachable.is_empty());
    assert_eq!(report.plan.repush.len(), 1, "only R0 diverged");
    assert_eq!(report.plan.repush[0].0, 0);
    assert_eq!(report.repushed_ok, 1, "the interrupted push landed");
    assert!(report.repush_failures.is_empty());
    for node in &report.plan.expired {
        journal2
            .log(&ControlRecord::PoolExpired { node: *node })
            .unwrap();
    }

    // R0 now holds the full believed table under the new fence.
    assert!(
        r0.handle().table_text().contains("session 99"),
        "re-push delivered the v2 entry"
    );
    let r0_snap_after_reconcile = r0.handle().snapshot();
    assert_eq!(r0_snap_after_reconcile.gauge("relay.ctrl_epoch"), Some(2.0));
    assert_eq!(r0_snap_after_reconcile.gauge("relay.ctrl_seq"), Some(1.0));
    let swaps_after_reconcile = r0_snap_after_reconcile
        .histogram("relay.table_swap_ns")
        .unwrap()
        .count;
    assert_eq!(swaps_after_reconcile, 2, "initial wiring + the re-push");

    // ---- Zombie predecessor: stale epoch is fenced off. --------------
    let probe = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    probe
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    let hostile = FencedSignal {
        epoch: epoch1, // the dead incarnation
        seq: 50,
        signal: Signal::NcForwardTab {
            table: "session 31 10.0.0.1:1\n".into(),
        },
    };
    probe.send_to(&hostile.to_bytes(), r0.control_addr).unwrap();
    let mut ack = [0u8; 64];
    let (n, _) = probe.recv_from(&mut ack).unwrap();
    assert_eq!(&ack[..n], b"ERR stale-epoch 50");

    // ---- At-least-once: a duplicate of the reconciler's push. --------
    let duplicate = FencedSignal {
        epoch: epoch2,
        seq: 1, // the re-push's sequence number
        signal: Signal::NcForwardTab {
            table: "session 31 10.0.0.2:2\n".into(),
        },
    };
    probe
        .send_to(&duplicate.to_bytes(), r0.control_addr)
        .unwrap();
    let (n, _) = probe.recv_from(&mut ack).unwrap();
    assert_eq!(&ack[..n], b"OK 1", "duplicate is ACKed so senders stop");

    // Neither probe touched the data plane: counters prove the fencing,
    // the table text and swap count prove nothing was applied.
    let r0_snap = r0.handle().snapshot();
    assert_eq!(r0_snap.counter("relay.stale_epoch_rejected"), Some(1));
    assert_eq!(r0_snap.counter("relay.duplicate_signals"), Some(1));
    assert_eq!(
        r0_snap.histogram("relay.table_swap_ns").unwrap().count,
        swaps_after_reconcile,
        "no table swap from a fenced-off or duplicate signal"
    );
    let live_table = r0.handle().table_text();
    assert!(
        !live_table.contains("10.0.0.1") && !live_table.contains("10.0.0.2"),
        "hostile hops never reached the table: {live_table}"
    );

    // ---- The transfer never noticed. ---------------------------------
    let source_stats = transfer.join().expect("source thread");
    let report = receiver
        .wait(Duration::from_secs(60))
        .expect("transfer completes across the controller restart");
    assert_eq!(report.object, object, "byte-identical after recovery");
    assert_eq!(source_stats.unrecovered, 0);

    // The controller registry tells the whole recovery story.
    let snap = registry.snapshot();
    assert_eq!(snap.counter("control.journal.replayed"), Some(9));
    assert_eq!(snap.counter("control.journal.torn_tails"), Some(1));
    assert!(snap.counter("control.journal.appends").unwrap() >= 2);
    assert_eq!(snap.counter("control.reconcile.runs"), Some(1));
    assert_eq!(snap.counter("control.reconcile.readopted"), Some(1));
    assert_eq!(snap.counter("control.reconcile.repushed"), Some(1));
    assert_eq!(snap.counter("control.reconcile.expired"), Some(1));
    assert_eq!(snap.counter("control.reconcile.unreachable"), Some(0));
    assert!(snap.counter("control.sender.pushes").unwrap() >= 1);
    assert_eq!(snap.counter("control.sender.failed"), Some(0));

    r0.shutdown();
    r1.shutdown();
    let _ = std::fs::remove_file(&journal_path);
}
