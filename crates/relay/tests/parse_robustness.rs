//! Property-based hardening of every parse path the relay data and
//! control sockets expose to the network.
//!
//! The chaos harness now corrupts and truncates live datagrams
//! (`FaultConfig::with_corrupt` / `with_truncate`), so every decoder a
//! hostile byte string can reach must be total: parse or typed error,
//! never a panic — and the dispatch rules (feedback magic first, then
//! the NC header peek) must never misroute a frame of one kind into the
//! parser of another.

use ncvnf_control::signal::{Signal, SignalFrame};
use ncvnf_dataplane::{Feedback, FEEDBACK_MAGIC};

use ncvnf_rlnc::{
    CodedPacket, GenerationConfig, GenerationEncoder, NcHeader, PacketView, NC_MAGIC,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const GEN_SIZE: usize = 4;

/// A valid coded-packet wire image to mutate.
fn wire_packet(seed: u64, session: u16, generation: u64) -> Vec<u8> {
    let cfg = GenerationConfig::new(64, GEN_SIZE).unwrap();
    let enc = GenerationEncoder::new(cfg, &[0x5C; 256]).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    enc.coded_packet(ncvnf_rlnc::SessionId::new(session), generation, &mut rng)
        .to_bytes()
        .to_vec()
}

proptest! {
    /// Arbitrary byte soup never panics any ingress parser.
    #[test]
    fn byte_soup_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = NcHeader::peek_ids(&data);
        let _ = NcHeader::parse(&data, GEN_SIZE);
        let _ = PacketView::parse(&data, GEN_SIZE);
        let _ = CodedPacket::from_bytes(&data, GEN_SIZE);
        let _ = Feedback::from_bytes(&data);
        let _ = SignalFrame::from_bytes(&data);
    }

    /// Every strict prefix of a valid coded packet parses or errors —
    /// and `peek_ids` only succeeds once the fixed prefix is complete,
    /// in which case it reports the true ids (truncation can shorten a
    /// packet, never redirect it to another session's shard).
    #[test]
    fn truncated_packets_never_misdispatch(
        seed in any::<u64>(),
        session in 1u16..=u16::MAX,
        generation in 0u64..=u32::MAX as u64,
        cut_permille in 0u32..1000,
    ) {
        let wire = wire_packet(seed, session, generation);
        let cut = (wire.len() as u64 * u64::from(cut_permille) / 1000) as usize;
        let data = &wire[..cut];
        match NcHeader::peek_ids(data) {
            Some((s, g)) => {
                prop_assert!(cut >= NcHeader::FIXED_LEN);
                prop_assert_eq!(s.value(), session);
                prop_assert_eq!(g, generation);
            }
            None => prop_assert!(cut < NcHeader::FIXED_LEN),
        }
        let _ = PacketView::parse(data, GEN_SIZE);
        // A truncated data packet still never decodes as feedback or as
        // a control signal: its magic byte stays foreign to both.
        if !data.is_empty() {
            prop_assert!(Feedback::from_bytes(data).is_err());
        }
        prop_assert!(SignalFrame::from_bytes(data).is_err());
    }

    /// Single-byte corruption anywhere in a valid coded packet never
    /// panics a parser, and corrupting anything *other than the magic
    /// byte* never turns a data packet into feedback.
    #[test]
    fn corrupted_packets_never_cross_dispatch(
        seed in any::<u64>(),
        pos_permille in 0u32..1000,
        xor in 1u8..=255,
    ) {
        let mut wire = wire_packet(seed, 9, 3);
        let pos = (wire.len() as u64 * u64::from(pos_permille) / 1000) as usize;
        let pos = pos.min(wire.len() - 1);
        wire[pos] ^= xor;
        let _ = NcHeader::peek_ids(&wire);
        let _ = PacketView::parse(&wire, GEN_SIZE);
        let _ = CodedPacket::from_bytes(&wire, GEN_SIZE);
        if wire[0] != FEEDBACK_MAGIC {
            prop_assert!(
                Feedback::from_bytes(&wire).is_err(),
                "non-feedback magic must never reach the feedback path"
            );
        }
        if wire[0] != NC_MAGIC {
            prop_assert!(
                NcHeader::peek_ids(&wire).is_none(),
                "non-NC magic must never pass the dispatch peek"
            );
        }
    }

    /// Corrupting or truncating a control signal frame never panics the
    /// signal codec, and a corrupted *data* magic never decodes as a
    /// signal.
    #[test]
    fn mangled_signal_frames_are_total(
        session in 0u16..=u16::MAX,
        rate in any::<u32>(),
        burst in any::<u32>(),
        priority in any::<u8>(),
        pos_permille in 0u32..1000,
        xor in 1u8..=255,
        cut_permille in 0u32..1000,
    ) {
        let sig = Signal::NcQuota {
            session: ncvnf_rlnc::SessionId::new(session),
            rate_pps: rate,
            burst,
            priority,
        };
        let wire = sig.to_bytes();

        // Roundtrip sanity before mutation.
        let (frame, consumed) = SignalFrame::from_bytes(&wire).expect("valid frame decodes");
        prop_assert_eq!(consumed, wire.len());
        match frame {
            SignalFrame::Legacy(decoded) => prop_assert_eq!(decoded, sig),
            SignalFrame::Fenced(_) => prop_assert!(false, "legacy frame misread as fenced"),
        }

        // Truncation: parse-or-error.
        let cut = (wire.len() as u64 * u64::from(cut_permille) / 1000) as usize;
        let _ = SignalFrame::from_bytes(&wire[..cut]);

        // Corruption: parse-or-error, and whatever decodes is still a
        // well-typed signal (the match above proves decoding is total).
        let mut mangled = wire.to_vec();
        let pos = ((wire.len() as u64 * u64::from(pos_permille) / 1000) as usize)
            .min(wire.len() - 1);
        mangled[pos] ^= xor;
        let _ = SignalFrame::from_bytes(&mangled);
    }
}
