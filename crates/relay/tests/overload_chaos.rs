//! Overload experiments: graceful degradation when offered load exceeds
//! what the relay will admit.
//!
//! The admission regime is provisioned over the live control channel
//! (`NC_QUOTA`), then the data socket is flooded well past quota. Three
//! invariants must hold:
//!
//! 1. control-plane traffic is *never* shed — fenced table swaps keep
//!    returning `OK` and heartbeat feedback frames are all classified,
//!    because dispatch sorts them out before admission runs;
//! 2. in-quota sessions keep ≥ 90% goodput through the flood;
//! 3. a reliable transfer sharing the relay with a flood still delivers
//!    its object byte-identically.
//!
//! The flood seed is pinned (override with `NCVNF_CHAOS_SEED`) so CI
//! failures replay exactly.

use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ncvnf_control::signal::{FencedSignal, Signal, VnfRoleWire};
use ncvnf_control::ForwardingTable;
use ncvnf_dataplane::Feedback;
use ncvnf_relay::{
    send_object_reliable, RecoveryConfig, RelayConfig, RelayNode, ReliableReceiver, TransferConfig,
    TransferObs,
};
use ncvnf_rlnc::{GenerationConfig, GenerationEncoder, ObjectEncoder, SessionId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn chaos_seed() -> u64 {
    std::env::var("NCVNF_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC405_2017)
}

fn cfg() -> GenerationConfig {
    GenerationConfig::new(256, 4).unwrap()
}

fn control_client() -> UdpSocket {
    let s = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    s
}

fn signal_roundtrip(control: &UdpSocket, to: std::net::SocketAddr, frame: &[u8]) -> Vec<u8> {
    let mut ack = [0u8; 64];
    control.send_to(frame, to).unwrap();
    let (n, _) = control.recv_from(&mut ack).expect("relay replies");
    ack[..n].to_vec()
}

fn quota_signal(session: u16, rate_pps: u32, burst: u32, priority: u8) -> Signal {
    Signal::NcQuota {
        session: SessionId::new(session),
        rate_pps,
        burst,
        priority,
    }
}

/// Spawns a thread that floods `data_addr` with coded datagrams for
/// `session` until `stop` flips, counting what it offered.
fn flood(
    data_addr: std::net::SocketAddr,
    session: u16,
    seed: u64,
    pace: Duration,
    stop: &Arc<AtomicBool>,
    sent: &Arc<AtomicU64>,
) -> std::thread::JoinHandle<()> {
    let stop = Arc::clone(stop);
    let sent = Arc::clone(sent);
    std::thread::spawn(move || {
        let enc = GenerationEncoder::new(cfg(), &[0xF1; 1024]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let socket = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        let mut generation = 0u64;
        while !stop.load(Ordering::Relaxed) {
            for _ in 0..16 {
                let pkt = enc.coded_packet(SessionId::new(session), generation, &mut rng);
                if socket.send_to(&pkt.to_bytes(), data_addr).is_ok() {
                    sent.fetch_add(1, Ordering::Relaxed);
                }
            }
            generation += 1;
            std::thread::sleep(pace);
        }
    })
}

/// Regression for the shedding boundary: a flood that drives heavy
/// quota shedding must not cost a single control-plane frame. Fenced
/// table swaps stay `OK`-acknowledged (and fence state advances), and
/// every heartbeat feedback frame on the data socket is classified
/// rather than shed — dispatch runs before admission.
#[test]
fn control_plane_survives_quota_flood_unharmed() {
    let seed = chaos_seed();
    let relay = RelayNode::spawn(RelayConfig {
        generation: cfg(),
        buffer_generations: 64,
        seed: 41,
        heartbeat: None,
        registry: None,
        ..RelayConfig::default()
    })
    .unwrap();
    let control = control_client();

    // Tight bucket for the flooding session: 200 pps against a flood
    // offering two orders of magnitude more.
    assert_eq!(
        signal_roundtrip(
            &control,
            relay.control_addr,
            &quota_signal(99, 200, 32, 200).to_bytes()
        ),
        b"OK"
    );

    let stop = Arc::new(AtomicBool::new(false));
    let offered = Arc::new(AtomicU64::new(0));
    let flooder = flood(
        relay.data_addr,
        99,
        seed ^ 0xF100D,
        Duration::from_micros(300),
        &stop,
        &offered,
    );

    // Control plane under fire: fenced table swaps, one per 50ms.
    let sink = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    let hop = sink.local_addr().unwrap().to_string();
    for seq in 1..=8u64 {
        let mut table = ForwardingTable::new();
        table.set(SessionId::new(7), vec![hop.clone()]);
        let fenced = FencedSignal {
            epoch: 1,
            seq,
            signal: Signal::NcForwardTab {
                table: table.to_text(),
            },
        };
        let ack = signal_roundtrip(&control, relay.control_addr, &fenced.to_bytes());
        assert_eq!(
            ack,
            format!("OK {seq}").into_bytes(),
            "fenced swap {seq} applied mid-flood"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // Heartbeats on the *data* socket: classified as feedback before
    // admission, so the flood cannot shed them.
    let beater = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    const BEATS: u64 = 25;
    for i in 0..BEATS {
        let frame = Feedback::heartbeat(3, i as u16).to_bytes();
        beater.send_to(&frame, relay.data_addr).unwrap();
        std::thread::sleep(Duration::from_millis(4));
    }

    stop.store(true, Ordering::Relaxed);
    flooder.join().unwrap();

    // Wait for the relay to drain its ingress queue, then hold it to
    // the invariants.
    let handle = relay.handle();
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.stats().feedback_frames < BEATS && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = handle.stats();
    relay.shutdown();

    assert!(
        stats.shed_quota > 100,
        "the flood genuinely exceeded quota: {stats:?}"
    );
    assert_eq!(
        stats.feedback_frames, BEATS,
        "every heartbeat classified, none shed: {stats:?}"
    );
    assert_eq!(stats.rejected_signals, 0, "control channel clean");
    assert_eq!(stats.stale_epoch_rejected, 0);
    assert!(
        stats.congestion_frames > 0,
        "shed sources were told to back off: {stats:?}"
    );
    assert!(
        stats.datagrams_in > stats.datagrams_out,
        "shedding reduced egress below ingress"
    );
}

/// The fair-share claim: with an explicit generous quota, a paced
/// in-quota session keeps ≥ 90% goodput through the relay while an
/// unprovisioned flood (capped by the session-0 default bucket) is shed
/// around it.
#[test]
fn in_quota_session_keeps_goodput_through_flood() {
    let seed = chaos_seed();
    let relay = RelayNode::spawn(RelayConfig {
        generation: cfg(),
        buffer_generations: 64,
        seed: 43,
        heartbeat: None,
        registry: None,
        ..RelayConfig::default()
    })
    .unwrap();
    let control = control_client();

    // Session 0 = default bucket: unknown sessions get 300 pps, shed
    // first (priority 200). Session 21 is provisioned far above its
    // offered rate and sheds last (priority 0).
    assert_eq!(
        signal_roundtrip(
            &control,
            relay.control_addr,
            &quota_signal(0, 300, 32, 200).to_bytes()
        ),
        b"OK"
    );
    assert_eq!(
        signal_roundtrip(
            &control,
            relay.control_addr,
            &quota_signal(21, 50_000, 1024, 0).to_bytes()
        ),
        b"OK"
    );

    let settings = Signal::NcSettings {
        session: SessionId::new(21),
        role: VnfRoleWire::Recoder,
        data_port: relay.data_addr.port(),
        block_size: 256,
        generation_size: 4,
        buffer_generations: 64,
    };
    assert_eq!(
        signal_roundtrip(&control, relay.control_addr, &settings.to_bytes()),
        b"OK"
    );
    let sink = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    sink.set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let mut table = ForwardingTable::new();
    table.set(
        SessionId::new(21),
        vec![sink.local_addr().unwrap().to_string()],
    );
    assert_eq!(
        signal_roundtrip(
            &control,
            relay.control_addr,
            &Signal::NcForwardTab {
                table: table.to_text()
            }
            .to_bytes()
        ),
        b"OK"
    );

    // The flood: unprovisioned session, offered well past the default
    // bucket (~4x and beyond).
    let stop = Arc::new(AtomicBool::new(false));
    let flood_offered = Arc::new(AtomicU64::new(0));
    let flooder = flood(
        relay.data_addr,
        77,
        seed ^ 0xBEEF,
        Duration::from_micros(500),
        &stop,
        &flood_offered,
    );

    // Drain the next hop concurrently — a test-side kernel buffer
    // overflow must not masquerade as relay shedding.
    let delivered = Arc::new(AtomicU64::new(0));
    let drain_stop = Arc::new(AtomicBool::new(false));
    let drainer = {
        let delivered = Arc::clone(&delivered);
        let drain_stop = Arc::clone(&drain_stop);
        std::thread::spawn(move || {
            let mut buf = vec![0u8; 2048];
            while !drain_stop.load(Ordering::Relaxed) {
                if sink.recv_from(&mut buf).is_ok() {
                    delivered.fetch_add(1, Ordering::Relaxed);
                }
            }
        })
    };

    // The in-quota sender: paced bursts of one generation each, well
    // inside its 50k pps quota.
    let enc = GenerationEncoder::new(cfg(), &[0x21; 1024]).unwrap();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x60D);
    let sender = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    let mut in_quota_sent = 0u64;
    for generation in 0..300u64 {
        for _ in 0..4 {
            let pkt = enc.coded_packet(SessionId::new(21), generation, &mut rng);
            sender.send_to(&pkt.to_bytes(), relay.data_addr).unwrap();
            in_quota_sent += 1;
        }
        std::thread::sleep(Duration::from_micros(800));
    }

    // Let in-flight packets reach the sink, then stop counting.
    std::thread::sleep(Duration::from_millis(300));
    drain_stop.store(true, Ordering::Relaxed);
    drainer.join().unwrap();
    let delivered = delivered.load(Ordering::Relaxed);
    stop.store(true, Ordering::Relaxed);
    flooder.join().unwrap();
    let handle = relay.handle();
    let stats = handle.stats();
    relay.shutdown();

    let goodput = delivered as f64 / in_quota_sent as f64;
    assert!(
        goodput >= 0.90,
        "in-quota goodput held: {delivered}/{in_quota_sent} = {goodput:.3} ({stats:?})"
    );
    let flood_total = flood_offered.load(Ordering::Relaxed);
    assert!(
        stats.shed_quota > flood_total / 2,
        "the flood was mostly shed: {} offered, {} shed",
        flood_total,
        stats.shed_quota
    );
}

/// End-to-end acceptance: a reliable transfer whose relay is being
/// flooded at the same time still delivers byte-identically — the
/// feedback protocol and the admission regime compose.
#[test]
fn reliable_transfer_survives_background_flood() {
    let seed = chaos_seed().wrapping_add(2);
    let relay = RelayNode::spawn(RelayConfig {
        generation: cfg(),
        buffer_generations: 64,
        seed: 47,
        heartbeat: None,
        registry: None,
        ..RelayConfig::default()
    })
    .unwrap();
    let control = control_client();

    assert_eq!(
        signal_roundtrip(
            &control,
            relay.control_addr,
            &quota_signal(0, 250, 32, 200).to_bytes()
        ),
        b"OK"
    );
    assert_eq!(
        signal_roundtrip(
            &control,
            relay.control_addr,
            &quota_signal(12, 50_000, 1024, 0).to_bytes()
        ),
        b"OK"
    );
    let settings = Signal::NcSettings {
        session: SessionId::new(12),
        role: VnfRoleWire::Recoder,
        data_port: relay.data_addr.port(),
        block_size: 256,
        generation_size: 4,
        buffer_generations: 64,
    };
    assert_eq!(
        signal_roundtrip(&control, relay.control_addr, &settings.to_bytes()),
        b"OK"
    );

    let config = TransferConfig {
        session: SessionId::new(12),
        generation: cfg(),
        redundancy: ncvnf_rlnc::RedundancyPolicy::NC0,
        rate_bps: 50e6,
        seed,
    };
    let recovery = RecoveryConfig {
        decode_timeout: Duration::from_millis(40),
        nack_interval: Duration::from_millis(40),
        backoff_base: Duration::from_millis(15),
        max_retries: 12,
        ..RecoveryConfig::default()
    };
    let object: Vec<u8> = (0..24 * 1024u32)
        .map(|i| (i.wrapping_mul(2654435761)) as u8)
        .collect();
    let encoder = ObjectEncoder::new(config.generation, config.session, &object).unwrap();

    let source_socket = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    let obs = TransferObs::new();
    let receiver = ReliableReceiver::spawn(
        &config,
        &recovery,
        encoder.generations(),
        source_socket.local_addr().unwrap(),
        &obs,
    )
    .unwrap();
    let mut table = ForwardingTable::new();
    table.set(SessionId::new(12), vec![receiver.addr.to_string()]);
    assert_eq!(
        signal_roundtrip(
            &control,
            relay.control_addr,
            &Signal::NcForwardTab {
                table: table.to_text()
            }
            .to_bytes()
        ),
        b"OK"
    );

    let stop = Arc::new(AtomicBool::new(false));
    let flood_offered = Arc::new(AtomicU64::new(0));
    let flooder = flood(
        relay.data_addr,
        88,
        seed ^ 0xF,
        Duration::from_micros(500),
        &stop,
        &flood_offered,
    );

    let hops = [relay.data_addr];
    let stats =
        send_object_reliable(&source_socket, &config, &recovery, &object, &hops, &obs).unwrap();
    let report = receiver
        .wait(Duration::from_secs(60))
        .expect("transfer completes despite the flood");
    stop.store(true, Ordering::Relaxed);
    flooder.join().unwrap();
    let handle = relay.handle();
    let relay_stats = handle.stats();
    relay.shutdown();

    assert_eq!(report.object, object, "byte-identical through the flood");
    assert_eq!(stats.unrecovered, 0, "no generation abandoned");
    assert!(
        relay_stats.shed_quota > 0,
        "the flood was being shed while the transfer ran: {relay_stats:?}"
    );
}
