//! End-to-end closed-loop chaos test: a live bandwidth collapse must be
//! *measured* (NC_STATS counter deltas), *decided* (ρ/τ hysteresis) and
//! *actuated* (re-placed and re-routed) by the autoscaler while a
//! reliable transfer is in flight — then the controller is killed in the
//! middle of the actuation and a restarted incarnation must finish the
//! job from the journal alone.
//!
//! Topology (diamond): source → R0 (dc-A) → {R1 (dc-B) | R2 (dc-C)} →
//! receiver. dc-B's nominal capability beats dc-C's, so the initial plan
//! deterministically routes through R1; R2 is armed but carries no flow.
//! R1's data socket is chaos-wrapped, and mid-transfer the fault handle
//! blackholes it. The autoscaler's capability estimates for dc-B collapse
//! (frozen counters → ratio floor), survive τ1, and the controller
//! re-plans through dc-C.
//!
//! The actuation is then killed half-way: the link wrapper lets exactly
//! one push out (R0's new table) and fails the next (R2's), after the
//! autoscaler journaled both. The restarted incarnation replays the WAL,
//! reconciles — re-pushing R2's journaled-but-never-delivered table —
//! and the transfer completes byte-identically. A zombie push under the
//! dead epoch is fenced off.
//!
//! Finally the loop winds the idle fleet to zero (scale-to-zero) and a
//! single stray datagram at a drained relay produces a data-plane wake
//! frame that re-arms everything.
//!
//! The fault seed is pinned (override with `NCVNF_CHAOS_SEED`) so CI
//! failures replay exactly.

use std::collections::{HashMap, HashSet};
use std::net::{SocketAddr, UdpSocket};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use ncvnf_control::{
    reconcile, AutoscaleConfig, AutoscaleError, Autoscaler, ControlLink, ControlRecord,
    DaemonState, FencedSignal, ForwardingTable, Journal, NodeStatus, RelayTarget, SendError,
    SendReceipt, SenderConfig, Signal, SignalSender, VnfRoleWire,
};
use ncvnf_dataplane::{Feedback, FeedbackKind};
use ncvnf_deploy::{
    Planner, ScalingController, ScalingEvent, ScalingParams, SessionSpec, TopologyBuilder, VnfSpec,
};
use ncvnf_relay::{
    send_object_reliable, FaultConfig, FaultSocket, HeartbeatConfig, RecoveryConfig, RelayConfig,
    RelayNode, ReliableReceiver, TransferConfig, TransferObs,
};
use ncvnf_rlnc::{GenerationConfig, ObjectEncoder, RedundancyPolicy, SessionId};

const SESSION: u16 = 33;
const HEARTBEAT_EVERY: Duration = Duration::from_millis(50);

fn chaos_seed() -> u64 {
    std::env::var("NCVNF_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC405_2017)
}

fn temp_wal() -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("ncvnf-autoscale-drift-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn transfer_config() -> TransferConfig {
    TransferConfig {
        session: SessionId::new(SESSION),
        generation: GenerationConfig::new(256, 4).unwrap(),
        redundancy: RedundancyPolicy::NC0,
        // Slow enough that the collapse lands mid-initial-pass.
        rate_bps: 400e3,
        seed: chaos_seed(),
    }
}

fn relay_config(node_id: u32, monitor: SocketAddr) -> RelayConfig {
    RelayConfig {
        generation: transfer_config().generation,
        buffer_generations: 256,
        seed: 0xD1F7 + node_id as u64,
        heartbeat: Some(HeartbeatConfig {
            monitor,
            interval: HEARTBEAT_EVERY,
            node_id,
        }),
        registry: None,
        ..RelayConfig::default()
    }
}

fn settings_for(relay: &RelayNode) -> Signal {
    let gen = transfer_config().generation;
    Signal::NcSettings {
        session: SessionId::new(SESSION),
        role: VnfRoleWire::Recoder,
        data_port: relay.data_addr.port(),
        block_size: gen.block_size() as u32,
        generation_size: gen.blocks_per_generation() as u32,
        buffer_generations: 256,
    }
}

/// Fresh controller over the diamond. dc-B's spec dominates dc-C's so
/// the λ-maximizing plan provably routes the (source-capped) 1 Mbps
/// session through B; C only enters once B's belief collapses.
fn build_controller() -> (ScalingController, [ncvnf_flowgraph::NodeId; 4]) {
    let mut b = TopologyBuilder::new();
    let relay_spec = |bps: f64| VnfSpec {
        bin_bps: bps,
        bout_bps: bps,
        coding_bps: 10e6,
    };
    let dc_a = b.data_center("dc-a", relay_spec(2e6));
    let dc_b = b.data_center("dc-b", relay_spec(1e6));
    let dc_c = b.data_center("dc-c", relay_spec(0.6e6));
    let s = b.source("src", 1e6);
    let t = b.receiver("rx", 1e6);
    b.link(s, dc_a, 5.0)
        .link(dc_a, dc_b, 5.0)
        .link(dc_a, dc_c, 5.0)
        .link(dc_b, t, 5.0)
        .link(dc_c, t, 5.0);
    let params = ScalingParams {
        alpha: 20e3,
        rho1: 0.25,
        tau1_secs: 0.8,
        rho2: 0.25,
        tau2_secs: 0.8,
        pool_tau_secs: 600.0,
        launch_latency_secs: 0.0,
    };
    let mut controller = ScalingController::new(b.build(), Planner::new(), params);
    controller
        .handle(
            ScalingEvent::SessionJoin(SessionSpec::elastic(
                SessionId::new(SESSION),
                s,
                vec![t],
                200.0,
            )),
            0.0,
        )
        .unwrap();
    (controller, [dc_a, dc_b, dc_c, t])
}

/// Passes a fixed number of pushes through to the real sender, then
/// fails every further one *without sending* — the controller process
/// "dies" between actuation steps, after the journal writes landed.
struct CrashAfterLink<'a> {
    inner: &'a mut SignalSender,
    budget: u32,
}

impl ControlLink for CrashAfterLink<'_> {
    fn epoch(&self) -> u64 {
        self.inner.epoch()
    }

    fn next_seq(&self, to: SocketAddr) -> u64 {
        self.inner.next_seq(to)
    }

    fn push(&mut self, to: SocketAddr, signal: &Signal) -> Result<SendReceipt, SendError> {
        if self.budget == 0 {
            return Err(SendError::Timeout { attempts: 0 });
        }
        self.budget -= 1;
        self.inner.push(to, signal)
    }

    fn query_stats(&mut self, to: SocketAddr) -> Result<String, SendError> {
        self.inner.query_stats(to)
    }
}

#[test]
fn bandwidth_collapse_is_rerouted_live_and_survives_controller_crash() {
    let wal = temp_wal();
    let monitor_socket = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    monitor_socket
        .set_read_timeout(Some(Duration::from_millis(10)))
        .unwrap();
    let monitor_addr = monitor_socket.local_addr().unwrap();

    // R1 (the initially-preferred hop) gets a chaos-wrapped data socket.
    let r0 = RelayNode::spawn(relay_config(0, monitor_addr)).unwrap();
    let r1 = {
        let data = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        let control = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        let (faulty, handle) = FaultSocket::wrap(data, FaultConfig::new(chaos_seed()));
        (
            RelayNode::spawn_with(relay_config(1, monitor_addr), faulty, control).unwrap(),
            handle,
        )
    };
    let (r1, r1_faults) = r1;
    let r2 = RelayNode::spawn(relay_config(2, monitor_addr)).unwrap();

    let config = transfer_config();
    // 64 KiB at 400 kbps ≈ 1.3 s of initial pass: the collapse (after
    // the ~0.6 s warm-up) lands squarely mid-transfer.
    let object: Vec<u8> = (0..64 * 1024u32)
        .map(|i| (i.wrapping_mul(41)) as u8)
        .collect();
    let encoder = ObjectEncoder::new(config.generation, config.session, &object).unwrap();

    let source_socket = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    let recovery = RecoveryConfig {
        decode_timeout: Duration::from_millis(100),
        nack_interval: Duration::from_millis(100),
        backoff_base: Duration::from_millis(50),
        max_retries: 40,
        idle_timeout: Duration::from_secs(15),
        ..RecoveryConfig::default()
    };
    let obs = TransferObs::new();
    let receiver = ReliableReceiver::spawn(
        &config,
        &recovery,
        encoder.generations(),
        source_socket.local_addr().unwrap(),
        &obs,
    )
    .unwrap();

    // ---- Incarnation 1: bootstrap the loop under epoch 1. ----
    let (controller, [dc_a, dc_b, dc_c, t]) = build_controller();
    let (journal, state0, _) = Journal::open(&wal).unwrap();
    assert_eq!(state0.nodes.len(), 0, "fresh WAL");
    let targets = vec![
        RelayTarget {
            node: 0,
            dc: dc_a,
            control_addr: r0.control_addr,
            role: VnfRoleWire::Recoder,
            settings: vec![settings_for(&r0)],
        },
        RelayTarget {
            node: 1,
            dc: dc_b,
            control_addr: r1.control_addr,
            role: VnfRoleWire::Recoder,
            settings: vec![settings_for(&r1)],
        },
        RelayTarget {
            node: 2,
            dc: dc_c,
            control_addr: r2.control_addr,
            role: VnfRoleWire::Recoder,
            settings: vec![settings_for(&r2)],
        },
    ];
    let mut data_addrs = HashMap::new();
    data_addrs.insert(dc_a, r0.data_addr.to_string());
    data_addrs.insert(dc_b, r1.data_addr.to_string());
    data_addrs.insert(dc_c, r2.data_addr.to_string());
    data_addrs.insert(t, receiver.addr.to_string());
    let drift_cfg = AutoscaleConfig {
        min_rel_change: 0.1,
        telemetry_window: 3,
        idle_tau_secs: 60.0, // nothing drains during the drift phase
        drain_tau_secs: 600,
    };
    let mut sender1 = SignalSender::new(1, SenderConfig::default()).unwrap();
    let mut auto1 = Autoscaler::new(
        controller,
        journal,
        targets.clone(),
        data_addrs.clone(),
        drift_cfg,
    );
    let t0 = Instant::now();
    auto1.bootstrap(&mut sender1, 0.0).unwrap();
    assert!(
        r0.handle().table_text().contains(&r1.data_addr.to_string()),
        "initial plan routes through the stronger dc-B"
    );

    // Stream in the background; the collapse lands mid-initial-pass.
    let transfer = {
        let config = config.clone();
        let object = object.clone();
        let first_hop = r0.data_addr;
        let obs = obs.clone();
        std::thread::spawn(move || {
            send_object_reliable(
                &source_socket,
                &config,
                &recovery,
                &object,
                &[first_hop],
                &obs,
            )
            .expect("source runs")
        })
    };

    // Warm-up polls establish per-relay throughput baselines.
    for _ in 0..4 {
        std::thread::sleep(Duration::from_millis(150));
        auto1
            .poll(&mut sender1, t0.elapsed().as_secs_f64())
            .expect("warm-up poll");
    }
    assert!(r1.handle().stats().datagrams_in > 0, "traffic flows via R1");

    // ---- Collapse dc-B and let the loop detect + re-place + re-route,
    // crashing the controller after exactly one actuation push. ----
    r1_faults.crash();
    let crashed_at = Instant::now();
    let mut link = CrashAfterLink {
        inner: &mut sender1,
        budget: 1,
    };
    let detect_to_actuate = loop {
        assert!(
            crashed_at.elapsed() < Duration::from_secs(15),
            "collapse was never adopted"
        );
        std::thread::sleep(Duration::from_millis(120));
        match auto1.poll(&mut link, t0.elapsed().as_secs_f64()) {
            Ok(_) => {}
            Err(AutoscaleError::Send(_)) => break crashed_at.elapsed(),
            Err(e) => panic!("unexpected autoscaler error: {e}"),
        }
    };
    println!(
        "collapse -> adoption + first table live: {:.1} ms",
        detect_to_actuate.as_secs_f64() * 1e3
    );
    assert!(
        detect_to_actuate < Duration::from_secs(5),
        "detection window blown: {detect_to_actuate:?}"
    );
    // The one budgeted push — R0's reroute — landed before the "crash".
    assert!(
        r0.handle().table_text().contains(&r2.data_addr.to_string()),
        "R0 now forwards toward dc-C"
    );

    // ---- Incarnation 2: replay the WAL and reconcile. ----
    drop(auto1); // the dead controller's journal handle flushes + closes
    let (mut journal2, state, replay) = Journal::open(&wal).unwrap();
    assert!(!replay.torn_tail, "clean shutdown of the journal");
    assert!(state.scale_decisions >= 1, "the adoption was journaled");
    assert!(
        state.nodes[&0]
            .table
            .to_text()
            .contains(&r2.data_addr.to_string()),
        "WAL holds R0's rerouted table"
    );
    assert!(
        state.nodes[&2]
            .table
            .to_text()
            .contains(&receiver.addr.to_string()),
        "WAL holds R2's journaled-but-undelivered table"
    );
    let epoch2 = state.next_epoch();
    journal2
        .log(&ControlRecord::EpochStarted { epoch: epoch2 })
        .unwrap();
    let mut sender2 = SignalSender::new(epoch2, SenderConfig::default()).unwrap();
    let report = reconcile(&mut sender2, &state, t0.elapsed().as_secs_f64(), None);
    assert!(
        report.plan.repush.iter().any(|(node, _)| *node == 2),
        "reconcile saw R2's missing table: {report:?}"
    );
    assert_eq!(report.repushed_ok, 1, "exactly the interrupted push redone");
    assert!(
        r2.handle()
            .table_text()
            .contains(&receiver.addr.to_string()),
        "R2 forwards to the receiver after reconciliation"
    );

    // A zombie push from the dead incarnation is fenced off: R2 has
    // seen epoch 2 (the reconciliation repush), so an epoch-1 straggler
    // trying to point it back at the dead hop bounces.
    {
        let zombie = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        zombie
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let mut table = ForwardingTable::new();
        table.set(SessionId::new(SESSION), vec![r1.data_addr.to_string()]);
        let sig = FencedSignal {
            epoch: 1,
            seq: 999,
            signal: Signal::NcForwardTab {
                table: table.to_text(),
            },
        };
        let mut buf = [0u8; 64];
        zombie.send_to(&sig.to_bytes(), r2.control_addr).unwrap();
        let (n, _) = zombie.recv_from(&mut buf).expect("R2 replies");
        assert!(
            buf[..n].starts_with(b"ERR stale-epoch"),
            "zombie accepted: {:?}",
            String::from_utf8_lossy(&buf[..n])
        );
    }

    // The transfer drains through the healed dc-C path, byte-identical.
    let source_stats = transfer.join().expect("source thread");
    let delivered = receiver
        .wait(Duration::from_secs(60))
        .expect("transfer completes through the rerouted path");
    assert_eq!(delivered.object, object, "byte-identical after reroute");
    assert_eq!(source_stats.unrecovered, 0, "every generation closed out");
    assert!(
        r2.handle().stats().datagrams_in > 0,
        "dc-C actually carried the flow"
    );

    // ---- Scale-to-zero: the idle fleet winds down... ----
    let (controller2, _) = build_controller();
    let idle_cfg = AutoscaleConfig {
        min_rel_change: 0.1,
        telemetry_window: 3,
        idle_tau_secs: 1.0,
        drain_tau_secs: 60,
    };
    let mut auto2 = Autoscaler::new(controller2, journal2, targets, data_addrs, idle_cfg)
        .with_decision_base(state.scale_decisions);
    let mut drained: HashSet<u32> = HashSet::new();
    let wind_down = Instant::now();
    while drained.len() < 3 {
        assert!(
            wind_down.elapsed() < Duration::from_secs(20),
            "fleet never wound down; drained so far: {drained:?}"
        );
        std::thread::sleep(Duration::from_millis(200));
        let report = auto2
            .poll(&mut sender2, t0.elapsed().as_secs_f64())
            .expect("idle poll");
        drained.extend(report.drained);
    }
    assert_eq!(auto2.draining(), vec![0, 1, 2]);
    assert!(matches!(r0.handle().daemon_state(), DaemonState::Draining));
    assert!(matches!(r2.handle().daemon_state(), DaemonState::Draining));

    // ---- ...and the first stray packet wakes it back up. ----
    let probe = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    probe.send_to(&[0u8; 32], r0.data_addr).unwrap();
    let woke_deadline = Instant::now() + Duration::from_secs(5);
    let mut buf = [0u8; 64];
    loop {
        assert!(
            Instant::now() < woke_deadline,
            "no wake frame reached the monitor"
        );
        let Ok((n, _)) = monitor_socket.recv_from(&mut buf) else {
            continue;
        };
        let Ok(fb) = Feedback::from_bytes(&buf[..n]) else {
            continue;
        };
        if fb.kind == FeedbackKind::Wake && fb.node_id() == 0 {
            break;
        }
    }
    let woken = auto2.wake(&mut sender2).expect("wake actuates");
    assert_eq!(woken, vec![0, 1, 2], "whole fleet re-armed in node order");
    assert!(matches!(r0.handle().daemon_state(), DaemonState::Running));
    assert!(matches!(r2.handle().daemon_state(), DaemonState::Running));
    assert!(
        r0.handle()
            .snapshot()
            .counter("relay.wake_signals")
            .unwrap_or(0)
            >= 1,
        "R0 counted its wake frame"
    );

    // The WAL tells the whole story to the *next* incarnation.
    drop(auto2);
    let (_journal3, state3, _) = Journal::open(&wal).unwrap();
    assert!(state3.scale_decisions >= 1);
    for node in [0u32, 1, 2] {
        assert!(
            matches!(state3.nodes[&node].status, NodeStatus::Active),
            "node {node} active after wake"
        );
    }

    r0.shutdown();
    r1.shutdown();
    r2.shutdown();
    let _ = std::fs::remove_file(&wal);
}
