//! Time-varying bandwidth traces.
//!
//! The paper measures per-VM inbound/outbound caps that fluctuate over
//! time (Table I: ≈ 876–938 Mbps sampled every 10 minutes in two EC2 data
//! centers) and injects step changes with `netem` in the scaling
//! experiments (Fig. 11: "cut inbound/outbound bandwidth of all our own
//! VNFs in that data center by half"). A [`BandwidthTrace`] is a
//! piecewise-constant rate function of simulated time.

use crate::time::SimTime;

/// Piecewise-constant bandwidth (bits per second) over time.
///
/// # Examples
///
/// ```
/// use ncvnf_netsim::{BandwidthTrace, SimTime};
/// let mut tr = BandwidthTrace::constant(100e6);
/// tr.add_step(SimTime::from_secs(10), 50e6);
/// assert_eq!(tr.rate_at(SimTime::from_secs(5)), 100e6);
/// assert_eq!(tr.rate_at(SimTime::from_secs(10)), 50e6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthTrace {
    /// Steps as (start time, rate bps), sorted by time; the first entry is
    /// always at time zero.
    steps: Vec<(SimTime, f64)>,
}

impl BandwidthTrace {
    /// A constant rate.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is not positive and finite.
    pub fn constant(bps: f64) -> Self {
        assert!(bps.is_finite() && bps > 0.0, "invalid bandwidth {bps}");
        BandwidthTrace {
            steps: vec![(SimTime::ZERO, bps)],
        }
    }

    /// Builds a trace from explicit samples; the earliest sample is
    /// shifted to time zero if needed.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or any rate is non-positive.
    pub fn from_samples(mut samples: Vec<(SimTime, f64)>) -> Self {
        assert!(!samples.is_empty(), "trace needs at least one sample");
        for &(_, r) in &samples {
            assert!(r.is_finite() && r > 0.0, "invalid bandwidth {r}");
        }
        samples.sort_by_key(|&(t, _)| t);
        if samples[0].0 != SimTime::ZERO {
            let first_rate = samples[0].1;
            samples.insert(0, (SimTime::ZERO, first_rate));
        }
        BandwidthTrace { steps: samples }
    }

    /// Appends a step: from `at` onward the rate is `bps`.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is not positive and finite.
    pub fn add_step(&mut self, at: SimTime, bps: f64) {
        assert!(bps.is_finite() && bps > 0.0, "invalid bandwidth {bps}");
        self.steps.push((at, bps));
        self.steps.sort_by_key(|&(t, _)| t);
    }

    /// The rate in effect at time `t`.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let mut rate = self.steps[0].1;
        for &(start, r) in &self.steps {
            if start <= t {
                rate = r;
            } else {
                break;
            }
        }
        rate
    }

    /// Multiplies every step by `factor` (e.g. 0.5 for the paper's
    /// bandwidth cut).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor > 0.0, "invalid factor");
        BandwidthTrace {
            steps: self.steps.iter().map(|&(t, r)| (t, r * factor)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_everywhere() {
        let tr = BandwidthTrace::constant(1e6);
        assert_eq!(tr.rate_at(SimTime::ZERO), 1e6);
        assert_eq!(tr.rate_at(SimTime::from_secs(1000)), 1e6);
    }

    #[test]
    fn steps_take_effect_at_their_time() {
        let mut tr = BandwidthTrace::constant(100.0);
        tr.add_step(SimTime::from_secs(10), 50.0);
        tr.add_step(SimTime::from_secs(20), 200.0);
        assert_eq!(tr.rate_at(SimTime::from_secs(9)), 100.0);
        assert_eq!(tr.rate_at(SimTime::from_secs(10)), 50.0);
        assert_eq!(tr.rate_at(SimTime::from_secs(19)), 50.0);
        assert_eq!(tr.rate_at(SimTime::from_secs(25)), 200.0);
    }

    #[test]
    fn from_samples_sorts_and_anchors() {
        let tr = BandwidthTrace::from_samples(vec![
            (SimTime::from_secs(20), 2.0),
            (SimTime::from_secs(10), 1.0),
        ]);
        assert_eq!(tr.rate_at(SimTime::ZERO), 1.0);
        assert_eq!(tr.rate_at(SimTime::from_secs(15)), 1.0);
        assert_eq!(tr.rate_at(SimTime::from_secs(20)), 2.0);
    }

    #[test]
    fn scaling() {
        let tr = BandwidthTrace::constant(100.0).scaled(0.5);
        assert_eq!(tr.rate_at(SimTime::ZERO), 50.0);
    }

    #[test]
    #[should_panic(expected = "invalid bandwidth")]
    fn zero_bandwidth_panics() {
        let _ = BandwidthTrace::constant(0.0);
    }
}
