//! Simple reusable sinks.

use crate::node::{Context, NodeBehavior};
use crate::packet::Datagram;
use crate::time::SimTime;

/// Counts packets and bytes delivered to it; remembers arrival times.
#[derive(Debug, Default)]
pub struct CountingSink {
    packets: u64,
    bytes: u64,
    arrivals: Vec<SimTime>,
    /// When true, arrival timestamps are recorded (costs memory on long
    /// runs).
    record_arrivals: bool,
}

impl CountingSink {
    /// A sink that records every arrival time.
    pub fn new() -> Self {
        CountingSink {
            record_arrivals: true,
            ..Default::default()
        }
    }

    /// A sink that only counts (no per-packet timestamps).
    pub fn counting_only() -> Self {
        CountingSink::default()
    }

    /// Packets received.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Payload bytes received.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Recorded arrival times (empty unless created with
    /// [`CountingSink::new`]).
    pub fn arrivals(&self) -> &[SimTime] {
        &self.arrivals
    }

    /// First recorded arrival, if any.
    pub fn first_arrival(&self) -> Option<SimTime> {
        self.arrivals.first().copied()
    }
}

impl NodeBehavior for CountingSink {
    fn on_datagram(&mut self, ctx: &mut Context<'_>, dgram: Datagram) {
        self.packets += 1;
        self.bytes += dgram.payload.len() as u64;
        if self.record_arrivals {
            self.arrivals.push(ctx.now());
        }
    }
}

/// A node that does nothing (placeholder endpoints in topology tests).
#[derive(Debug, Default)]
pub struct NullNode;

impl NodeBehavior for NullNode {
    fn on_datagram(&mut self, _ctx: &mut Context<'_>, _dgram: Datagram) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Addr, LinkConfig, SimDuration, SimNodeId, SimTime, Simulator};
    use bytes::Bytes;

    struct OneShot;
    impl NodeBehavior for OneShot {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.send(Addr::new(SimNodeId(1), 5), 1, Bytes::from_static(b"xyz"));
        }
        fn on_datagram(&mut self, _ctx: &mut Context<'_>, _d: Datagram) {}
    }

    #[test]
    fn counting_only_skips_timestamps() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("a", OneShot);
        let b = sim.add_node("b", CountingSink::counting_only());
        sim.add_link(a, b, LinkConfig::new(1e9, SimDuration::ZERO));
        sim.run_until(SimTime::from_secs(1));
        let s = sim.node_as::<CountingSink>(b).unwrap();
        assert_eq!(s.packets(), 1);
        assert_eq!(s.bytes(), 3);
        assert!(s.arrivals().is_empty());
        assert!(s.first_arrival().is_none());
    }
}
