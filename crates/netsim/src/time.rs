//! Simulated time: nanosecond-resolution instants and durations.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// An instant `secs` seconds after start.
    pub fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// An instant `ms` milliseconds after start.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// An instant from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time {secs}");
        SimTime((secs * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since an earlier instant (saturating).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// `secs` seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// `ms` milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// `us` microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration {secs}");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scales the duration by a non-negative factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor >= 0.0, "invalid factor");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_secs_f64(), 0.003);
        assert_eq!(SimDuration::from_micros(1500).as_millis_f64(), 1.5);
        assert_eq!(SimTime::from_secs_f64(0.25).as_nanos(), 250_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_secs_f64(), 1.5);
        assert_eq!((t - SimTime::from_secs(1)).as_millis_f64(), 500.0);
        // Saturating subtraction.
        assert_eq!((SimTime::ZERO - t).as_nanos(), 0);
        assert_eq!(t.since(SimTime::ZERO).as_secs_f64(), 1.5);
    }

    #[test]
    fn scaling() {
        assert_eq!(
            SimDuration::from_secs(2).mul_f64(0.25),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
