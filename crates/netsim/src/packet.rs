//! Datagrams and addressing.

use bytes::Bytes;
use std::fmt;

use crate::sim::SimNodeId;

/// A (node, port) endpoint, the simulator's analogue of `ip:port`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr {
    /// Destination node.
    pub node: SimNodeId,
    /// UDP-style port demultiplexed by the receiving behavior.
    pub port: u16,
}

impl Addr {
    /// Builds an address.
    pub const fn new(node: SimNodeId, port: u16) -> Self {
        Addr { node, port }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.node.0, self.port)
    }
}

/// An unreliable datagram, the simulator's UDP.
///
/// `wire_bytes` adds the UDP + IP header overhead the paper accounts for
/// when sizing NC packets to the MTU.
#[derive(Debug, Clone)]
pub struct Datagram {
    /// Sender endpoint.
    pub src: Addr,
    /// Destination endpoint.
    pub dst: Addr,
    /// Application payload.
    pub payload: Bytes,
}

impl Datagram {
    /// UDP (8) + IPv4 (20) header bytes added on the wire.
    pub const HEADER_OVERHEAD: usize = 28;

    /// Bytes this datagram occupies on a link.
    pub fn wire_bytes(&self) -> usize {
        self.payload.len() + Self::HEADER_OVERHEAD
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_includes_headers() {
        let d = Datagram {
            src: Addr::new(SimNodeId(0), 1),
            dst: Addr::new(SimNodeId(1), 2),
            payload: Bytes::from_static(&[0u8; 1472]),
        };
        assert_eq!(d.wire_bytes(), 1500);
        assert_eq!(d.dst.to_string(), "1:2");
    }
}
