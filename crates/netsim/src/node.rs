//! Node behaviors and their execution context.

use std::any::Any;

use bytes::Bytes;
use rand::rngs::StdRng;

use crate::packet::{Addr, Datagram};
use crate::sim::SimNodeId;
use crate::time::{SimDuration, SimTime};

/// Commands buffered by a [`Context`] and applied by the simulator after
/// the handler returns (avoids aliasing the simulator while a node runs).
#[derive(Debug)]
pub(crate) enum Command {
    Send(Datagram),
    SetTimer { after: SimDuration, token: u64 },
}

/// The API a [`NodeBehavior`] uses to interact with the simulation.
pub struct Context<'a> {
    pub(crate) now: SimTime,
    pub(crate) node: SimNodeId,
    pub(crate) commands: &'a mut Vec<Command>,
    pub(crate) rng: &'a mut StdRng,
}

impl Context<'_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node being executed.
    pub fn node_id(&self) -> SimNodeId {
        self.node
    }

    /// Sends a datagram from `src_port` on this node to `dst`.
    ///
    /// Delivery requires a link from this node to `dst.node`; datagrams
    /// without a link are counted and dropped (there is no routing — relays
    /// forward hop by hop, like the paper's VNFs).
    pub fn send(&mut self, dst: Addr, src_port: u16, payload: Bytes) {
        let d = Datagram {
            src: Addr::new(self.node, src_port),
            dst,
            payload,
        };
        self.commands.push(Command::Send(d));
    }

    /// Schedules [`NodeBehavior::on_timer`] with `token` after `after`.
    pub fn set_timer(&mut self, after: SimDuration, token: u64) {
        self.commands.push(Command::SetTimer { after, token });
    }

    /// Deterministic RNG shared by the simulation.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

/// A simulated process: traffic source, coding VNF, sink, prober, ...
///
/// Handlers receive a [`Context`] to send datagrams and arm timers; all
/// effects are applied after the handler returns, in order.
pub trait NodeBehavior: Any {
    /// Called once when the simulation starts (time zero) or when the node
    /// is added to an already-running simulation.
    fn on_start(&mut self, _ctx: &mut Context<'_>) {}

    /// Called for every datagram delivered to this node.
    fn on_datagram(&mut self, ctx: &mut Context<'_>, dgram: Datagram);

    /// Called when a timer armed via [`Context::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Context<'_>, _token: u64) {}
}

/// Object-safe downcasting support so callers can read results out of
/// their behaviors after a run (see [`crate::Simulator::node_as`]).
impl dyn NodeBehavior {
    pub(crate) fn as_any(&self) -> &dyn Any {
        self
    }

    pub(crate) fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
