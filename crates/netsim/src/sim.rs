//! The event-driven simulator core.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::link::{LinkConfig, LinkId, LinkState, LinkStats};
use crate::node::{Command, Context, NodeBehavior};
use crate::packet::Datagram;
use crate::time::{SimDuration, SimTime};
use crate::trace::BandwidthTrace;

/// Identifier of a node in a [`Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimNodeId(pub usize);

impl std::fmt::Display for SimNodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

#[derive(Debug)]
enum Event {
    /// Run `on_start` for a node.
    Start(usize),
    /// Deliver a datagram to its destination node.
    Deliver(Datagram),
    /// Fire a node timer.
    Timer { node: usize, token: u64 },
    /// The head packet of a link finished serializing.
    TxDone(usize),
}

/// Ordered event queue entry: (time, sequence for FIFO ties, event).
struct Scheduled {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The discrete-event network simulator.
///
/// Deterministic: the same seed and the same sequence of calls produce the
/// same run, which the test suite relies on.
pub struct Simulator {
    now: SimTime,
    seq: u64,
    events: BinaryHeap<Reverse<Scheduled>>,
    nodes: Vec<Box<dyn NodeBehavior>>,
    node_labels: Vec<String>,
    links: Vec<LinkState>,
    /// (from, to) -> link index.
    link_index: HashMap<(usize, usize), usize>,
    rng: StdRng,
    seed: u64,
    commands: Vec<Command>,
    /// Datagrams dropped because no link existed toward the destination.
    no_route_drops: u64,
    started: bool,
}

impl Simulator {
    /// Creates a simulator with a deterministic RNG seed.
    pub fn new(seed: u64) -> Self {
        Simulator {
            now: SimTime::ZERO,
            seq: 0,
            events: BinaryHeap::new(),
            nodes: Vec::new(),
            node_labels: Vec::new(),
            links: Vec::new(),
            link_index: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
            seed,
            commands: Vec::new(),
            no_route_drops: 0,
            started: false,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Adds a node; its `on_start` runs at the current time (or at time
    /// zero when the simulation has not started yet).
    pub fn add_node(&mut self, label: impl Into<String>, behavior: impl NodeBehavior) -> SimNodeId {
        let id = self.nodes.len();
        self.nodes.push(Box::new(behavior));
        self.node_labels.push(label.into());
        self.schedule(self.now, Event::Start(id));
        SimNodeId(id)
    }

    /// Adds a directed link; any existing link for the pair is replaced.
    ///
    /// # Panics
    ///
    /// Panics if either node id is unknown.
    pub fn add_link(&mut self, from: SimNodeId, to: SimNodeId, config: LinkConfig) -> LinkId {
        assert!(from.0 < self.nodes.len(), "unknown from node");
        assert!(to.0 < self.nodes.len(), "unknown to node");
        // Mix the simulator seed in so different seeds give different loss
        // sequences, but loss streams stay independent of node RNG usage.
        let seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x9E37_79B9u64.wrapping_mul(self.links.len() as u64 + 1))
            .wrapping_add(from.0 as u64 * 31 + to.0 as u64);
        let idx = self.links.len();
        self.links.push(LinkState::new(from.0, to.0, config, seed));
        self.link_index.insert((from.0, to.0), idx);
        LinkId(idx)
    }

    /// Replaces the bandwidth trace of a link mid-run (netem-style
    /// shaping).
    ///
    /// # Panics
    ///
    /// Panics if the link id is unknown.
    pub fn set_link_bandwidth(&mut self, link: LinkId, trace: BandwidthTrace) {
        self.links[link.0].config.bandwidth = trace;
    }

    /// Replaces the loss model of a link mid-run.
    ///
    /// # Panics
    ///
    /// Panics if the link id is unknown.
    pub fn set_link_loss(&mut self, link: LinkId, loss: crate::loss::LossModel) {
        self.links[link.0].config.loss = loss;
    }

    /// Looks up the link id for `(from, to)`, if any.
    pub fn link_between(&self, from: SimNodeId, to: SimNodeId) -> Option<LinkId> {
        self.link_index.get(&(from.0, to.0)).map(|&i| LinkId(i))
    }

    /// Counters for one link.
    ///
    /// # Panics
    ///
    /// Panics if the link id is unknown.
    pub fn link_stats(&self, link: LinkId) -> LinkStats {
        self.links[link.0].stats
    }

    /// Datagrams dropped for lack of a link to the destination.
    pub fn no_route_drops(&self) -> u64 {
        self.no_route_drops
    }

    /// Downcasts a node's behavior for inspection after (or during) a run.
    pub fn node_as<T: NodeBehavior>(&self, id: SimNodeId) -> Option<&T> {
        self.nodes.get(id.0)?.as_any().downcast_ref::<T>()
    }

    /// Mutable variant of [`Simulator::node_as`].
    pub fn node_as_mut<T: NodeBehavior>(&mut self, id: SimNodeId) -> Option<&mut T> {
        self.nodes.get_mut(id.0)?.as_any_mut().downcast_mut::<T>()
    }

    /// Label of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node id is unknown.
    pub fn node_label(&self, id: SimNodeId) -> &str {
        &self.node_labels[id.0]
    }

    fn schedule(&mut self, at: SimTime, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse(Scheduled { at, seq, event }));
    }

    /// Runs until the event queue is empty or `deadline` is reached.
    /// Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.started = true;
        let mut processed = 0;
        while let Some(Reverse(next)) = self.events.peek() {
            if next.at > deadline {
                break;
            }
            let Reverse(sched) = self.events.pop().expect("peeked");
            self.now = sched.at;
            self.dispatch(sched.event);
            processed += 1;
        }
        // Land exactly on the deadline so subsequent run_for calls align.
        if self.now < deadline {
            self.now = deadline;
        }
        processed
    }

    /// Runs for `span` of simulated time from now.
    pub fn run_for(&mut self, span: SimDuration) -> u64 {
        let deadline = self.now + span;
        self.run_until(deadline)
    }

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::Start(node) => self.invoke(node, |b, ctx| b.on_start(ctx)),
            Event::Timer { node, token } => {
                self.invoke(node, |b, ctx| b.on_timer(ctx, token));
            }
            Event::Deliver(dgram) => {
                let node = dgram.dst.node.0;
                if node < self.nodes.len() {
                    self.invoke(node, |b, ctx| b.on_datagram(ctx, dgram));
                }
            }
            Event::TxDone(link_idx) => self.link_tx_done(link_idx),
        }
    }

    /// Runs a node handler with a command-buffer context, then applies the
    /// buffered commands.
    fn invoke<F>(&mut self, node: usize, f: F)
    where
        F: FnOnce(&mut dyn NodeBehavior, &mut Context<'_>),
    {
        debug_assert!(self.commands.is_empty());
        let mut commands = std::mem::take(&mut self.commands);
        {
            let mut ctx = Context {
                now: self.now,
                node: SimNodeId(node),
                commands: &mut commands,
                rng: &mut self.rng,
            };
            // Temporarily detach the behavior so the context can borrow
            // the simulator state mutably without aliasing.
            let mut behavior = std::mem::replace(&mut self.nodes[node], Box::new(Tombstone));
            f(behavior.as_mut(), &mut ctx);
            self.nodes[node] = behavior;
        }
        for cmd in commands.drain(..) {
            match cmd {
                Command::Send(dgram) => self.route(node, dgram),
                Command::SetTimer { after, token } => {
                    let at = self.now + after;
                    self.schedule(at, Event::Timer { node, token });
                }
            }
        }
        self.commands = commands;
    }

    /// Places a datagram on the link toward its destination.
    fn route(&mut self, from: usize, dgram: Datagram) {
        let Some(&idx) = self.link_index.get(&(from, dgram.dst.node.0)) else {
            self.no_route_drops += 1;
            return;
        };
        let accepted = self.links[idx].enqueue(dgram);
        if accepted && !self.links[idx].busy {
            self.start_tx(idx);
        }
    }

    /// Begins serializing the head-of-queue packet on a link.
    fn start_tx(&mut self, idx: usize) {
        let Some(head) = self.links[idx].queue.front() else {
            self.links[idx].busy = false;
            return;
        };
        let bytes = head.wire_bytes();
        let tx = self.links[idx].tx_time(bytes, self.now);
        self.links[idx].busy = true;
        self.schedule(self.now + tx, Event::TxDone(idx));
    }

    /// A link finished serializing: apply loss, schedule delivery after
    /// propagation, start the next packet.
    fn link_tx_done(&mut self, idx: usize) {
        let link = &mut self.links[idx];
        let Some(dgram) = link.queue.pop_front() else {
            link.busy = false;
            return;
        };
        link.queued_bytes -= dgram.wire_bytes();
        let mut loss = std::mem::take(&mut link.config.loss);
        let lost = loss.drops(&mut link.rng);
        link.config.loss = loss;
        if lost {
            link.stats.dropped_loss += 1;
        } else {
            link.stats.delivered += 1;
            link.stats.delivered_bytes += dgram.wire_bytes() as u64;
            let mut delay = link.config.delay;
            if link.config.jitter.as_nanos() > 0 {
                use rand::Rng;
                let extra = link.rng.gen_range(0..=link.config.jitter.as_nanos());
                delay += crate::time::SimDuration::from_secs_f64(extra as f64 / 1e9);
            }
            let at = self.now + delay;
            self.schedule(at, Event::Deliver(dgram));
        }
        self.start_tx(idx);
    }
}

/// Placeholder behavior installed while a node's real behavior is running.
struct Tombstone;

impl NodeBehavior for Tombstone {
    fn on_datagram(&mut self, _ctx: &mut Context<'_>, _dgram: Datagram) {
        unreachable!("tombstone behavior should never execute");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Addr;
    use crate::sink::CountingSink;
    use bytes::Bytes;

    /// Sends `count` packets of `size` bytes back to back at start.
    struct Blaster {
        peer: Addr,
        count: usize,
        size: usize,
    }

    impl NodeBehavior for Blaster {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for _ in 0..self.count {
                ctx.send(self.peer, 1, Bytes::from(vec![0u8; self.size]));
            }
        }
        fn on_datagram(&mut self, _ctx: &mut Context<'_>, _d: Datagram) {}
    }

    #[test]
    fn delivery_time_is_serialization_plus_propagation() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(
            "a",
            Blaster {
                peer: Addr::new(SimNodeId(1), 1),
                count: 1,
                size: 972,
            },
        );
        let b = sim.add_node("b", CountingSink::new());
        // 1000 wire bytes at 8 Mbps = 1 ms; delay 5 ms; total 6 ms.
        let l = sim.add_link(a, b, LinkConfig::new(8e6, SimDuration::from_millis(5)));
        sim.run_until(SimTime::from_millis(5));
        assert_eq!(sim.node_as::<CountingSink>(b).unwrap().packets(), 0);
        sim.run_until(SimTime::from_millis(7));
        let sink = sim.node_as::<CountingSink>(b).unwrap();
        assert_eq!(sink.packets(), 1);
        assert_eq!(sink.first_arrival().unwrap().as_nanos(), 6_000_000);
        assert_eq!(sim.link_stats(l).delivered, 1);
    }

    #[test]
    fn bandwidth_paces_back_to_back_packets() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(
            "a",
            Blaster {
                peer: Addr::new(SimNodeId(1), 1),
                count: 3,
                size: 972,
            },
        );
        let b = sim.add_node("b", CountingSink::new());
        sim.add_link(
            a,
            b,
            LinkConfig::new(8e6, SimDuration::ZERO).with_queue_bytes(1 << 20),
        );
        sim.run_until(SimTime::from_secs(1));
        let sink = sim.node_as::<CountingSink>(b).unwrap();
        assert_eq!(sink.packets(), 3);
        // Arrivals at 1, 2, 3 ms.
        let times: Vec<u64> = sink.arrivals().iter().map(|t| t.as_nanos()).collect();
        assert_eq!(times, vec![1_000_000, 2_000_000, 3_000_000]);
    }

    #[test]
    fn queue_overflow_drops_excess() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(
            "a",
            Blaster {
                peer: Addr::new(SimNodeId(1), 1),
                count: 100,
                size: 972,
            },
        );
        let b = sim.add_node("b", CountingSink::new());
        let l = sim.add_link(
            a,
            b,
            LinkConfig::new(8e6, SimDuration::ZERO).with_queue_bytes(10_000),
        );
        sim.run_until(SimTime::from_secs(10));
        let st = sim.link_stats(l);
        assert!(st.dropped_queue > 0);
        assert_eq!(st.delivered + st.dropped_queue, 100);
    }

    #[test]
    fn no_route_counts_drops() {
        let mut sim = Simulator::new(1);
        let _a = sim.add_node(
            "a",
            Blaster {
                peer: Addr::new(SimNodeId(1), 1),
                count: 2,
                size: 10,
            },
        );
        let _b = sim.add_node("b", CountingSink::new());
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.no_route_drops(), 2);
    }

    #[test]
    fn lossy_link_drops_roughly_at_rate() {
        struct Pacer {
            peer: Addr,
            remaining: usize,
        }
        impl NodeBehavior for Pacer {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_micros(100), 0);
            }
            fn on_datagram(&mut self, _ctx: &mut Context<'_>, _d: Datagram) {}
            fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
                if self.remaining > 0 {
                    self.remaining -= 1;
                    ctx.send(self.peer, 1, Bytes::from_static(&[0u8; 100]));
                    ctx.set_timer(SimDuration::from_micros(100), 0);
                }
            }
        }
        let mut sim = Simulator::new(42);
        let a = sim.add_node(
            "a",
            Pacer {
                peer: Addr::new(SimNodeId(1), 1),
                remaining: 10_000,
            },
        );
        let b = sim.add_node("b", CountingSink::new());
        let l = sim.add_link(
            a,
            b,
            LinkConfig::new(1e9, SimDuration::ZERO).with_loss(crate::loss::LossModel::uniform(0.2)),
        );
        sim.run_until(SimTime::from_secs(10));
        let st = sim.link_stats(l);
        let loss_rate = st.dropped_loss as f64 / (st.dropped_loss + st.delivered) as f64;
        assert!((loss_rate - 0.2).abs() < 0.02, "loss rate {loss_rate}");
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let run = |seed| {
            let mut sim = Simulator::new(seed);
            let a = sim.add_node(
                "a",
                Blaster {
                    peer: Addr::new(SimNodeId(1), 1),
                    count: 50,
                    size: 500,
                },
            );
            let b = sim.add_node("b", CountingSink::new());
            let l = sim.add_link(
                a,
                b,
                LinkConfig::new(1e6, SimDuration::from_millis(3))
                    .with_loss(crate::loss::LossModel::uniform(0.3)),
            );
            sim.run_until(SimTime::from_secs(30));
            sim.link_stats(l)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).delivered, run(8).delivered);
    }

    #[test]
    fn mid_run_bandwidth_change_takes_effect() {
        // Replace the trace mid-run (the netem-style shaping used by the
        // Fig. 11 bandwidth cuts) and verify pacing follows it.
        let mut sim = Simulator::new(4);
        let a = sim.add_node(
            "a",
            Blaster {
                peer: Addr::new(SimNodeId(1), 1),
                count: 0,
                size: 0,
            },
        );
        let b = sim.add_node("b", CountingSink::new());
        let l = sim.add_link(
            a,
            b,
            LinkConfig::new(8e6, SimDuration::ZERO).with_queue_bytes(1 << 20),
        );
        // Manually drive two packets: one before, one after the change.
        sim.run_until(SimTime::from_millis(1));
        let mut trace = crate::trace::BandwidthTrace::constant(8e6);
        trace.add_step(SimTime::from_millis(1), 4e6); // halve
        sim.set_link_bandwidth(l, trace);
        // New blaster node to push packets after the cut.
        let c = sim.add_node(
            "c",
            Blaster {
                peer: Addr::new(SimNodeId(1), 1),
                count: 1,
                size: 972,
            },
        );
        sim.add_link(c, b, LinkConfig::new(4e6, SimDuration::ZERO));
        sim.run_until(SimTime::from_secs(1));
        // 1000 wire bytes at 4 Mbps = 2 ms serialization on c->b.
        let sink = sim.node_as::<CountingSink>(b).unwrap();
        assert_eq!(sink.packets(), 1);
        let t = sink.first_arrival().unwrap().as_nanos();
        assert_eq!(t, 3_000_000); // sent at 1 ms + 2 ms serialization
    }

    #[test]
    fn jitter_reorders_packets() {
        let mut sim = Simulator::new(3);
        let a = sim.add_node(
            "a",
            Blaster {
                peer: Addr::new(SimNodeId(1), 1),
                count: 200,
                size: 100,
            },
        );
        let b = sim.add_node("b", CountingSink::new());
        sim.add_link(
            a,
            b,
            LinkConfig::new(1e9, SimDuration::from_millis(5))
                .with_jitter(SimDuration::from_millis(20))
                .with_queue_bytes(1 << 20),
        );
        sim.run_until(SimTime::from_secs(2));
        let sink = sim.node_as::<CountingSink>(b).unwrap();
        assert_eq!(sink.packets(), 200);
        // With 20 ms jitter over back-to-back packets, arrival times are
        // spread across [5, 25] ms.
        let times: Vec<u64> = sink.arrivals().iter().map(|t| t.as_nanos()).collect();
        let min = *times.iter().min().unwrap();
        let max = *times.iter().max().unwrap();
        assert!(min >= 5_000_000);
        assert!(max <= 26_000_000);
        assert!(max - min > 10_000_000, "jitter spread too small");
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerNode {
            fired: Vec<u64>,
        }
        impl NodeBehavior for TimerNode {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_millis(30), 3);
                ctx.set_timer(SimDuration::from_millis(10), 1);
                ctx.set_timer(SimDuration::from_millis(20), 2);
            }
            fn on_datagram(&mut self, _ctx: &mut Context<'_>, _d: Datagram) {}
            fn on_timer(&mut self, _ctx: &mut Context<'_>, token: u64) {
                self.fired.push(token);
            }
        }
        let mut sim = Simulator::new(1);
        let n = sim.add_node("t", TimerNode { fired: Vec::new() });
        sim.run_until(SimTime::from_millis(25));
        assert_eq!(sim.node_as::<TimerNode>(n).unwrap().fired, vec![1, 2]);
        sim.run_until(SimTime::from_millis(35));
        assert_eq!(sim.node_as::<TimerNode>(n).unwrap().fired, vec![1, 2, 3]);
    }
}
