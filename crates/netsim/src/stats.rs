//! Measurement helpers: time-binned throughput series and summary stats.

use crate::time::{SimDuration, SimTime};

/// Accumulates (time, bytes) samples into fixed-width bins and reports a
/// throughput time series — how the figure harnesses produce the
/// "throughput over time" curves of Fig. 7/10/11.
#[derive(Debug, Clone)]
pub struct ThroughputSeries {
    bin: SimDuration,
    bins: Vec<u64>,
}

impl ThroughputSeries {
    /// Creates a series with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics if `bin` is zero.
    pub fn new(bin: SimDuration) -> Self {
        assert!(bin.as_nanos() > 0, "bin width must be positive");
        ThroughputSeries {
            bin,
            bins: Vec::new(),
        }
    }

    /// Records `bytes` delivered at time `t`.
    pub fn record(&mut self, t: SimTime, bytes: u64) {
        let idx = (t.as_nanos() / self.bin.as_nanos()) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0);
        }
        self.bins[idx] += bytes;
    }

    /// Bin width.
    pub fn bin_width(&self) -> SimDuration {
        self.bin
    }

    /// Throughput per bin in Mbps, as (bin start seconds, Mbps) pairs.
    pub fn mbps(&self) -> Vec<(f64, f64)> {
        let w = self.bin.as_secs_f64();
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &b)| (i as f64 * w, b as f64 * 8.0 / w / 1e6))
            .collect()
    }

    /// Mean throughput in Mbps over bins `[from, to)` (clamped).
    pub fn mean_mbps(&self, from_bin: usize, to_bin: usize) -> f64 {
        let to = to_bin.min(self.bins.len());
        if from_bin >= to {
            return 0.0;
        }
        let total: u64 = self.bins[from_bin..to].iter().sum();
        total as f64 * 8.0 / ((to - from_bin) as f64 * self.bin.as_secs_f64()) / 1e6
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.bins.iter().sum()
    }
}

/// Running min/max/mean summary (used for the RTT rows of Table II).
#[derive(Debug, Clone, Copy, Default)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.sum / self.count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_accumulate() {
        let mut s = ThroughputSeries::new(SimDuration::from_secs(1));
        s.record(SimTime::from_millis(100), 125_000); // 1 Mbps over 1 s
        s.record(SimTime::from_millis(900), 125_000);
        s.record(SimTime::from_millis(1500), 125_000);
        let series = s.mbps();
        assert_eq!(series.len(), 2);
        assert!((series[0].1 - 2.0).abs() < 1e-9);
        assert!((series[1].1 - 1.0).abs() < 1e-9);
        assert_eq!(s.total_bytes(), 375_000);
        assert!((s.mean_mbps(0, 2) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn mean_of_empty_range_is_zero() {
        let s = ThroughputSeries::new(SimDuration::from_secs(1));
        assert_eq!(s.mean_mbps(0, 10), 0.0);
        assert_eq!(s.mean_mbps(5, 5), 0.0);
    }

    #[test]
    fn summary_tracks_extremes() {
        let mut s = Summary::new();
        assert!(s.mean().is_none());
        for x in [3.0, 1.0, 2.0] {
            s.record(x);
        }
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(3.0));
        assert_eq!(s.mean(), Some(2.0));
        assert_eq!(s.count(), 3);
    }
}
