//! Packet-loss models.
//!
//! The paper's robustness experiments (Sec. V-B-3) emulate two loss
//! processes with `netem` on the bottleneck link:
//!
//! * i.i.d. uniform loss at rates 0–50 % (Fig. 8);
//! * burst loss where "the loss rate of the n-th packet is
//!   `Pₙ = 25% × Pₙ₋₁ + P`, `P₀ = 0`" with `P` ranging 0–5 % (Fig. 9).
//!
//! A Gilbert–Elliott two-state model is included as an extension.

use rand::Rng;

/// A per-link loss process. Each call to [`LossModel::drops`] consumes one
/// packet event and returns whether that packet is lost.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum LossModel {
    /// No loss.
    #[default]
    None,
    /// Independent loss with fixed probability per packet.
    Uniform {
        /// Loss probability in `[0, 1]`.
        rate: f64,
    },
    /// The paper's burst recurrence: the n-th packet is lost with
    /// probability `pₙ = memory · pₙ₋₁ + base`, seeded at `p₀ = 0`. A lost
    /// packet bumps `pₙ₋₁` to 1, which is what makes losses bursty.
    Burst {
        /// Memory factor (the paper uses 0.25).
        memory: f64,
        /// Additive base loss `P` (0–5 % in Fig. 9).
        base: f64,
        /// Current per-packet loss probability (`pₙ₋₁`).
        current: f64,
    },
    /// Gilbert–Elliott: a good/bad Markov chain with per-state loss rates.
    GilbertElliott {
        /// P(good -> bad) per packet.
        p_gb: f64,
        /// P(bad -> good) per packet.
        p_bg: f64,
        /// Loss rate while in the good state.
        good_loss: f64,
        /// Loss rate while in the bad state.
        bad_loss: f64,
        /// Current state: true = bad.
        in_bad: bool,
    },
}

impl LossModel {
    /// Convenience constructor for [`LossModel::Uniform`].
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn uniform(rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "loss rate out of range");
        LossModel::Uniform { rate }
    }

    /// The paper's burst model with memory 0.25 and additive base `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn paper_burst(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "burst base out of range");
        LossModel::Burst {
            memory: 0.25,
            base: p,
            current: 0.0,
        }
    }

    /// Gilbert–Elliott starting in the good state.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn gilbert_elliott(p_gb: f64, p_bg: f64, good_loss: f64, bad_loss: f64) -> Self {
        for p in [p_gb, p_bg, good_loss, bad_loss] {
            assert!((0.0..=1.0).contains(&p), "probability out of range");
        }
        LossModel::GilbertElliott {
            p_gb,
            p_bg,
            good_loss,
            bad_loss,
            in_bad: false,
        }
    }

    /// Advances the process by one packet; returns true if it is dropped.
    pub fn drops<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        match self {
            LossModel::None => false,
            LossModel::Uniform { rate } => *rate > 0.0 && rng.gen::<f64>() < *rate,
            LossModel::Burst {
                memory,
                base,
                current,
            } => {
                let p_n = *memory * *current + *base;
                let lost = p_n > 0.0 && rng.gen::<f64>() < p_n;
                // Feed back: a loss spikes the next-step probability.
                *current = if lost { 1.0 } else { p_n };
                lost
            }
            LossModel::GilbertElliott {
                p_gb,
                p_bg,
                good_loss,
                bad_loss,
                in_bad,
            } => {
                // State transition first, then per-state Bernoulli loss.
                if *in_bad {
                    if rng.gen::<f64>() < *p_bg {
                        *in_bad = false;
                    }
                } else if rng.gen::<f64>() < *p_gb {
                    *in_bad = true;
                }
                let rate = if *in_bad { *bad_loss } else { *good_loss };
                rate > 0.0 && rng.gen::<f64>() < rate
            }
        }
    }

    /// Long-run expected loss rate of the process (analytic).
    pub fn steady_state_rate(&self) -> f64 {
        match self {
            LossModel::None => 0.0,
            LossModel::Uniform { rate } => *rate,
            // Below the loss-feedback correction, pₙ converges to
            // base / (1 − memory); the feedback makes the true rate
            // slightly higher, but this closed form is what the paper's
            // recurrence converges to without losses.
            LossModel::Burst { memory, base, .. } => base / (1.0 - memory),
            LossModel::GilbertElliott {
                p_gb,
                p_bg,
                good_loss,
                bad_loss,
                ..
            } => {
                let pi_bad = if p_gb + p_bg > 0.0 {
                    p_gb / (p_gb + p_bg)
                } else {
                    0.0
                };
                pi_bad * bad_loss + (1.0 - pi_bad) * good_loss
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical_rate(model: &mut LossModel, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lost = 0usize;
        for _ in 0..n {
            if model.drops(&mut rng) {
                lost += 1;
            }
        }
        lost as f64 / n as f64
    }

    #[test]
    fn uniform_rate_matches() {
        for rate in [0.0, 0.1, 0.5] {
            let mut m = LossModel::uniform(rate);
            let emp = empirical_rate(&mut m, 100_000, 1);
            assert!((emp - rate).abs() < 0.01, "rate {rate}: got {emp}");
        }
    }

    #[test]
    fn none_never_drops() {
        let mut m = LossModel::None;
        assert_eq!(empirical_rate(&mut m, 1000, 2), 0.0);
    }

    #[test]
    fn burst_rate_close_to_steady_state() {
        // With base 3%: pₙ → 0.03 / 0.75 = 4% plus a small feedback term.
        let mut m = LossModel::paper_burst(0.03);
        let expect = m.steady_state_rate();
        let emp = empirical_rate(&mut m, 200_000, 3);
        assert!(
            emp >= expect - 0.005 && emp <= expect + 0.02,
            "expected near {expect}, got {emp}"
        );
    }

    #[test]
    fn burst_zero_base_never_drops() {
        let mut m = LossModel::paper_burst(0.0);
        assert_eq!(empirical_rate(&mut m, 10_000, 4), 0.0);
    }

    #[test]
    fn bursts_are_bursty() {
        // Consecutive-loss probability should exceed the square of the
        // marginal rate (positive autocorrelation).
        let mut m = LossModel::paper_burst(0.05);
        let mut rng = StdRng::seed_from_u64(5);
        let seq: Vec<bool> = (0..300_000).map(|_| m.drops(&mut rng)).collect();
        let rate = seq.iter().filter(|&&l| l).count() as f64 / seq.len() as f64;
        let pairs = seq.windows(2).filter(|w| w[0] && w[1]).count() as f64 / (seq.len() - 1) as f64;
        assert!(
            pairs > rate * rate * 2.0,
            "no burstiness: rate {rate}, pair rate {pairs}"
        );
    }

    #[test]
    fn gilbert_elliott_steady_state() {
        let mut m = LossModel::gilbert_elliott(0.01, 0.2, 0.0, 0.5);
        let expect = m.steady_state_rate();
        let emp = empirical_rate(&mut m, 300_000, 6);
        assert!((emp - expect).abs() < 0.01, "expected {expect}, got {emp}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_rate_panics() {
        let _ = LossModel::uniform(1.5);
    }
}
