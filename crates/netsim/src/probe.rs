//! Measurement probes: ping-style RTT and iperf-style throughput.
//!
//! The paper installs `iperf3` on the coding VNFs and runs `ping`
//! periodically; "results are sent to the controller for use of the
//! dynamic scaling algorithm" (Sec. IV-B). These behaviors are the
//! simulator counterparts; the control-plane crate reads their samples.

use bytes::{BufMut, Bytes, BytesMut};

use crate::node::{Context, NodeBehavior};
use crate::packet::{Addr, Datagram};
use crate::stats::Summary;
use crate::time::{SimDuration, SimTime};

/// Echoes every datagram back to its sender (same payload, same port).
#[derive(Debug, Default)]
pub struct EchoServer {
    echoed: u64,
}

impl EchoServer {
    /// Creates a new echo responder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of datagrams echoed.
    pub fn echoed(&self) -> u64 {
        self.echoed
    }
}

impl NodeBehavior for EchoServer {
    fn on_datagram(&mut self, ctx: &mut Context<'_>, dgram: Datagram) {
        self.echoed += 1;
        ctx.send(dgram.src, dgram.dst.port, dgram.payload);
    }
}

/// Sends periodic echo requests and records round-trip times.
///
/// The peer must run an [`EchoServer`] (or any behavior that reflects the
/// payload back).
#[derive(Debug)]
pub struct PingProbe {
    peer: Addr,
    interval: SimDuration,
    payload_len: usize,
    remaining: u64,
    next_seq: u64,
    in_flight: Vec<(u64, SimTime)>,
    rtts_ms: Vec<f64>,
    summary: Summary,
}

impl PingProbe {
    /// A probe that pings `peer` `count` times every `interval` with
    /// `payload_len`-byte packets (the paper pings "with the same packet
    /// size as that of our coded packets").
    pub fn new(peer: Addr, interval: SimDuration, count: u64, payload_len: usize) -> Self {
        PingProbe {
            peer,
            interval,
            payload_len: payload_len.max(8),
            remaining: count,
            next_seq: 0,
            in_flight: Vec::new(),
            rtts_ms: Vec::new(),
            summary: Summary::new(),
        }
    }

    /// All RTT samples in milliseconds.
    pub fn rtts_ms(&self) -> &[f64] {
        &self.rtts_ms
    }

    /// Min/max/mean summary of the RTT samples.
    pub fn summary(&self) -> Summary {
        self.summary
    }

    fn fire(&mut self, ctx: &mut Context<'_>) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut buf = BytesMut::with_capacity(self.payload_len);
        buf.put_u64(seq);
        buf.resize(self.payload_len, 0);
        self.in_flight.push((seq, ctx.now()));
        ctx.send(self.peer, PING_PORT, buf.freeze());
        if self.remaining > 0 {
            ctx.set_timer(self.interval, 0);
        }
    }
}

/// Port used by ping probes.
pub const PING_PORT: u16 = 7;

impl NodeBehavior for PingProbe {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.fire(ctx);
    }

    fn on_datagram(&mut self, ctx: &mut Context<'_>, dgram: Datagram) {
        if dgram.payload.len() < 8 {
            return;
        }
        let seq = u64::from_be_bytes(dgram.payload[..8].try_into().expect("8 bytes"));
        if let Some(pos) = self.in_flight.iter().position(|&(s, _)| s == seq) {
            let (_, sent) = self.in_flight.swap_remove(pos);
            let rtt = (ctx.now() - sent).as_millis_f64();
            self.rtts_ms.push(rtt);
            self.summary.record(rtt);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
        self.fire(ctx);
    }
}

/// Blasts UDP at a constant bit rate toward a sink (iperf-style). Pair it
/// with a [`crate::sink::CountingSink`] to read the delivered rate.
#[derive(Debug)]
pub struct RateSource {
    peer: Addr,
    packet_len: usize,
    interval: SimDuration,
    stop_at: SimTime,
    sent: u64,
}

impl RateSource {
    /// Sends `packet_len`-byte payloads to `peer` at `bps` (on-the-wire
    /// bits per second) until `stop_at`.
    ///
    /// # Panics
    ///
    /// Panics if `bps` or `packet_len` is not positive.
    pub fn new(peer: Addr, bps: f64, packet_len: usize, stop_at: SimTime) -> Self {
        assert!(bps > 0.0 && bps.is_finite(), "invalid rate");
        assert!(packet_len > 0, "invalid packet length");
        let wire = packet_len + Datagram::HEADER_OVERHEAD;
        let interval = SimDuration::from_secs_f64(wire as f64 * 8.0 / bps);
        RateSource {
            peer,
            packet_len,
            interval,
            stop_at,
            sent: 0,
        }
    }

    /// Packets emitted so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }
}

impl NodeBehavior for RateSource {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(SimDuration::ZERO, 0);
    }

    fn on_datagram(&mut self, _ctx: &mut Context<'_>, _dgram: Datagram) {}

    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
        if ctx.now() >= self.stop_at {
            return;
        }
        self.sent += 1;
        ctx.send(self.peer, 5001, Bytes::from(vec![0u8; self.packet_len]));
        ctx.set_timer(self.interval, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CountingSink;
    use crate::{LinkConfig, SimNodeId, Simulator};

    #[test]
    fn ping_measures_symmetric_rtt() {
        let mut sim = Simulator::new(1);
        let probe_node = SimNodeId(0);
        let echo_node = SimNodeId(1);
        let p = sim.add_node(
            "probe",
            PingProbe::new(
                Addr::new(echo_node, PING_PORT),
                SimDuration::from_millis(100),
                5,
                64,
            ),
        );
        let e = sim.add_node("echo", EchoServer::new());
        // 10 ms each way; serialization of 92 wire bytes at 1 Gbps ≈ 0.7 us.
        let cfg = LinkConfig::new(1e9, SimDuration::from_millis(10));
        sim.add_link(p, e, cfg.clone());
        sim.add_link(e, p, cfg);
        sim.run_until(SimTime::from_secs(2));
        let probe = sim.node_as::<PingProbe>(p).unwrap();
        assert_eq!(probe.rtts_ms().len(), 5);
        for &rtt in probe.rtts_ms() {
            assert!((rtt - 20.0).abs() < 0.1, "rtt {rtt}");
        }
        assert_eq!(sim.node_as::<EchoServer>(e).unwrap().echoed(), 5);
        let _ = probe_node;
    }

    #[test]
    fn rate_source_achieves_configured_rate_on_fat_link() {
        let mut sim = Simulator::new(1);
        let src = sim.add_node(
            "src",
            RateSource::new(
                Addr::new(SimNodeId(1), 5001),
                10e6,
                1000,
                SimTime::from_secs(2),
            ),
        );
        let dst = sim.add_node("dst", CountingSink::counting_only());
        sim.add_link(
            src,
            dst,
            LinkConfig::new(100e6, SimDuration::from_millis(5)),
        );
        sim.run_until(SimTime::from_secs(3));
        let sink = sim.node_as::<CountingSink>(dst).unwrap();
        let wire_bits = (sink.bytes() + sink.packets() * 28) * 8;
        let rate = wire_bits as f64 / 2.0; // bps over the 2 s send window
        assert!((rate - 10e6).abs() / 10e6 < 0.01, "rate {rate}");
    }

    #[test]
    fn rate_source_saturates_at_link_capacity() {
        let mut sim = Simulator::new(1);
        let src = sim.add_node(
            "src",
            RateSource::new(
                Addr::new(SimNodeId(1), 5001),
                50e6,
                1000,
                SimTime::from_secs(2),
            ),
        );
        let dst = sim.add_node("dst", CountingSink::counting_only());
        sim.add_link(src, dst, LinkConfig::new(10e6, SimDuration::ZERO));
        // Stop at the send deadline so queue drain does not inflate the
        // measured window.
        sim.run_until(SimTime::from_secs(2));
        let sink = sim.node_as::<CountingSink>(dst).unwrap();
        let wire_bits = (sink.bytes() + sink.packets() * 28) * 8;
        let rate = wire_bits as f64 / 2.0;
        // Queue drops bound delivery near 10 Mbps.
        assert!(rate <= 10.5e6, "rate {rate}");
        assert!(rate >= 9.0e6, "rate {rate}");
    }
}
