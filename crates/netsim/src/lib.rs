//! A deterministic discrete-event network simulator.
//!
//! The paper evaluates on VMs rented in six North-American data centers
//! (EC2 California/Oregon/Virginia, Linode Texas/Georgia/New Jersey),
//! shaping links with `netem` and measuring with `ping`/`iperf3`. This
//! crate is the substitute testbed: an event-driven simulator whose links
//! have propagation delay, (possibly time-varying) bandwidth with a
//! drop-tail queue, and pluggable loss models — including the exact burst
//! recurrence the paper injects (`Pₙ = 25% · Pₙ₋₁ + P`).
//!
//! Key pieces:
//!
//! * [`Simulator`] — event loop, nodes, links, deterministic RNG;
//! * [`NodeBehavior`] — trait implemented by traffic sources, VNFs, sinks;
//! * [`LinkConfig`]/[`LossModel`]/[`BandwidthTrace`] — link shaping;
//! * [`tcp`] — a Reno-like reliable transport for the "Direct TCP"
//!   baseline of Fig. 7;
//! * [`probe`] — ping- and iperf-style measurement nodes feeding the
//!   control plane;
//! * [`stats`] — time-binned throughput series used by the figure
//!   harnesses.
//!
//! # Example
//!
//! ```
//! use ncvnf_netsim::*;
//! use bytes::Bytes;
//!
//! /// Sends one datagram at t = 0, counts what it gets back.
//! struct Hello { peer: Addr }
//! impl NodeBehavior for Hello {
//!     fn on_start(&mut self, ctx: &mut Context<'_>) {
//!         ctx.send(self.peer, 9, Bytes::from_static(b"hi"));
//!     }
//!     fn on_datagram(&mut self, _ctx: &mut Context<'_>, _d: Datagram) {}
//! }
//!
//! let mut sim = Simulator::new(7);
//! let a = sim.add_node("a", Hello { peer: Addr::new(SimNodeId(1), 9) });
//! let b = sim.add_node("b", sink::CountingSink::new());
//! sim.add_link(a, b, LinkConfig::new(1e6, SimDuration::from_millis(5)));
//! sim.run_until(SimTime::from_secs(1));
//! assert_eq!(sim.node_as::<sink::CountingSink>(b).unwrap().packets(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod link;
mod loss;
mod node;
mod packet;
pub mod probe;
mod sim;
pub mod sink;
pub mod stats;
pub mod tcp;
mod time;
mod trace;

pub use link::{LinkConfig, LinkId, LinkStats};
pub use loss::LossModel;
pub use node::{Context, NodeBehavior};
pub use packet::{Addr, Datagram};
pub use sim::{SimNodeId, Simulator};
pub use time::{SimDuration, SimTime};
pub use trace::BandwidthTrace;
