//! A Reno-style reliable transport, the "Direct TCP" baseline.
//!
//! Fig. 7 compares coded multicast against a direct TCP transfer from the
//! source to each receiver. This module implements enough of TCP Reno to
//! make that baseline honest: slow start, congestion avoidance, fast
//! retransmit on three duplicate ACKs, fast recovery, exponential-backoff
//! RTO with Karn's rule, and a cumulative-ACK receiver with an
//! out-of-order reassembly buffer.
//!
//! Segments are framed in the datagram payload as:
//!
//! ```text
//! byte 0      kind: 1 = DATA, 2 = ACK
//! bytes 1-8   sequence/ack number (byte offset), big endian
//! bytes 9..   payload (DATA only)
//! ```

use std::collections::BTreeMap;

use bytes::{BufMut, Bytes, BytesMut};

use crate::node::{Context, NodeBehavior};
use crate::packet::{Addr, Datagram};
use crate::stats::ThroughputSeries;
use crate::time::{SimDuration, SimTime};

const KIND_DATA: u8 = 1;
const KIND_ACK: u8 = 2;
const SEG_HEADER: usize = 9;

/// Maximum segment size used by the baseline (1460-byte payload minus our
/// 9-byte segment header keeps wire packets within the MTU, mirroring the
/// NC packet sizing).
pub const DEFAULT_MSS: usize = 1451;

fn encode_segment(kind: u8, seq: u64, payload: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(SEG_HEADER + payload.len());
    buf.put_u8(kind);
    buf.put_u64(seq);
    buf.put_slice(payload);
    buf.freeze()
}

fn decode_segment(payload: &[u8]) -> Option<(u8, u64, &[u8])> {
    if payload.len() < SEG_HEADER {
        return None;
    }
    let kind = payload[0];
    let seq = u64::from_be_bytes(payload[1..9].try_into().expect("8 bytes"));
    Some((kind, seq, &payload[SEG_HEADER..]))
}

/// Reno sender: transfers `total_bytes` of synthetic data to a
/// [`TcpReceiver`].
#[derive(Debug)]
pub struct TcpSender {
    peer: Addr,
    mss: usize,
    total: u64,
    // --- sliding window state (byte offsets) ---
    snd_una: u64,
    snd_nxt: u64,
    // --- congestion control (bytes) ---
    cwnd: f64,
    ssthresh: f64,
    /// Receive-window cap on the flight size. Without SACK, a deep-queue
    /// overflow with hundreds of holes degenerates into one-hole-per-RTT
    /// NewReno recovery; real stacks bound the flight with the peer's
    /// advertised window, and so do we.
    max_window: f64,
    dup_acks: u32,
    in_recovery: bool,
    recover: u64,
    // --- RTT estimation / RTO ---
    srtt: Option<f64>,
    rttvar: f64,
    rto: SimDuration,
    rtt_probe: Option<(u64, SimTime)>,
    timer_gen: u64,
    // --- results ---
    finished_at: Option<SimTime>,
    retransmits: u64,
}

impl TcpSender {
    /// A sender that will push `total_bytes` to `peer` with the default
    /// MSS.
    pub fn new(peer: Addr, total_bytes: u64) -> Self {
        Self::with_mss(peer, total_bytes, DEFAULT_MSS)
    }

    /// A sender with an explicit MSS.
    ///
    /// # Panics
    ///
    /// Panics if `mss` is zero.
    pub fn with_mss(peer: Addr, total_bytes: u64, mss: usize) -> Self {
        assert!(mss > 0, "mss must be positive");
        let max_window = (220 * mss) as f64; // ≈320 KiB advertised window
        TcpSender {
            peer,
            mss,
            total: total_bytes,
            snd_una: 0,
            snd_nxt: 0,
            cwnd: (10 * mss) as f64,
            // Slow-start straight up to the advertised window; the window
            // cap (not loss) ends the ramp on clean paths.
            ssthresh: max_window,
            max_window,
            dup_acks: 0,
            in_recovery: false,
            recover: 0,
            srtt: None,
            rttvar: 0.0,
            rto: SimDuration::from_millis(1000),
            rtt_probe: None,
            timer_gen: 0,
            finished_at: None,
            retransmits: 0,
        }
    }

    /// Completion time, once all bytes are acknowledged.
    pub fn finished_at(&self) -> Option<SimTime> {
        self.finished_at
    }

    /// Number of retransmitted segments.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// Current congestion window in bytes (for tests/inspection).
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn send_segment(&mut self, ctx: &mut Context<'_>, seq: u64) {
        let len = self.mss.min((self.total - seq) as usize);
        if len == 0 {
            return;
        }
        // Payload content is synthetic zeros; receivers only track counts.
        let seg = encode_segment(KIND_DATA, seq, &vec![0u8; len]);
        ctx.send(self.peer, TCP_PORT, seg);
    }

    fn fill_window(&mut self, ctx: &mut Context<'_>) {
        // Always allow at least one MSS in flight so a collapsed window
        // cannot deadlock the connection; never exceed the advertised
        // window.
        let window = self.cwnd.min(self.max_window);
        let limit = self.snd_una + (window as u64).max(self.mss as u64);
        while self.snd_nxt < self.total && self.snd_nxt < limit {
            let seq = self.snd_nxt;
            self.send_segment(ctx, seq);
            if self.rtt_probe.is_none() {
                self.rtt_probe = Some((seq, ctx.now()));
            }
            self.snd_nxt += self.mss.min((self.total - seq) as usize) as u64;
        }
    }

    fn arm_rto(&mut self, ctx: &mut Context<'_>) {
        self.timer_gen += 1;
        ctx.set_timer(self.rto, self.timer_gen);
    }

    fn update_rtt(&mut self, sample_ms: f64) {
        match self.srtt {
            None => {
                self.srtt = Some(sample_ms);
                self.rttvar = sample_ms / 2.0;
            }
            Some(srtt) => {
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - sample_ms).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * sample_ms);
            }
        }
        let rto_ms = (self.srtt.expect("just set") + 4.0 * self.rttvar).max(200.0);
        self.rto = SimDuration::from_secs_f64(rto_ms / 1000.0);
    }

    fn flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }
}

/// Port used by the TCP baseline.
pub const TCP_PORT: u16 = 5002;

impl NodeBehavior for TcpSender {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.fill_window(ctx);
        self.arm_rto(ctx);
    }

    fn on_datagram(&mut self, ctx: &mut Context<'_>, dgram: Datagram) {
        let Some((kind, ack, _)) = decode_segment(&dgram.payload) else {
            return;
        };
        if kind != KIND_ACK || self.finished_at.is_some() {
            return;
        }
        if ack > self.snd_una {
            // New data acknowledged.
            self.snd_una = ack;
            self.dup_acks = 0;
            if let Some((probe_seq, sent)) = self.rtt_probe {
                if ack > probe_seq {
                    let sample = (ctx.now() - sent).as_millis_f64();
                    self.update_rtt(sample);
                    self.rtt_probe = None;
                }
            }
            if self.in_recovery {
                if ack >= self.recover {
                    self.in_recovery = false;
                    self.cwnd = self.ssthresh;
                } else {
                    // NewReno partial ACK: the next hole is lost too —
                    // retransmit it immediately without leaving recovery.
                    self.retransmits += 1;
                    let seq = self.snd_una;
                    self.send_segment(ctx, seq);
                }
            } else if self.cwnd < self.ssthresh {
                // Slow start.
                self.cwnd += self.mss as f64;
            } else {
                // Congestion avoidance (per-ACK additive increase).
                self.cwnd += (self.mss * self.mss) as f64 / self.cwnd;
            }
            if self.snd_una >= self.total {
                self.finished_at = Some(ctx.now());
                return;
            }
            self.fill_window(ctx);
            self.arm_rto(ctx);
        } else if ack == self.snd_una && self.flight() > 0 {
            self.dup_acks += 1;
            if self.dup_acks == 3 && !self.in_recovery {
                // Fast retransmit + fast recovery.
                self.ssthresh = (self.flight() as f64 / 2.0).max((2 * self.mss) as f64);
                self.cwnd = self.ssthresh + (3 * self.mss) as f64;
                self.in_recovery = true;
                self.recover = self.snd_nxt;
                self.retransmits += 1;
                let seq = self.snd_una;
                self.send_segment(ctx, seq);
            } else if self.in_recovery {
                // Window inflation lets new data out during recovery.
                self.cwnd += self.mss as f64;
                self.fill_window(ctx);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        if token != self.timer_gen || self.finished_at.is_some() {
            return; // stale timer
        }
        if self.flight() == 0 && self.snd_nxt >= self.total {
            return;
        }
        // Retransmission timeout: collapse to one segment and go back to
        // snd_una — everything in flight is presumed lost and will be
        // resent as the window reopens.
        self.ssthresh = (self.flight() as f64 / 2.0).max((2 * self.mss) as f64);
        self.cwnd = self.mss as f64;
        self.in_recovery = false;
        self.dup_acks = 0;
        self.rtt_probe = None; // Karn's rule
        self.retransmits += 1;
        self.snd_nxt = self.snd_una;
        self.fill_window(ctx);
        self.rto = SimDuration::from_secs_f64((self.rto.as_secs_f64() * 2.0).min(60.0));
        self.arm_rto(ctx);
    }
}

/// Cumulative-ACK receiver with out-of-order reassembly.
#[derive(Debug)]
pub struct TcpReceiver {
    rcv_nxt: u64,
    /// Out-of-order segments: start offset -> length.
    ooo: BTreeMap<u64, u64>,
    bytes_received: u64,
    series: ThroughputSeries,
}

impl TcpReceiver {
    /// A receiver binning goodput into `bin`-wide intervals.
    pub fn new(bin: SimDuration) -> Self {
        TcpReceiver {
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            bytes_received: 0,
            series: ThroughputSeries::new(bin),
        }
    }

    /// In-order bytes delivered to the application so far.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// Goodput time series.
    pub fn series(&self) -> &ThroughputSeries {
        &self.series
    }
}

impl NodeBehavior for TcpReceiver {
    fn on_datagram(&mut self, ctx: &mut Context<'_>, dgram: Datagram) {
        let Some((kind, seq, payload)) = decode_segment(&dgram.payload) else {
            return;
        };
        if kind != KIND_DATA {
            return;
        }
        let len = payload.len() as u64;
        if seq + len > self.rcv_nxt {
            // Trim any already-delivered prefix, keep the longest segment
            // seen for a given start offset.
            let start = seq.max(self.rcv_nxt);
            let trimmed = len - (start - seq);
            let entry = self.ooo.entry(start).or_insert(0);
            *entry = (*entry).max(trimmed);
            // Advance over any contiguous prefix.
            while let Some((&start, &l)) = self.ooo.first_key_value() {
                if start > self.rcv_nxt {
                    break;
                }
                let end = start + l;
                self.ooo.pop_first();
                if end > self.rcv_nxt {
                    let advanced = end - self.rcv_nxt;
                    self.rcv_nxt = end;
                    self.bytes_received += advanced;
                    self.series.record(ctx.now(), advanced);
                }
            }
        }
        // Always ACK (cumulative).
        let ack = encode_segment(KIND_ACK, self.rcv_nxt, &[]);
        ctx.send(dgram.src, TCP_PORT, ack);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::LossModel;
    use crate::{LinkConfig, SimNodeId, SimTime, Simulator};

    fn transfer(
        bytes: u64,
        bw_bps: f64,
        delay: SimDuration,
        loss: LossModel,
        horizon: SimTime,
    ) -> (Option<SimTime>, u64, u64) {
        let mut sim = Simulator::new(11);
        let s = sim.add_node(
            "snd",
            TcpSender::new(Addr::new(SimNodeId(1), TCP_PORT), bytes),
        );
        let r = sim.add_node("rcv", TcpReceiver::new(SimDuration::from_secs(1)));
        sim.add_link(s, r, LinkConfig::new(bw_bps, delay).with_loss(loss));
        sim.add_link(r, s, LinkConfig::new(bw_bps, delay));
        sim.run_until(horizon);
        let snd = sim.node_as::<TcpSender>(s).unwrap();
        let rcv = sim.node_as::<TcpReceiver>(r).unwrap();
        (snd.finished_at(), rcv.bytes_received(), snd.retransmits())
    }

    #[test]
    fn lossless_transfer_completes_and_delivers_everything() {
        let (done, received, _) = transfer(
            1_000_000,
            10e6,
            SimDuration::from_millis(10),
            LossModel::None,
            SimTime::from_secs(30),
        );
        assert_eq!(received, 1_000_000);
        let done = done.expect("transfer should finish");
        // 1 MB at 10 Mbps is ideally 0.8 s; allow startup overheads.
        assert!(done.as_secs_f64() < 3.0, "took {done}");
    }

    #[test]
    fn throughput_is_bandwidth_bound_not_window_bound_on_short_rtt() {
        let (done, _, _) = transfer(
            2_000_000,
            20e6,
            SimDuration::from_millis(1),
            LossModel::None,
            SimTime::from_secs(30),
        );
        let secs = done.expect("finish").as_secs_f64();
        let rate = 2_000_000.0 * 8.0 / secs;
        assert!(rate > 0.7 * 20e6, "rate {rate}");
    }

    #[test]
    fn loss_triggers_retransmissions_and_still_completes() {
        let (done, received, retx) = transfer(
            300_000,
            10e6,
            SimDuration::from_millis(5),
            LossModel::uniform(0.02),
            SimTime::from_secs(60),
        );
        assert!(done.is_some(), "transfer did not finish");
        assert_eq!(received, 300_000);
        assert!(retx > 0, "expected retransmissions");
    }

    #[test]
    fn high_rtt_slows_throughput() {
        let fast = transfer(
            500_000,
            10e6,
            SimDuration::from_millis(5),
            LossModel::None,
            SimTime::from_secs(120),
        )
        .0
        .expect("finish")
        .as_secs_f64();
        let slow = transfer(
            500_000,
            10e6,
            SimDuration::from_millis(80),
            LossModel::None,
            SimTime::from_secs(120),
        )
        .0
        .expect("finish")
        .as_secs_f64();
        assert!(slow > fast, "slow {slow} fast {fast}");
    }

    #[test]
    fn loss_reduces_tcp_goodput() {
        let clean = transfer(
            1_000_000,
            10e6,
            SimDuration::from_millis(20),
            LossModel::None,
            SimTime::from_secs(200),
        )
        .0
        .expect("finish")
        .as_secs_f64();
        let lossy = transfer(
            1_000_000,
            10e6,
            SimDuration::from_millis(20),
            LossModel::uniform(0.03),
            SimTime::from_secs(200),
        )
        .0
        .expect("finish")
        .as_secs_f64();
        assert!(lossy > clean * 1.3, "lossy {lossy} clean {clean}");
    }
}
