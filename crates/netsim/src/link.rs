//! Simulated links: serialization, propagation, queueing, loss.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::loss::LossModel;
use crate::packet::Datagram;
use crate::time::{SimDuration, SimTime};
use crate::trace::BandwidthTrace;

/// Identifier of a directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub usize);

/// Static configuration of a directed link.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Bandwidth over time (bits per second).
    pub bandwidth: BandwidthTrace,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Extra per-packet delay drawn uniformly from `[0, jitter]`
    /// (netem-style jitter; nonzero jitter reorders packets, which the
    /// coded data plane must tolerate — "our system is not concerned with
    /// out-of-order packets").
    pub jitter: SimDuration,
    /// Drop-tail queue capacity in bytes.
    pub queue_bytes: usize,
    /// Loss process applied after serialization (netem-style wire loss).
    pub loss: LossModel,
}

impl LinkConfig {
    /// A lossless link with the given constant bandwidth (bps), one-way
    /// delay, and a default 256 KiB queue.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is not positive and finite.
    pub fn new(bps: f64, delay: SimDuration) -> Self {
        LinkConfig {
            bandwidth: BandwidthTrace::constant(bps),
            delay,
            jitter: SimDuration::ZERO,
            queue_bytes: 256 * 1024,
            loss: LossModel::None,
        }
    }

    /// Replaces the loss model (builder style).
    pub fn with_loss(mut self, loss: LossModel) -> Self {
        self.loss = loss;
        self
    }

    /// Sets per-packet delay jitter (builder style).
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Replaces the queue capacity (builder style).
    pub fn with_queue_bytes(mut self, bytes: usize) -> Self {
        self.queue_bytes = bytes;
        self
    }

    /// Replaces the bandwidth trace (builder style).
    pub fn with_trace(mut self, trace: BandwidthTrace) -> Self {
        self.bandwidth = trace;
        self
    }
}

/// Counters exposed per link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets accepted into the queue.
    pub enqueued: u64,
    /// Packets dropped because the queue was full.
    pub dropped_queue: u64,
    /// Packets dropped by the loss model.
    pub dropped_loss: u64,
    /// Packets delivered to the destination node.
    pub delivered: u64,
    /// Payload+header bytes delivered.
    pub delivered_bytes: u64,
}

/// Runtime state of one link inside the simulator.
pub(crate) struct LinkState {
    #[allow(dead_code)] // kept for debugging/reporting
    pub(crate) from: usize,
    #[allow(dead_code)]
    pub(crate) to: usize,
    pub(crate) config: LinkConfig,
    pub(crate) queue: VecDeque<Datagram>,
    pub(crate) queued_bytes: usize,
    /// True while a packet is being serialized.
    pub(crate) busy: bool,
    pub(crate) stats: LinkStats,
    /// Dedicated RNG so loss sequences are reproducible regardless of
    /// node behavior randomness.
    pub(crate) rng: StdRng,
}

impl LinkState {
    pub(crate) fn new(from: usize, to: usize, config: LinkConfig, seed: u64) -> Self {
        LinkState {
            from,
            to,
            config,
            queue: VecDeque::new(),
            queued_bytes: 0,
            busy: false,
            stats: LinkStats::default(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Tries to enqueue; returns false on tail drop.
    pub(crate) fn enqueue(&mut self, dgram: Datagram) -> bool {
        let sz = dgram.wire_bytes();
        if self.queued_bytes + sz > self.config.queue_bytes {
            self.stats.dropped_queue += 1;
            return false;
        }
        self.queued_bytes += sz;
        self.queue.push_back(dgram);
        self.stats.enqueued += 1;
        true
    }

    /// Serialization time of `bytes` at the rate in effect at `now`.
    pub(crate) fn tx_time(&self, bytes: usize, now: SimTime) -> SimDuration {
        let bps = self.config.bandwidth.rate_at(now);
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Addr;
    use crate::sim::SimNodeId;
    use bytes::Bytes;

    fn dgram(n: usize) -> Datagram {
        Datagram {
            src: Addr::new(SimNodeId(0), 0),
            dst: Addr::new(SimNodeId(1), 0),
            payload: Bytes::from(vec![0u8; n]),
        }
    }

    #[test]
    fn queue_tail_drops() {
        let cfg = LinkConfig::new(1e6, SimDuration::from_millis(1)).with_queue_bytes(3000);
        let mut link = LinkState::new(0, 1, cfg, 1);
        assert!(link.enqueue(dgram(1400))); // 1428 wire
        assert!(link.enqueue(dgram(1400))); // 2856 wire
        assert!(!link.enqueue(dgram(1400))); // would exceed 3000
        assert_eq!(link.stats.enqueued, 2);
        assert_eq!(link.stats.dropped_queue, 1);
    }

    #[test]
    fn tx_time_scales_with_rate() {
        let cfg = LinkConfig::new(8e6, SimDuration::ZERO); // 1 MB/s
        let link = LinkState::new(0, 1, cfg, 1);
        let t = link.tx_time(1000, SimTime::ZERO);
        assert_eq!(t.as_millis_f64(), 1.0);
    }

    #[test]
    fn tx_time_follows_trace() {
        let mut trace = BandwidthTrace::constant(8e6);
        trace.add_step(SimTime::from_secs(10), 4e6);
        let cfg = LinkConfig::new(8e6, SimDuration::ZERO).with_trace(trace);
        let link = LinkState::new(0, 1, cfg, 1);
        assert_eq!(link.tx_time(1000, SimTime::ZERO).as_millis_f64(), 1.0);
        assert_eq!(
            link.tx_time(1000, SimTime::from_secs(11)).as_millis_f64(),
            2.0
        );
    }
}
