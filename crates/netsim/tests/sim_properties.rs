//! Property-based tests for the simulator's conservation invariants.

use bytes::Bytes;
use ncvnf_netsim::sink::CountingSink;
use ncvnf_netsim::{
    Addr, Context, Datagram, LinkConfig, LossModel, NodeBehavior, SimDuration, SimNodeId, SimTime,
    Simulator,
};
use proptest::prelude::*;

/// Sends `count` fixed-size packets paced at `gap_us` microseconds.
struct PacedSource {
    peer: Addr,
    count: u64,
    size: usize,
    gap_us: u64,
}

impl NodeBehavior for PacedSource {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(SimDuration::ZERO, 0);
    }
    fn on_datagram(&mut self, _ctx: &mut Context<'_>, _d: Datagram) {}
    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
        if self.count == 0 {
            return;
        }
        self.count -= 1;
        ctx.send(self.peer, 1, Bytes::from(vec![0u8; self.size]));
        ctx.set_timer(SimDuration::from_micros(self.gap_us), 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every packet offered to a link is accounted for exactly once:
    /// delivered, queue-dropped, or loss-dropped.
    #[test]
    fn link_conserves_packets(
        count in 1u64..400,
        size in 1usize..1400,
        gap_us in 1u64..2000,
        loss_pct in 0u32..60,
        queue_kb in 1usize..64,
        seed in any::<u64>(),
    ) {
        let mut sim = Simulator::new(seed);
        let src = sim.add_node(
            "src",
            PacedSource {
                peer: Addr::new(SimNodeId(1), 1),
                count,
                size,
                gap_us,
            },
        );
        let dst = sim.add_node("dst", CountingSink::counting_only());
        let link = sim.add_link(
            src,
            dst,
            LinkConfig::new(5e6, SimDuration::from_millis(2))
                .with_queue_bytes(queue_kb * 1024)
                .with_loss(LossModel::uniform(loss_pct as f64 / 100.0)),
        );
        sim.run_until(SimTime::from_secs(600));
        let st = sim.link_stats(link);
        // Conservation: enqueued + queue drops == offered.
        prop_assert_eq!(st.enqueued + st.dropped_queue, count);
        // Everything enqueued either delivered or lost on the wire.
        prop_assert_eq!(st.delivered + st.dropped_loss, st.enqueued);
        // The sink saw exactly the delivered packets.
        let sink = sim.node_as::<CountingSink>(dst).unwrap();
        prop_assert_eq!(sink.packets(), st.delivered);
        prop_assert_eq!(sink.bytes(), st.delivered * size as u64);
    }

    /// Same seed, same run — full determinism.
    #[test]
    fn runs_are_deterministic(seed in any::<u64>(), loss_pct in 0u32..50) {
        let run = || {
            let mut sim = Simulator::new(seed);
            let src = sim.add_node(
                "src",
                PacedSource {
                    peer: Addr::new(SimNodeId(1), 1),
                    count: 200,
                    size: 700,
                    gap_us: 300,
                },
            );
            let dst = sim.add_node("dst", CountingSink::counting_only());
            let link = sim.add_link(
                src,
                dst,
                LinkConfig::new(3e6, SimDuration::from_millis(7))
                    .with_loss(LossModel::uniform(loss_pct as f64 / 100.0)),
            );
            sim.run_until(SimTime::from_secs(30));
            sim.link_stats(link)
        };
        prop_assert_eq!(run(), run());
    }

    /// Delivery preserves FIFO order per link and respects the propagation
    /// delay lower bound.
    #[test]
    fn arrivals_are_ordered_and_delayed(
        count in 2u64..100,
        delay_ms in 1u64..200,
        seed in any::<u64>(),
    ) {
        let mut sim = Simulator::new(seed);
        let src = sim.add_node(
            "src",
            PacedSource {
                peer: Addr::new(SimNodeId(1), 1),
                count,
                size: 100,
                gap_us: 500,
            },
        );
        let dst = sim.add_node("dst", CountingSink::new());
        sim.add_link(
            src,
            dst,
            LinkConfig::new(10e6, SimDuration::from_millis(delay_ms)),
        );
        sim.run_until(SimTime::from_secs(300));
        let sink = sim.node_as::<CountingSink>(dst).unwrap();
        prop_assert_eq!(sink.packets(), count);
        let arrivals = sink.arrivals();
        for w in arrivals.windows(2) {
            prop_assert!(w[0] <= w[1], "out-of-order delivery");
        }
        for &t in arrivals {
            prop_assert!(t.as_nanos() >= delay_ms * 1_000_000);
        }
    }
}
