//! Property tests for the autoscaler decision loop.
//!
//! Three invariants, driven by randomized traffic traces:
//!
//! 1. **Persistence** — a capability dip shorter than τ1 never causes an
//!    adoption (Algorithm 1's hysteresis holds end to end through the
//!    telemetry → controller → actuation pipeline).
//! 2. **Write-ahead** — at the instant any `NC_FORWARD_TAB` leaves the
//!    controller, the WAL already contains the pushed table as the
//!    node's belief; at the instant a poll reports an adoption, the WAL
//!    already contains the matching `ScaleDecision`.
//! 3. **Drain safety** — `NC_VNF_END` is only ever pushed to a node
//!    whose datagram counters did not move across the last poll gap
//!    *and* whose idle clock exceeds the idle τ: scale-to-zero never
//!    winds down a node with in-flight traffic.
//!
//! The link is a scripted [`ControlLink`] that re-opens the WAL on every
//! push and asserts the write-ahead invariants at push time, not after
//! the fact.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};

use proptest::prelude::*;

use ncvnf_control::{
    AutoscaleConfig, Autoscaler, ControlLink, Journal, NodeStatus, RelayTarget, SendError,
    SendReceipt, Signal, VnfRoleWire,
};
use ncvnf_deploy::{
    Planner, ScalingController, ScalingEvent, ScalingParams, SessionSpec, TopologyBuilder, VnfSpec,
};
use ncvnf_rlnc::SessionId;

const IDLE_TAU_SECS: f64 = 5.0;
const TAU1_SECS: f64 = 5.0;

fn addr(port: u16) -> SocketAddr {
    format!("127.0.0.1:{port}").parse().unwrap()
}

fn temp_wal(tag: &str, case: u64) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "ncvnf-autoscale-prop-{tag}-{case}-{}.wal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

/// A scripted link that checks the write-ahead invariants *at push
/// time* by replaying the WAL, and records everything it served so
/// drain safety can be checked against the stats history.
struct VerifyingLink {
    epoch: u64,
    seqs: HashMap<SocketAddr, u64>,
    wal: PathBuf,
    node_of: HashMap<SocketAddr, u32>,
    /// Stats history served per address: (datagrams_out, idle_ms).
    served: HashMap<SocketAddr, Vec<(u64, u64)>>,
    stats: HashMap<SocketAddr, String>,
    pushes: Vec<Signal>,
}

impl VerifyingLink {
    fn new(epoch: u64, wal: PathBuf, node_of: HashMap<SocketAddr, u32>) -> Self {
        VerifyingLink {
            epoch,
            seqs: HashMap::new(),
            wal,
            node_of,
            served: HashMap::new(),
            stats: HashMap::new(),
            pushes: Vec::new(),
        }
    }

    fn set_stats(&mut self, to: SocketAddr, out: u64, idle_ms: u64) {
        self.stats.insert(
            to,
            format!(
                r#"{{"counters":{{"relay.datagrams_out":{out}}},"gauges":{{"relay.idle_ms":{idle_ms},"relay.daemon_state":1}}}}"#
            ),
        );
    }

    fn replayed(&self) -> ncvnf_control::ControllerState {
        let (_, state, _) = Journal::open(&self.wal).expect("wal replays");
        state
    }
}

impl ControlLink for VerifyingLink {
    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn next_seq(&self, to: SocketAddr) -> u64 {
        self.seqs.get(&to).copied().unwrap_or(0) + 1
    }

    fn push(&mut self, to: SocketAddr, signal: &Signal) -> Result<SendReceipt, SendError> {
        let node = *self.node_of.get(&to).expect("push to a known target");
        let state = self.replayed();
        match signal {
            Signal::NcForwardTab { table } => {
                // Write-ahead: the WAL's belief for this node must
                // already equal the table being pushed (full-table
                // pushes merge to exactly the last delta).
                let belief = state
                    .nodes
                    .get(&node)
                    .unwrap_or_else(|| panic!("node {node} journaled before any push"));
                assert_eq!(
                    belief.table.to_text(),
                    *table,
                    "table push to node {node} not journaled write-ahead"
                );
            }
            Signal::NcVnfEnd { .. } => {
                // Write-ahead + drain safety.
                let belief = state
                    .nodes
                    .get(&node)
                    .unwrap_or_else(|| panic!("node {node} journaled before drain"));
                assert!(
                    matches!(belief.status, NodeStatus::Draining { .. }),
                    "drain of node {node} not journaled write-ahead"
                );
                let history = self.served.get(&to).map(Vec::as_slice).unwrap_or(&[]);
                assert!(
                    history.len() >= 2,
                    "node {node} drained before two observations existed"
                );
                let (last_out, last_idle) = history[history.len() - 1];
                let (prev_out, _) = history[history.len() - 2];
                assert_eq!(
                    last_out, prev_out,
                    "node {node} drained while its counters were moving"
                );
                assert!(
                    last_idle as f64 >= IDLE_TAU_SECS * 1000.0,
                    "node {node} drained at idle {last_idle} ms < τ"
                );
            }
            _ => {}
        }
        self.pushes.push(signal.clone());
        let seq = self.seqs.entry(to).or_insert(0);
        *seq += 1;
        Ok(SendReceipt {
            seq: *seq,
            attempts: 1,
            rtt: std::time::Duration::from_micros(10),
        })
    }

    fn query_stats(&mut self, to: SocketAddr) -> Result<String, SendError> {
        let json = self
            .stats
            .get(&to)
            .cloned()
            .ok_or(SendError::Timeout { attempts: 1 })?;
        let out = ncvnf_control::reconcile::snapshot_value(&json, "relay.datagrams_out")
            .unwrap_or(0.0) as u64;
        let idle =
            ncvnf_control::reconcile::snapshot_value(&json, "relay.idle_ms").unwrap_or(0.0) as u64;
        self.served.entry(to).or_default().push((out, idle));
        Ok(json)
    }
}

/// src → dcA (recoder) → dcB (decoder) → rx with τ1 = 5 s hysteresis.
fn harness(wal: &Path) -> (Autoscaler, VerifyingLink) {
    let mut b = TopologyBuilder::new();
    let spec = VnfSpec {
        bin_bps: 920e6,
        bout_bps: 920e6,
        coding_bps: 1000e6,
    };
    let dc_a = b.data_center("dc-a", spec);
    let dc_b = b.data_center("dc-b", spec);
    let s = b.source("src", 400e6);
    let r = b.receiver("rx", 400e6);
    b.link(s, dc_a, 5.0)
        .link(dc_a, dc_b, 5.0)
        .link(dc_b, r, 5.0);
    let params = ScalingParams {
        alpha: 20e6,
        rho1: 0.05,
        tau1_secs: TAU1_SECS,
        rho2: 0.05,
        tau2_secs: TAU1_SECS,
        pool_tau_secs: 600.0,
        launch_latency_secs: 0.0,
    };
    let mut controller = ScalingController::new(b.build(), Planner::new(), params);
    controller
        .handle(
            ScalingEvent::SessionJoin(SessionSpec::elastic(SessionId::new(5), s, vec![r], 200.0)),
            0.0,
        )
        .unwrap();
    let (journal, _, _) = Journal::open(wal).unwrap();
    let settings = |role| {
        vec![Signal::NcSettings {
            session: SessionId::new(5),
            role,
            data_port: 7000,
            block_size: 1024,
            generation_size: 4,
            buffer_generations: 64,
        }]
    };
    let targets = vec![
        RelayTarget {
            node: 1,
            dc: dc_a,
            control_addr: addr(7101),
            role: VnfRoleWire::Recoder,
            settings: settings(VnfRoleWire::Recoder),
        },
        RelayTarget {
            node: 2,
            dc: dc_b,
            control_addr: addr(7102),
            role: VnfRoleWire::Decoder,
            settings: settings(VnfRoleWire::Decoder),
        },
    ];
    let mut node_of = HashMap::new();
    node_of.insert(addr(7101), 1u32);
    node_of.insert(addr(7102), 2u32);
    let mut data_addrs = HashMap::new();
    data_addrs.insert(dc_a, "127.0.0.1:7201".to_owned());
    data_addrs.insert(dc_b, "127.0.0.1:7202".to_owned());
    data_addrs.insert(r, "127.0.0.1:7203".to_owned());
    let config = AutoscaleConfig {
        min_rel_change: 0.02,
        telemetry_window: 1,
        idle_tau_secs: IDLE_TAU_SECS,
        drain_tau_secs: 60,
    };
    let auto = Autoscaler::new(controller, journal, targets, data_addrs, config);
    let link = VerifyingLink::new(1, wal.to_path_buf(), node_of);
    (auto, link)
}

const BASE_STEP: u64 = 10_000;

/// Drives `polls` one-second polls; per poll the closure gives each
/// target's counter step and idle gauge. Returns whether any poll
/// adopted, verifying decision durability at every adopting poll.
fn drive(
    auto: &mut Autoscaler,
    link: &mut VerifyingLink,
    polls: usize,
    mut step_of: impl FnMut(usize) -> (u64, u64),
) -> bool {
    let mut adopted = false;
    let mut out = 0u64;
    for i in 0..polls {
        let (step, idle_ms) = step_of(i);
        out += step;
        link.set_stats(addr(7101), out, idle_ms);
        link.set_stats(addr(7102), out, idle_ms);
        let report = auto.poll(link, 1.0 + i as f64).expect("poll runs");
        if report.adopted {
            adopted = true;
            // Decision durability: by the time poll() reports the
            // adoption, the WAL already carries its sequence number.
            assert_eq!(
                link.replayed().scale_decisions,
                auto.decisions(),
                "adoption reported before the decision was durable"
            );
        }
    }
    adopted
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A dip shorter than τ1 — whatever its depth — never adopts.
    #[test]
    fn short_dips_never_adopt(
        dip_frac in 0.2f64..0.8,
        dip_len in 1usize..=4,
        case in 0u64..1_000_000,
    ) {
        let wal = temp_wal("shortdip", case);
        let (mut auto, mut link) = harness(&wal);
        auto.bootstrap(&mut link, 0.0).unwrap();
        let dip_step = (BASE_STEP as f64 * dip_frac) as u64;
        let adopted = drive(&mut auto, &mut link, 16, |i| {
            // 4 polls of baseline, `dip_len` polls of dip, recovery.
            if (4..4 + dip_len).contains(&i) {
                (dip_step, 10)
            } else {
                (BASE_STEP, 10)
            }
        });
        prop_assert!(!adopted, "sub-τ dip was adopted");
        prop_assert_eq!(link.replayed().scale_decisions, 0);
        let _ = std::fs::remove_file(&wal);
    }

    /// A dip persisting well past τ1 always adopts, and the decision is
    /// journaled before the report (checked inside `drive`) with every
    /// table push write-ahead (checked inside the link).
    #[test]
    fn persistent_dips_always_adopt_durably(
        // Deep enough that the shrunken capability binds the session's
        // source-capped demand (400e6 of a 920e6 spec ≈ 0.435): a
        // shallower dip is correctly adopted as belief without changing
        // the deployment, which is not what this property probes.
        dip_frac in 0.2f64..0.40,
        dip_len in 8usize..=12,
        case in 0u64..1_000_000,
    ) {
        let wal = temp_wal("longdip", case);
        let (mut auto, mut link) = harness(&wal);
        auto.bootstrap(&mut link, 0.0).unwrap();
        let dip_step = (BASE_STEP as f64 * dip_frac) as u64;
        let adopted = drive(&mut auto, &mut link, 4 + dip_len, |i| {
            if i < 4 { (BASE_STEP, 10) } else { (dip_step, 10) }
        });
        prop_assert!(adopted, "persistent dip was never adopted");
        prop_assert!(link.replayed().scale_decisions >= 1);
        let _ = std::fs::remove_file(&wal);
    }

    /// Scale-to-zero never drains a node with in-flight traffic: every
    /// `NC_VNF_END` the link ever sees follows a zero counter delta and
    /// an over-τ idle gauge (asserted at push time inside the link),
    /// regardless of the idle/traffic pattern driven here.
    #[test]
    fn drains_only_fire_on_genuinely_idle_nodes(
        trace in proptest::collection::vec(
            (any::<bool>(), 0u64..20_000),
            6..18,
        ),
        case in 0u64..1_000_000,
    ) {
        let wal = temp_wal("drain", case);
        let (mut auto, mut link) = harness(&wal);
        auto.bootstrap(&mut link, 0.0).unwrap();
        let steps: Vec<(u64, u64)> = trace
            .iter()
            .map(|&(moving, idle)| {
                if moving {
                    // Traffic flowed this second; the relay's idle clock
                    // would read near zero.
                    (BASE_STEP, 5)
                } else {
                    (0, idle)
                }
            })
            .collect();
        drive(&mut auto, &mut link, steps.len(), |i| steps[i]);
        // The invariant lives in VerifyingLink::push; reaching here
        // without a panic means every drain (if any) was legitimate.
        // Cross-check the WAL agrees with the autoscaler's own view.
        let state = link.replayed();
        for node in auto.draining() {
            prop_assert!(matches!(
                state.nodes.get(&node).map(|b| &b.status),
                Some(NodeStatus::Draining { .. })
            ));
        }
        let _ = std::fs::remove_file(&wal);
    }
}
