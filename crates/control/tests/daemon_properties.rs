//! Property-based tests for the daemon state machine under hostile
//! signal orderings.
//!
//! Epoch fencing (DESIGN.md §13) deduplicates and orders signals on the
//! relay control loop, but the `Daemon` state machine itself must also
//! survive whatever slips through — controller restarts replay journals,
//! retried pushes arrive twice, and a reconciler may re-send settings a
//! node already has. These tests drive random signal sequences through a
//! `Daemon` and assert the invariants that hold regardless of order.

use ncvnf_control::signal::{Signal, VnfRoleWire};
use ncvnf_control::{Daemon, DaemonEvent, DaemonState};
use ncvnf_rlnc::SessionId;
use proptest::prelude::*;

fn arb_role() -> impl Strategy<Value = VnfRoleWire> {
    prop_oneof![
        Just(VnfRoleWire::Encoder),
        Just(VnfRoleWire::Decoder),
        Just(VnfRoleWire::Forwarder),
        Just(VnfRoleWire::Recoder),
    ]
}

/// Daemon-facing signals, weighted toward the interesting transitions.
/// Tables are sometimes valid, sometimes garbage; sessions collide on a
/// tiny id space so duplicates and re-configures are common.
fn arb_signal() -> impl Strategy<Value = Signal> {
    prop_oneof![
        (0u16..4).prop_map(|s| Signal::NcStart {
            session: SessionId::new(s)
        }),
        (0u16..4, arb_role(), 1u32..4096).prop_map(|(s, role, buf)| Signal::NcSettings {
            session: SessionId::new(s),
            role,
            data_port: 4000,
            block_size: 1460,
            generation_size: 4,
            buffer_generations: buf,
        }),
        (1u32..600).prop_map(|tau_secs| Signal::NcVnfEnd { tau_secs }),
        prop_oneof![
            (0u16..4, "[a-z]{1,6}").prop_map(|(s, hop)| Signal::NcForwardTab {
                table: format!("session {s} {hop}:1\n"),
            }),
            "[^s][a-z ]{0,20}".prop_map(|junk| Signal::NcForwardTab { table: junk }),
        ],
        Just(Signal::NcStats),
        ("[a-z]{1,8}", 1u32..8).prop_map(|(dc, count)| Signal::NcVnfStart {
            data_center: dc,
            count,
        }),
    ]
}

proptest! {
    /// Any signal sequence leaves the daemon in a coherent state: no
    /// panics, `Paused` never outlives a `handle` call, the signal
    /// counter is exact, and a shutdown deadline exists iff draining.
    #[test]
    fn random_sequences_never_panic_or_wedge(
        sigs in prop::collection::vec(arb_signal(), 0..64),
    ) {
        let mut d = Daemon::new();
        for (i, sig) in sigs.iter().enumerate() {
            let events = d.handle(sig, i as f64);
            // Paused is transient inside NcForwardTab handling; between
            // signals the daemon is always resumed (or
            // idle/draining/stopped).
            prop_assert_ne!(d.state(), DaemonState::Paused);
            // A successful swap always brackets the table change with
            // pause/resume, so the host's SIGUSR1 dance stays balanced.
            let pauses = events.iter().filter(|e| **e == DaemonEvent::Paused).count();
            let resumes = events.iter().filter(|e| **e == DaemonEvent::Resumed).count();
            prop_assert_eq!(pauses, resumes);
            // The shutdown deadline tracks exactly the Draining state.
            prop_assert_eq!(d.shutdown_at().is_some(), d.state() == DaemonState::Draining);
        }
        prop_assert_eq!(d.signals_handled(), sigs.len() as u64);
    }

    /// `Stopped` absorbs: once a drain deadline passes, every further
    /// signal is a silent no-op — no events, no state change, no table
    /// mutation.
    #[test]
    fn stopped_absorbs_every_signal(sigs in prop::collection::vec(arb_signal(), 1..32)) {
        let mut d = Daemon::new();
        d.handle(&Signal::NcVnfEnd { tau_secs: 1 }, 0.0);
        prop_assert!(d.tick(2.0));
        prop_assert_eq!(d.state(), DaemonState::Stopped);
        let table_before = d.table().to_text();
        for (i, sig) in sigs.iter().enumerate() {
            let events = d.handle(sig, 10.0 + i as f64);
            prop_assert!(events.is_empty(), "stopped daemon emitted {:?}", events);
            prop_assert_eq!(d.state(), DaemonState::Stopped);
        }
        prop_assert_eq!(d.table().to_text(), table_before);
        prop_assert!(!d.tick(1e9));
    }

    /// `Draining` is sticky against everything except fresh settings
    /// (VNF reuse) and the deadline itself: table pushes and duplicate
    /// `NC_VNF_END`s keep the daemon draining.
    #[test]
    fn draining_only_exits_via_settings_or_deadline(
        sigs in prop::collection::vec(arb_signal(), 0..32),
    ) {
        let mut d = Daemon::new();
        d.handle(
            &Signal::NcSettings {
                session: SessionId::new(1),
                role: VnfRoleWire::Forwarder,
                data_port: 4000,
                block_size: 1460,
                generation_size: 4,
                buffer_generations: 64,
            },
            0.0,
        );
        d.handle(&Signal::NcVnfEnd { tau_secs: 600 }, 1.0);
        prop_assert_eq!(d.state(), DaemonState::Draining);
        let mut reused = false;
        for (i, sig) in sigs.iter().enumerate() {
            d.handle(sig, 2.0 + i as f64);
            match sig {
                Signal::NcSettings { .. } => reused = true,
                Signal::NcVnfEnd { .. } => reused = false,
                _ => {}
            }
            let expected = if reused {
                DaemonState::Running
            } else {
                DaemonState::Draining
            };
            prop_assert_eq!(d.state(), expected);
        }
    }

    /// Re-sending identical `NC_SETTINGS` (a reconciler retry, or a
    /// duplicate that slipped past fencing) is idempotent: the daemon
    /// stays `Running` and re-emits the same configure event each time.
    #[test]
    fn duplicate_settings_keep_running(n in 1usize..8) {
        let sig = Signal::NcSettings {
            session: SessionId::new(3),
            role: VnfRoleWire::Recoder,
            data_port: 4001,
            block_size: 1460,
            generation_size: 8,
            buffer_generations: 128,
        };
        let mut d = Daemon::new();
        let first = d.handle(&sig, 0.0);
        for i in 0..n {
            let again = d.handle(&sig, 1.0 + i as f64);
            prop_assert_eq!(&again, &first);
            prop_assert_eq!(d.state(), DaemonState::Running);
            prop_assert_eq!(d.role(SessionId::new(3)), Some(VnfRoleWire::Recoder));
        }
    }

    /// `NC_FORWARD_TAB` before any settings is legal: the daemon adopts
    /// the table and runs, ready for settings to arrive late (the
    /// controller may push topology before per-session configs).
    #[test]
    fn forward_tab_before_settings_is_safe(s in 0u16..8, hop in "[a-z]{1,6}") {
        let mut d = Daemon::new();
        let ev = d.handle(
            &Signal::NcForwardTab {
                table: format!("session {s} {hop}:9\n"),
            },
            0.0,
        );
        prop_assert_eq!(
            ev,
            vec![
                DaemonEvent::Paused,
                DaemonEvent::TableSwapped { changed: 1 },
                DaemonEvent::Resumed,
            ]
        );
        prop_assert_eq!(d.state(), DaemonState::Running);
        let hops = d.table().next_hops(SessionId::new(s)).unwrap().to_vec();
        prop_assert_eq!(hops, vec![format!("{hop}:9")]);
    }
}
