//! Property-based tests for the control-plane wire formats.

use ncvnf_control::signal::{FencedSignal, Signal, SignalFrame, VnfRoleWire};
use ncvnf_control::ForwardingTable;
use ncvnf_rlnc::SessionId;
use proptest::prelude::*;

fn arb_role() -> impl Strategy<Value = VnfRoleWire> {
    prop_oneof![
        Just(VnfRoleWire::Encoder),
        Just(VnfRoleWire::Decoder),
        Just(VnfRoleWire::Forwarder),
        Just(VnfRoleWire::Recoder),
    ]
}

/// A pre-`Recoder` controller encodes recoding relays as `Encoder`; the
/// byte it puts on the wire must keep decoding to `Encoder` so receivers
/// can apply the legacy mapping themselves.
#[test]
fn legacy_encoder_settings_decode_unchanged() {
    let sig = Signal::NcSettings {
        session: SessionId::new(11),
        role: VnfRoleWire::Encoder,
        data_port: 4000,
        block_size: 1460,
        generation_size: 4,
        buffer_generations: 1024,
    };
    let wire = sig.to_bytes();
    assert_eq!(wire[5 + 2], 1, "Encoder keeps wire byte 1");
    let (back, _) = Signal::from_bytes(&wire).unwrap();
    assert!(matches!(
        back,
        Signal::NcSettings {
            role: VnfRoleWire::Encoder,
            ..
        }
    ));
}

/// The explicit `Recoder` role survives the wire and is distinct from the
/// legacy `Encoder` byte.
#[test]
fn recoder_settings_roundtrip_distinct_from_encoder() {
    let sig = Signal::NcSettings {
        session: SessionId::new(12),
        role: VnfRoleWire::Recoder,
        data_port: 4000,
        block_size: 1460,
        generation_size: 4,
        buffer_generations: 1024,
    };
    let wire = sig.to_bytes();
    assert_eq!(wire[5 + 2], 4, "Recoder uses the fresh wire byte 4");
    let (back, _) = Signal::from_bytes(&wire).unwrap();
    assert!(matches!(
        back,
        Signal::NcSettings {
            role: VnfRoleWire::Recoder,
            ..
        }
    ));
}

fn arb_signal() -> impl Strategy<Value = Signal> {
    prop_oneof![
        any::<u16>().prop_map(|s| Signal::NcStart {
            session: SessionId::new(s)
        }),
        ("[a-z0-9-]{1,32}", any::<u32>()).prop_map(|(dc, count)| Signal::NcVnfStart {
            data_center: dc,
            count,
        }),
        any::<u32>().prop_map(|tau_secs| Signal::NcVnfEnd { tau_secs }),
        prop::collection::vec((any::<u16>(), "[a-z0-9.:]{1,24}"), 0..20).prop_map(|entries| {
            let mut t = ForwardingTable::new();
            for (s, hop) in entries {
                t.set(SessionId::new(s), vec![hop]);
            }
            Signal::NcForwardTab { table: t.to_text() }
        }),
        (
            any::<u16>(),
            arb_role(),
            any::<u16>(),
            1u32..9000,
            1u32..64,
            1u32..4096
        )
            .prop_map(|(s, role, port, bs, gs, buf)| Signal::NcSettings {
                session: SessionId::new(s),
                role,
                data_port: port,
                block_size: bs,
                generation_size: gs,
                buffer_generations: buf,
            }),
    ]
}

fn arb_fenced() -> impl Strategy<Value = FencedSignal> {
    (any::<u64>(), any::<u64>(), arb_signal()).prop_map(|(epoch, seq, signal)| FencedSignal {
        epoch,
        seq,
        signal,
    })
}

/// Either wire shape a control socket may legitimately receive.
fn arb_frame_bytes() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        arb_signal().prop_map(|s| s.to_bytes().to_vec()),
        arb_fenced().prop_map(|f| f.to_bytes().to_vec()),
    ]
}

proptest! {
    /// Every signal round-trips through the wire codec.
    #[test]
    fn signal_wire_roundtrip(sig in arb_signal()) {
        let wire = sig.to_bytes();
        let (back, used) = Signal::from_bytes(&wire).unwrap();
        prop_assert_eq!(&back, &sig);
        prop_assert_eq!(used, wire.len());
    }

    /// Concatenated frames decode one by one without desync.
    #[test]
    fn signal_streams_decode(sigs in prop::collection::vec(arb_signal(), 1..8)) {
        let mut stream = Vec::new();
        for s in &sigs {
            stream.extend_from_slice(&s.to_bytes());
        }
        let mut off = 0;
        let mut decoded = Vec::new();
        while off < stream.len() {
            let (s, used) = Signal::from_bytes(&stream[off..]).unwrap();
            decoded.push(s);
            off += used;
        }
        prop_assert_eq!(decoded, sigs);
    }

    /// Truncating any frame is always detected, never mis-parsed.
    #[test]
    fn truncation_always_detected(sig in arb_signal(), cut_frac in 0.0f64..1.0) {
        let wire = sig.to_bytes();
        let cut = ((wire.len() as f64) * cut_frac) as usize;
        if cut < wire.len() {
            prop_assert!(Signal::from_bytes(&wire[..cut]).is_err());
        }
    }

    /// Forwarding tables round-trip through the text format.
    #[test]
    fn table_text_roundtrip(
        entries in prop::collection::vec((any::<u16>(), prop::collection::vec("[a-z0-9.:]{1,20}", 1..4)), 0..30)
    ) {
        let mut t = ForwardingTable::new();
        for (s, hops) in entries {
            t.set(SessionId::new(s), hops);
        }
        let parsed = ForwardingTable::parse(&t.to_text()).unwrap();
        prop_assert_eq!(parsed, t);
    }

    /// merge() changes exactly the entries that differ, and after a merge
    /// the merged entries are present verbatim.
    #[test]
    fn merge_counts_and_applies(
        base in prop::collection::vec((0u16..32, "[a-z]{1,8}"), 0..16),
        delta in prop::collection::vec((0u16..32, "[a-z]{1,8}"), 0..16),
    ) {
        let mut t = ForwardingTable::new();
        for (s, h) in &base {
            t.set(SessionId::new(*s), vec![h.clone()]);
        }
        let mut d = ForwardingTable::new();
        for (s, h) in &delta {
            d.set(SessionId::new(*s), vec![h.clone()]);
        }
        let expected_changes = d
            .iter()
            .filter(|(s, hops)| t.next_hops(*s) != Some(*hops))
            .count();
        let changed = t.merge(&d);
        prop_assert_eq!(changed, expected_changes);
        for (s, hops) in d.iter() {
            prop_assert_eq!(t.next_hops(s), Some(hops));
        }
    }

    /// Epoch-fenced frames round-trip, preserving fencing metadata and
    /// the inner signal.
    #[test]
    fn fenced_wire_roundtrip(fenced in arb_fenced()) {
        let wire = fenced.to_bytes();
        let (back, used) = FencedSignal::from_bytes(&wire).unwrap();
        prop_assert_eq!(&back, &fenced);
        prop_assert_eq!(used, wire.len());
    }

    /// `SignalFrame::from_bytes` dispatches both generations correctly:
    /// a legacy frame decodes as `Legacy`, a fenced one as `Fenced`.
    #[test]
    fn frame_dispatch_never_confuses_generations(sig in arb_signal(), epoch in any::<u64>(), seq in any::<u64>()) {
        let legacy_wire = sig.to_bytes();
        match SignalFrame::from_bytes(&legacy_wire).unwrap() {
            (SignalFrame::Legacy(back), used) => {
                prop_assert_eq!(back, sig.clone());
                prop_assert_eq!(used, legacy_wire.len());
            }
            (SignalFrame::Fenced(_), _) => prop_assert!(false, "legacy decoded as fenced"),
        }
        let fenced = FencedSignal { epoch, seq, signal: sig.clone() };
        let fenced_wire = fenced.to_bytes();
        match SignalFrame::from_bytes(&fenced_wire).unwrap() {
            (SignalFrame::Fenced(back), used) => {
                prop_assert_eq!(back, fenced);
                prop_assert_eq!(used, fenced_wire.len());
            }
            (SignalFrame::Legacy(_), _) => prop_assert!(false, "fenced decoded as legacy"),
        }
    }

    /// Truncating either frame generation at any point is detected —
    /// an `Err`, never a panic, never a mis-parse.
    #[test]
    fn frame_truncation_always_detected(wire in arb_frame_bytes(), cut_frac in 0.0f64..1.0) {
        let cut = ((wire.len() as f64) * cut_frac) as usize;
        if cut < wire.len() {
            prop_assert!(SignalFrame::from_bytes(&wire[..cut]).is_err());
        }
    }

    /// Arbitrary byte flips anywhere in a frame must never panic the
    /// decoder, and whatever (if anything) decodes must not claim more
    /// bytes than the buffer holds.
    #[test]
    fn frame_corruption_never_panics(
        wire in arb_frame_bytes(),
        flips in prop::collection::vec((any::<u16>(), 1u8..=255), 1..8),
    ) {
        let mut corrupt = wire;
        for (pos, xor) in flips {
            let at = pos as usize % corrupt.len();
            corrupt[at] ^= xor;
        }
        if let Ok((_, used)) = SignalFrame::from_bytes(&corrupt) {
            prop_assert!(used <= corrupt.len());
        }
    }

    /// Pure junk — random bytes that were never a frame — is rejected
    /// or bounded, never a panic.
    #[test]
    fn random_junk_never_panics(junk in prop::collection::vec(any::<u8>(), 0..512)) {
        if let Ok((_, used)) = SignalFrame::from_bytes(&junk) {
            prop_assert!(used <= junk.len());
        }
    }
}
