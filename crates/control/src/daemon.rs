//! The per-VNF daemon state machine.
//!
//! "A daemon program runs on each network coding node ... In each new
//! coding node, daemons start along with initial settings ... After a
//! daemon receives the new forwarding table file, it sends `SIGUSR1` ...
//! to temporarily pause its coding function, inform the coding function of
//! the new forwarding table, and then resume" (Sec. III-A).
//!
//! This state machine is transport-agnostic: it consumes [`Signal`]s and
//! emits [`DaemonEvent`]s that the hosting process (simulated node or real
//! UDP relay) acts on.
//!
//! Ordering and duplicate suppression are the transport's job — the relay
//! control loop fences frames by controller epoch and sequence number
//! (DESIGN.md §13) — but the daemon is still written to absorb whatever
//! slips through: duplicate `NC_SETTINGS` are idempotent, `Draining`
//! survives table pushes, and `Stopped` ignores everything. The
//! `daemon_properties` integration test drives random signal orderings
//! against these invariants.

use std::collections::HashMap;

use ncvnf_rlnc::SessionId;

use crate::fwdtab::ForwardingTable;
use crate::signal::{Signal, VnfRoleWire};

/// Lifecycle state of the daemon's coding function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DaemonState {
    /// No settings received yet; packets are dropped.
    Idle,
    /// Coding function configured and processing packets.
    Running,
    /// Coding function paused for a forwarding-table swap.
    Paused,
    /// `NC_VNF_END` received; still alive until the deadline for reuse.
    Draining,
    /// Shut down.
    Stopped,
}

/// Side effects the hosting process must perform.
#[derive(Debug, Clone, PartialEq)]
pub enum DaemonEvent {
    /// (Re)configure the coding function for a session.
    ConfigureSession {
        /// Session id.
        session: SessionId,
        /// Role for that session.
        role: VnfRoleWire,
        /// Data port to bind.
        data_port: u16,
        /// Block size in bytes.
        block_size: u32,
        /// Blocks per generation.
        generation_size: u32,
        /// Buffer capacity in generations.
        buffer_generations: u32,
    },
    /// Begin coded transmission for a session.
    StartSession {
        /// Session id.
        session: SessionId,
    },
    /// The coding function paused (table swap in progress).
    Paused,
    /// The forwarding table was replaced; `changed` entries differ.
    TableSwapped {
        /// Entries that changed relative to the previous table.
        changed: usize,
    },
    /// The coding function resumed after a swap.
    Resumed,
    /// Shut down the VM at `deadline_secs` (daemon-local clock).
    ScheduleShutdown {
        /// Absolute daemon-clock time of the shutdown.
        deadline_secs: f64,
    },
    /// Provision a session's admission quota in the data path (fan the
    /// budget out to every shard's admission table).
    ProvisionQuota {
        /// Session the quota applies to (0 = the default bucket for
        /// unprovisioned sessions).
        session: SessionId,
        /// Token-bucket refill rate, packets per second (0 = block).
        rate_pps: u32,
        /// Bucket depth in packets.
        burst: u32,
        /// Shedding/eviction priority (0 = most important).
        priority: u8,
    },
}

/// The daemon: owns the live forwarding table and session settings.
#[derive(Debug)]
pub struct Daemon {
    state: DaemonState,
    table: ForwardingTable,
    settings: HashMap<SessionId, (VnfRoleWire, u16)>,
    shutdown_at: Option<f64>,
    signals_handled: u64,
}

impl Default for Daemon {
    fn default() -> Self {
        Self::new()
    }
}

impl Daemon {
    /// A fresh daemon in the [`DaemonState::Idle`] state.
    pub fn new() -> Self {
        Daemon {
            state: DaemonState::Idle,
            table: ForwardingTable::new(),
            settings: HashMap::new(),
            shutdown_at: None,
            signals_handled: 0,
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> DaemonState {
        self.state
    }

    /// The live forwarding table.
    pub fn table(&self) -> &ForwardingTable {
        &self.table
    }

    /// Configured role for a session, if any.
    pub fn role(&self, session: SessionId) -> Option<VnfRoleWire> {
        self.settings.get(&session).map(|&(r, _)| r)
    }

    /// Signals processed so far.
    pub fn signals_handled(&self) -> u64 {
        self.signals_handled
    }

    /// Pending shutdown deadline (daemon clock), if draining.
    pub fn shutdown_at(&self) -> Option<f64> {
        self.shutdown_at
    }

    /// Processes one control signal at daemon-clock time `now` and returns
    /// the side effects in order.
    pub fn handle(&mut self, signal: &Signal, now: f64) -> Vec<DaemonEvent> {
        self.signals_handled += 1;
        if self.state == DaemonState::Stopped {
            return Vec::new();
        }
        match signal {
            Signal::NcSettings {
                session,
                role,
                data_port,
                block_size,
                generation_size,
                buffer_generations,
            } => {
                self.settings.insert(*session, (*role, *data_port));
                // New work cancels a pending drain (VNF reuse).
                if self.state == DaemonState::Draining {
                    self.shutdown_at = None;
                }
                if self.state != DaemonState::Paused {
                    self.state = DaemonState::Running;
                }
                vec![DaemonEvent::ConfigureSession {
                    session: *session,
                    role: *role,
                    data_port: *data_port,
                    block_size: *block_size,
                    generation_size: *generation_size,
                    buffer_generations: *buffer_generations,
                }]
            }
            Signal::NcStart { session } => {
                vec![DaemonEvent::StartSession { session: *session }]
            }
            Signal::NcForwardTab { table } => match ForwardingTable::parse(table) {
                Ok(new_table) => {
                    // Pause → merge the delta → resume, the SIGUSR1
                    // sequence. Updates are deltas: only the changed
                    // entries are shipped (Table III's "update
                    // percentage").
                    let was = self.state;
                    self.state = DaemonState::Paused;
                    let changed = self.table.merge(&new_table);
                    self.state = if was == DaemonState::Draining {
                        DaemonState::Draining
                    } else {
                        DaemonState::Running
                    };
                    vec![
                        DaemonEvent::Paused,
                        DaemonEvent::TableSwapped { changed },
                        DaemonEvent::Resumed,
                    ]
                }
                Err(_) => Vec::new(),
            },
            Signal::NcVnfEnd { tau_secs } => {
                self.state = DaemonState::Draining;
                let deadline = now + *tau_secs as f64;
                self.shutdown_at = Some(deadline);
                vec![DaemonEvent::ScheduleShutdown {
                    deadline_secs: deadline,
                }]
            }
            // NC_VNF_START is controller-to-cloud-API, not daemon-facing.
            Signal::NcVnfStart { .. } => Vec::new(),
            // NC_STATS is a read-only query; the transport layer builds
            // the snapshot reply, the daemon state machine is untouched.
            Signal::NcStats => Vec::new(),
            // Quotas do not change the lifecycle state: a draining or
            // idle daemon can still be (re)provisioned, and the hosting
            // process applies the budget to its data path.
            Signal::NcQuota {
                session,
                rate_pps,
                burst,
                priority,
            } => vec![DaemonEvent::ProvisionQuota {
                session: *session,
                rate_pps: *rate_pps,
                burst: *burst,
                priority: *priority,
            }],
        }
    }

    /// Advances the daemon clock; returns true if the daemon shut down.
    pub fn tick(&mut self, now: f64) -> bool {
        if let Some(deadline) = self.shutdown_at {
            if self.state == DaemonState::Draining && now >= deadline {
                self.state = DaemonState::Stopped;
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settings(session: u16) -> Signal {
        Signal::NcSettings {
            session: SessionId::new(session),
            role: VnfRoleWire::Encoder,
            data_port: 4000,
            block_size: 1460,
            generation_size: 4,
            buffer_generations: 1024,
        }
    }

    #[test]
    fn settings_then_start_reaches_running() {
        let mut d = Daemon::new();
        assert_eq!(d.state(), DaemonState::Idle);
        let ev = d.handle(&settings(1), 0.0);
        assert!(matches!(ev[0], DaemonEvent::ConfigureSession { .. }));
        assert_eq!(d.state(), DaemonState::Running);
        assert_eq!(d.role(SessionId::new(1)), Some(VnfRoleWire::Encoder));
        let ev = d.handle(
            &Signal::NcStart {
                session: SessionId::new(1),
            },
            1.0,
        );
        assert_eq!(
            ev,
            vec![DaemonEvent::StartSession {
                session: SessionId::new(1)
            }]
        );
    }

    #[test]
    fn table_swap_pauses_and_resumes() {
        let mut d = Daemon::new();
        d.handle(&settings(1), 0.0);
        let ev = d.handle(
            &Signal::NcForwardTab {
                table: "session 1 a:1 b:2\n".into(),
            },
            1.0,
        );
        assert_eq!(ev[0], DaemonEvent::Paused);
        assert_eq!(ev[1], DaemonEvent::TableSwapped { changed: 1 });
        assert_eq!(ev[2], DaemonEvent::Resumed);
        assert_eq!(d.state(), DaemonState::Running);
        assert_eq!(
            d.table().next_hops(SessionId::new(1)).unwrap(),
            ["a:1", "b:2"]
        );
    }

    #[test]
    fn bad_table_is_ignored() {
        let mut d = Daemon::new();
        d.handle(&settings(1), 0.0);
        let ev = d.handle(
            &Signal::NcForwardTab {
                table: "garbage".into(),
            },
            1.0,
        );
        assert!(ev.is_empty());
        assert!(d.table().is_empty());
    }

    #[test]
    fn vnf_end_drains_then_stops_after_tau() {
        let mut d = Daemon::new();
        d.handle(&settings(1), 0.0);
        let ev = d.handle(&Signal::NcVnfEnd { tau_secs: 600 }, 100.0);
        assert_eq!(
            ev,
            vec![DaemonEvent::ScheduleShutdown {
                deadline_secs: 700.0
            }]
        );
        assert_eq!(d.state(), DaemonState::Draining);
        assert!(!d.tick(500.0));
        assert!(d.tick(700.0));
        assert_eq!(d.state(), DaemonState::Stopped);
        // Stopped daemons ignore everything.
        assert!(d.handle(&settings(2), 701.0).is_empty());
    }

    #[test]
    fn quota_signal_emits_provision_event_without_state_change() {
        let mut d = Daemon::new();
        let ev = d.handle(
            &Signal::NcQuota {
                session: SessionId::new(5),
                rate_pps: 1000,
                burst: 64,
                priority: 1,
            },
            0.0,
        );
        assert_eq!(
            ev,
            vec![DaemonEvent::ProvisionQuota {
                session: SessionId::new(5),
                rate_pps: 1000,
                burst: 64,
                priority: 1,
            }]
        );
        assert_eq!(d.state(), DaemonState::Idle, "quota leaves lifecycle alone");
    }

    #[test]
    fn reuse_cancels_drain() {
        let mut d = Daemon::new();
        d.handle(&settings(1), 0.0);
        d.handle(&Signal::NcVnfEnd { tau_secs: 600 }, 10.0);
        assert_eq!(d.state(), DaemonState::Draining);
        // New settings arrive within τ: the VNF is reused.
        d.handle(&settings(2), 50.0);
        assert_eq!(d.state(), DaemonState::Running);
        assert!(d.shutdown_at().is_none());
        assert!(!d.tick(10_000.0));
    }
}
