//! Routing around a dead coding VNF.
//!
//! When [`crate::liveness::LivenessTracker`] declares a node dead, the
//! controller must excise it from every survivor's forwarding table and
//! push the changes as `NC_FORWARD_TAB` deltas — "updating the
//! forwarding tables, terminating existing coding functions and
//! launching new ones" (Sec. III-A), here triggered by failure instead
//! of load. Tables are *delta-merged* by the daemons (only listed
//! sessions are replaced), so each update contains exactly the sessions
//! whose next hops changed.

use crate::fwdtab::ForwardingTable;
use crate::signal::Signal;

/// Computes the delta that reroutes one node's table around a dead hop:
/// every occurrence of `dead_hop` is replaced by `replacement_hop`
/// (deduplicated if the replacement is already a next hop). Returns only
/// the sessions that changed — `None` when the table never pointed at
/// the dead node.
pub fn reroute_table(
    table: &ForwardingTable,
    dead_hop: &str,
    replacement_hop: &str,
) -> Option<ForwardingTable> {
    let mut delta = ForwardingTable::new();
    for (session, hops) in table.iter() {
        if !hops.iter().any(|h| h == dead_hop) {
            continue;
        }
        let mut patched: Vec<String> = Vec::with_capacity(hops.len());
        for h in hops {
            let target = if h == dead_hop { replacement_hop } else { h };
            if !patched.iter().any(|p| p == target) {
                patched.push(target.to_string());
            }
        }
        delta.set(session, patched);
    }
    (!delta.is_empty()).then_some(delta)
}

/// Applies [`reroute_table`] across a fleet: returns, per node key, the
/// delta table to push. Nodes untouched by the failure are absent.
pub fn plan_failover<K: Clone>(
    tables: &[(K, ForwardingTable)],
    dead_hop: &str,
    replacement_hop: &str,
) -> Vec<(K, ForwardingTable)> {
    tables
        .iter()
        .filter_map(|(key, table)| {
            reroute_table(table, dead_hop, replacement_hop).map(|delta| (key.clone(), delta))
        })
        .collect()
}

/// Renders a failover plan as the `NC_FORWARD_TAB` signals to send.
pub fn failover_signals<K: Clone>(plan: &[(K, ForwardingTable)]) -> Vec<(K, Signal)> {
    plan.iter()
        .map(|(key, delta)| {
            (
                key.clone(),
                Signal::NcForwardTab {
                    table: delta.to_text(),
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncvnf_rlnc::SessionId;

    fn table(entries: &[(u16, &[&str])]) -> ForwardingTable {
        let mut t = ForwardingTable::new();
        for &(s, hops) in entries {
            t.set(
                SessionId::new(s),
                hops.iter().map(|h| h.to_string()).collect(),
            );
        }
        t
    }

    #[test]
    fn dead_hop_is_replaced_only_where_present() {
        let t = table(&[
            (1, &["10.0.0.2:4000", "10.0.0.3:4000"]),
            (2, &["10.0.0.4:4000"]),
        ]);
        let delta = reroute_table(&t, "10.0.0.2:4000", "10.0.0.9:4000").unwrap();
        assert_eq!(delta.len(), 1, "untouched sessions stay out of the delta");
        assert_eq!(
            delta.next_hops(SessionId::new(1)).unwrap(),
            &["10.0.0.9:4000".to_string(), "10.0.0.3:4000".to_string()]
        );
    }

    #[test]
    fn replacement_already_present_deduplicates() {
        let t = table(&[(1, &["10.0.0.2:4000", "10.0.0.9:4000"])]);
        let delta = reroute_table(&t, "10.0.0.2:4000", "10.0.0.9:4000").unwrap();
        assert_eq!(
            delta.next_hops(SessionId::new(1)).unwrap(),
            &["10.0.0.9:4000".to_string()]
        );
    }

    #[test]
    fn clean_tables_produce_no_delta() {
        let t = table(&[(1, &["10.0.0.3:4000"])]);
        assert_eq!(reroute_table(&t, "10.0.0.2:4000", "10.0.0.9:4000"), None);
    }

    #[test]
    fn fleet_plan_covers_only_affected_nodes() {
        let fleet = vec![
            ("r0", table(&[(1, &["10.0.0.2:4000"])])),
            ("r1", table(&[(1, &["10.0.0.5:4000"])])),
        ];
        let plan = plan_failover(&fleet, "10.0.0.2:4000", "10.0.0.9:4000");
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].0, "r0");
        let signals = failover_signals(&plan);
        assert_eq!(signals.len(), 1);
        match &signals[0].1 {
            Signal::NcForwardTab { table } => {
                assert!(table.contains("10.0.0.9:4000"));
                assert!(!table.contains("10.0.0.2:4000"));
            }
            other => panic!("unexpected signal {other:?}"),
        }
    }
}
