//! VNF liveness tracking from heartbeat beacons.
//!
//! The paper's controller learns about node health from periodic probes
//! (Sec. IV-B); this module is the failure-detection half: relays emit
//! heartbeat frames (feedback kind 3, see `ncvnf-dataplane`), and the
//! controller feeds arrival times into a [`LivenessTracker`]. A node
//! that misses beacons long enough is declared *suspect*, then *dead* —
//! at which point the controller replans routes around it (see
//! [`crate::failover`]) and pushes fresh `NC_FORWARD_TAB`s to the
//! survivors.
//!
//! All methods take an explicit `now: Instant`, so tests drive the clock
//! deterministically instead of sleeping.

use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Suspicion thresholds. With a beacon interval `i`, sensible values are
/// `suspect_after ≈ 3i` and `dead_after ≈ 6i`: one lost datagram must
/// not trigger a reroute, but detection latency bounds the failover
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LivenessConfig {
    /// Silence longer than this marks a node suspect.
    pub suspect_after: Duration,
    /// Silence longer than this declares a node dead.
    pub dead_after: Duration,
}

impl Default for LivenessConfig {
    fn default() -> Self {
        LivenessConfig {
            suspect_after: Duration::from_millis(75),
            dead_after: Duration::from_millis(150),
        }
    }
}

/// A tracked node's health, by beacon recency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LivenessState {
    /// Beacons arriving within `suspect_after`.
    Alive,
    /// Silent past `suspect_after` but not yet `dead_after`.
    Suspect,
    /// Silent past `dead_after`; routes should avoid this node.
    Dead,
}

/// State transitions surfaced by [`LivenessTracker::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LivenessEvent {
    /// A node went silent past the suspect threshold.
    Suspected(u32),
    /// A node went silent past the dead threshold (fires once per
    /// outage).
    Died(u32),
    /// A suspect or dead node resumed beaconing.
    Recovered(u32),
}

#[derive(Debug, Clone, Copy)]
struct NodeRecord {
    last_seen: Instant,
    state: LivenessState,
}

/// Heartbeat bookkeeping: last-seen times and the Alive → Suspect → Dead
/// state machine.
#[derive(Debug)]
pub struct LivenessTracker {
    config: LivenessConfig,
    nodes: HashMap<u32, NodeRecord>,
}

impl LivenessTracker {
    /// A tracker with the given thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `dead_after < suspect_after`.
    pub fn new(config: LivenessConfig) -> Self {
        assert!(
            config.dead_after >= config.suspect_after,
            "dead_after must not precede suspect_after"
        );
        LivenessTracker {
            config,
            nodes: HashMap::new(),
        }
    }

    /// The thresholds in effect.
    pub fn config(&self) -> LivenessConfig {
        self.config
    }

    /// Records a heartbeat from `node` at `now`. Returns `Recovered` if
    /// the node was suspect or dead.
    pub fn heartbeat(&mut self, node: u32, now: Instant) -> Option<LivenessEvent> {
        let rec = self.nodes.entry(node).or_insert(NodeRecord {
            last_seen: now,
            state: LivenessState::Alive,
        });
        let was = rec.state;
        rec.last_seen = now;
        rec.state = LivenessState::Alive;
        (was != LivenessState::Alive).then_some(LivenessEvent::Recovered(node))
    }

    /// Re-evaluates every tracked node against `now`; returns the state
    /// transitions since the previous poll (each fires once).
    pub fn poll(&mut self, now: Instant) -> Vec<LivenessEvent> {
        let mut events = Vec::new();
        let mut ids: Vec<u32> = self.nodes.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let rec = self.nodes.get_mut(&id).expect("tracked node");
            let silence = now.saturating_duration_since(rec.last_seen);
            let target = if silence >= self.config.dead_after {
                LivenessState::Dead
            } else if silence >= self.config.suspect_after {
                LivenessState::Suspect
            } else {
                LivenessState::Alive
            };
            if target == rec.state {
                continue;
            }
            // Silence only deepens suspicion; recovery happens in
            // `heartbeat`. (A Dead node cannot poll back to Suspect.)
            match (rec.state, target) {
                (LivenessState::Alive, LivenessState::Suspect) => {
                    rec.state = target;
                    events.push(LivenessEvent::Suspected(id));
                }
                (LivenessState::Alive, LivenessState::Dead) => {
                    rec.state = target;
                    events.push(LivenessEvent::Suspected(id));
                    events.push(LivenessEvent::Died(id));
                }
                (LivenessState::Suspect, LivenessState::Dead) => {
                    rec.state = target;
                    events.push(LivenessEvent::Died(id));
                }
                _ => {}
            }
        }
        events
    }

    /// Current state of a node, if it ever beaconed.
    pub fn state(&self, node: u32) -> Option<LivenessState> {
        self.nodes.get(&node).map(|r| r.state)
    }

    /// Node ids currently declared dead, ascending.
    pub fn dead_nodes(&self) -> Vec<u32> {
        self.nodes_in(LivenessState::Dead)
    }

    /// Node ids currently alive, ascending — the healthy set restart
    /// reconciliation re-adopts.
    pub fn alive_nodes(&self) -> Vec<u32> {
        self.nodes_in(LivenessState::Alive)
    }

    /// Stops tracking a node entirely (e.g. its τ-pool entry expired
    /// while the controller was down, so its silence is expected, not a
    /// failure). Returns true if it was tracked.
    pub fn forget(&mut self, node: u32) -> bool {
        self.nodes.remove(&node).is_some()
    }

    fn nodes_in(&self, state: LivenessState) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .nodes
            .iter()
            .filter(|(_, r)| r.state == state)
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LivenessConfig {
        LivenessConfig {
            suspect_after: Duration::from_millis(30),
            dead_after: Duration::from_millis(60),
        }
    }

    #[test]
    fn fresh_beacons_keep_a_node_alive() {
        let mut t = LivenessTracker::new(cfg());
        let t0 = Instant::now();
        assert_eq!(t.heartbeat(1, t0), None);
        for k in 1..10 {
            let now = t0 + Duration::from_millis(10 * k);
            assert!(t.poll(now).is_empty());
            t.heartbeat(1, now);
        }
        assert_eq!(t.state(1), Some(LivenessState::Alive));
        assert!(t.dead_nodes().is_empty());
    }

    #[test]
    fn silence_escalates_suspect_then_dead_exactly_once() {
        let mut t = LivenessTracker::new(cfg());
        let t0 = Instant::now();
        t.heartbeat(7, t0);
        assert_eq!(
            t.poll(t0 + Duration::from_millis(35)),
            vec![LivenessEvent::Suspected(7)]
        );
        assert_eq!(t.state(7), Some(LivenessState::Suspect));
        // Repolling in the same band is silent.
        assert!(t.poll(t0 + Duration::from_millis(40)).is_empty());
        assert_eq!(
            t.poll(t0 + Duration::from_millis(65)),
            vec![LivenessEvent::Died(7)]
        );
        assert_eq!(t.dead_nodes(), vec![7]);
        assert!(t.poll(t0 + Duration::from_millis(600)).is_empty());
    }

    #[test]
    fn a_long_gap_fires_both_transitions_in_order() {
        let mut t = LivenessTracker::new(cfg());
        let t0 = Instant::now();
        t.heartbeat(3, t0);
        assert_eq!(
            t.poll(t0 + Duration::from_millis(200)),
            vec![LivenessEvent::Suspected(3), LivenessEvent::Died(3)]
        );
    }

    #[test]
    fn a_beacon_recovers_a_dead_node() {
        let mut t = LivenessTracker::new(cfg());
        let t0 = Instant::now();
        t.heartbeat(5, t0);
        t.poll(t0 + Duration::from_millis(100));
        assert_eq!(t.state(5), Some(LivenessState::Dead));
        let ev = t.heartbeat(5, t0 + Duration::from_millis(110));
        assert_eq!(ev, Some(LivenessEvent::Recovered(5)));
        assert_eq!(t.state(5), Some(LivenessState::Alive));
        assert!(t.poll(t0 + Duration::from_millis(120)).is_empty());
    }

    #[test]
    fn a_flapping_node_reregisters_alive_and_can_die_again() {
        // A node that dies, comes back, and dies again must go through
        // the full Alive → Suspect → Dead ladder each time — one
        // Recovered per comeback, one Suspected+Died per outage, never
        // a corpse that stops being tracked.
        let mut t = LivenessTracker::new(cfg());
        let t0 = Instant::now();
        t.heartbeat(4, t0);

        // Outage #1.
        assert_eq!(
            t.poll(t0 + Duration::from_millis(100)),
            vec![LivenessEvent::Suspected(4), LivenessEvent::Died(4)]
        );
        assert_eq!(t.dead_nodes(), vec![4]);
        assert!(t.alive_nodes().is_empty());

        // Comeback #1: the dead node re-registers as Alive.
        assert_eq!(
            t.heartbeat(4, t0 + Duration::from_millis(120)),
            Some(LivenessEvent::Recovered(4))
        );
        assert_eq!(t.state(4), Some(LivenessState::Alive));
        assert_eq!(t.alive_nodes(), vec![4]);
        assert!(t.poll(t0 + Duration::from_millis(130)).is_empty());

        // Outage #2 escalates again — exactly once.
        assert_eq!(
            t.poll(t0 + Duration::from_millis(300)),
            vec![LivenessEvent::Suspected(4), LivenessEvent::Died(4)]
        );
        assert!(t.poll(t0 + Duration::from_millis(400)).is_empty());

        // Comeback #2 still works: recovery is not a one-shot.
        assert_eq!(
            t.heartbeat(4, t0 + Duration::from_millis(410)),
            Some(LivenessEvent::Recovered(4))
        );
        assert_eq!(t.state(4), Some(LivenessState::Alive));
    }

    #[test]
    fn forgotten_nodes_stop_generating_events() {
        let mut t = LivenessTracker::new(cfg());
        let t0 = Instant::now();
        t.heartbeat(1, t0);
        t.heartbeat(2, t0);
        assert!(t.forget(1));
        assert!(!t.forget(1), "already forgotten");
        let events = t.poll(t0 + Duration::from_millis(100));
        assert_eq!(
            events,
            vec![LivenessEvent::Suspected(2), LivenessEvent::Died(2)],
            "only the still-tracked node escalates"
        );
        assert_eq!(t.state(1), None);
    }

    #[test]
    fn nodes_are_tracked_independently() {
        let mut t = LivenessTracker::new(cfg());
        let t0 = Instant::now();
        t.heartbeat(1, t0);
        t.heartbeat(2, t0);
        t.heartbeat(2, t0 + Duration::from_millis(50));
        let events = t.poll(t0 + Duration::from_millis(70));
        assert_eq!(
            events,
            vec![LivenessEvent::Suspected(1), LivenessEvent::Died(1)]
        );
        assert_eq!(t.state(2), Some(LivenessState::Alive));
        assert_eq!(t.dead_nodes(), vec![1]);
    }

    #[test]
    #[should_panic(expected = "dead_after must not precede")]
    fn inverted_thresholds_panic() {
        let _ = LivenessTracker::new(LivenessConfig {
            suspect_after: Duration::from_millis(60),
            dead_after: Duration::from_millis(30),
        });
    }
}
