//! Turning deployment decisions into control signals.
//!
//! "In the presence of system dynamics, the controller adjusts coding
//! function deployment on the fly, i.e., updating the forwarding tables,
//! terminating existing coding functions and launching new ones"
//! (Sec. III-A). This module diffs two deployments and produces exactly
//! those three kinds of work.

use std::collections::HashMap;

use ncvnf_deploy::model::{SessionSpec, Topology};
use ncvnf_deploy::Deployment;
use ncvnf_flowgraph::NodeId;

use crate::fwdtab::ForwardingTable;
use crate::signal::Signal;

/// The signal batch that morphs one deployment into another.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SignalPlan {
    /// `NC_VNF_START` work: (data center, additional instances).
    pub launches: Vec<(NodeId, u32)>,
    /// `NC_VNF_END` work: (data center, instances to drain).
    pub terminations: Vec<(NodeId, u32)>,
    /// `NC_FORWARD_TAB` work: nodes whose tables changed, with the new
    /// table.
    pub table_updates: Vec<(NodeId, ForwardingTable)>,
}

impl SignalPlan {
    /// True when nothing needs to change.
    pub fn is_empty(&self) -> bool {
        self.launches.is_empty() && self.terminations.is_empty() && self.table_updates.is_empty()
    }

    /// Renders the plan as concrete signals, using `tau_secs` for
    /// terminations and data-center labels from the topology.
    pub fn to_signals(&self, topo: &Topology, tau_secs: u32) -> Vec<Signal> {
        let mut out = Vec::new();
        for &(dc, count) in &self.launches {
            out.push(Signal::NcVnfStart {
                data_center: topo.label(dc).to_owned(),
                count,
            });
        }
        for &(_, count) in &self.terminations {
            for _ in 0..count {
                out.push(Signal::NcVnfEnd { tau_secs });
            }
        }
        for (_, table) in &self.table_updates {
            out.push(Signal::NcForwardTab {
                table: table.to_text(),
            });
        }
        out
    }
}

/// Derives every node's forwarding table from a deployment's edge flows:
/// node `u` forwards session `m` to the heads of all edges `(u, v)` that
/// carry positive session-`m` flow. `addr_of` renders a node into the
/// address string daemons understand.
pub fn tables_from_deployment(
    topo: &Topology,
    sessions: &[SessionSpec],
    dep: &Deployment,
    addr_of: &dyn Fn(NodeId) -> String,
) -> HashMap<NodeId, ForwardingTable> {
    let mut tables: HashMap<NodeId, ForwardingTable> = HashMap::new();
    for (m, session) in sessions.iter().enumerate() {
        let Some(edges) = dep.edge_rates.get(m) else {
            continue;
        };
        let mut hops_of: HashMap<NodeId, Vec<String>> = HashMap::new();
        for (&e, &rate) in edges {
            if rate <= 0.0 {
                continue;
            }
            let edge = topo.graph.edge(e);
            hops_of.entry(edge.from).or_default().push(addr_of(edge.to));
        }
        for (node, mut hops) in hops_of {
            hops.sort();
            hops.dedup();
            tables.entry(node).or_default().set(session.id, hops);
        }
    }
    tables
}

/// Derives each data center's per-session recode emit ratio from the
/// deployment's flows: `f_m(out of v) / f_m(into v)`.
///
/// A coding point whose planned outgoing rate is below its incoming rate
/// must emit fewer (maximally mixed) combinations rather than flood its
/// egress — this is the knob `ncvnf_dataplane::VnfNode::set_emit_ratio`
/// consumes. Ratios are clamped to `(0, 1]`; data centers a session does
/// not traverse are absent.
pub fn emit_ratios_from_deployment(
    topo: &Topology,
    sessions: &[SessionSpec],
    dep: &Deployment,
) -> HashMap<(NodeId, ncvnf_rlnc::SessionId), f64> {
    let mut ratios = HashMap::new();
    for (m, session) in sessions.iter().enumerate() {
        let Some(edges) = dep.edge_rates.get(m) else {
            continue;
        };
        for dc in topo.data_centers() {
            let mut inflow = 0.0;
            let mut outflow = 0.0;
            for (&e, &rate) in edges {
                let edge = topo.graph.edge(e);
                if edge.to == dc {
                    inflow += rate;
                }
                if edge.from == dc {
                    outflow += rate;
                }
            }
            if inflow > 0.0 && outflow > 0.0 {
                // The VNF duplicates each emission to every next hop, so
                // the per-input emission count is outflow per *branch*.
                let branches = edges
                    .iter()
                    .filter(|(&e, &r)| r > 0.0 && topo.graph.edge(e).from == dc)
                    .count()
                    .max(1) as f64;
                let ratio = (outflow / branches / inflow).min(1.0);
                if ratio > 0.0 {
                    ratios.insert((dc, session.id), ratio);
                }
            }
        }
    }
    ratios
}

/// Diffs VNF counts and forwarding tables between two deployments.
pub fn plan_signals(
    topo: &Topology,
    sessions: &[SessionSpec],
    old: Option<&Deployment>,
    new: &Deployment,
    addr_of: &dyn Fn(NodeId) -> String,
) -> SignalPlan {
    let mut plan = SignalPlan::default();
    for dc in topo.data_centers() {
        let before = old.map(|d| *d.vnfs.get(&dc).unwrap_or(&0)).unwrap_or(0);
        let after = *new.vnfs.get(&dc).unwrap_or(&0);
        use std::cmp::Ordering;
        match after.cmp(&before) {
            Ordering::Greater => plan.launches.push((dc, (after - before) as u32)),
            Ordering::Less => plan.terminations.push((dc, (before - after) as u32)),
            Ordering::Equal => {}
        }
    }
    let new_tables = tables_from_deployment(topo, sessions, new, addr_of);
    let old_tables = old
        .map(|d| tables_from_deployment(topo, sessions, d, addr_of))
        .unwrap_or_default();
    let mut nodes: Vec<NodeId> = new_tables.keys().copied().collect();
    for n in old_tables.keys() {
        if !new_tables.contains_key(n) {
            nodes.push(*n);
        }
    }
    nodes.sort();
    nodes.dedup();
    for node in nodes {
        let empty = ForwardingTable::new();
        let new_t = new_tables.get(&node).unwrap_or(&empty);
        let old_t = old_tables.get(&node).unwrap_or(&empty);
        if new_t != old_t {
            plan.table_updates.push((node, new_t.clone()));
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncvnf_deploy::{Planner, SessionSpec};

    fn setup() -> (Topology, Vec<SessionSpec>, Deployment) {
        let w = ncvnf_deploy::presets::random_workload(2, 920e6, 150.0, 3);
        let planner = Planner::new();
        let dep = planner.plan(&w.topology, &w.sessions, 20e6).unwrap();
        (w.topology, w.sessions, dep)
    }

    fn addr(n: NodeId) -> String {
        format!("10.0.{}.1:4000", n.0)
    }

    #[test]
    fn tables_route_every_session_from_its_source() {
        let (topo, sessions, dep) = setup();
        let tables = tables_from_deployment(&topo, &sessions, &dep, &addr);
        for (m, s) in sessions.iter().enumerate() {
            if dep.rates[m] > 0.0 {
                let t = tables.get(&s.source).expect("source has a table");
                assert!(t.next_hops(s.id).is_some(), "source routes session");
            }
        }
    }

    #[test]
    fn initial_plan_launches_everything() {
        let (topo, sessions, dep) = setup();
        let plan = plan_signals(&topo, &sessions, None, &dep, &addr);
        let launched: u64 = plan.launches.iter().map(|&(_, c)| c as u64).sum();
        assert_eq!(launched, dep.total_vnfs());
        assert!(plan.terminations.is_empty());
        assert!(!plan.table_updates.is_empty());
        let signals = plan.to_signals(&topo, 600);
        assert_eq!(
            signals.len(),
            plan.launches.len() + plan.table_updates.len()
        );
    }

    #[test]
    fn identical_deployments_need_no_signals() {
        let (topo, sessions, dep) = setup();
        let plan = plan_signals(&topo, &sessions, Some(&dep), &dep, &addr);
        assert!(plan.is_empty());
    }

    #[test]
    fn emit_ratios_are_in_unit_range_and_cover_coding_points() {
        let (topo, sessions, dep) = setup();
        let ratios = emit_ratios_from_deployment(&topo, &sessions, &dep);
        for ((dc, session), ratio) in &ratios {
            assert!(
                *ratio > 0.0 && *ratio <= 1.0,
                "ratio out of range at {} for {}: {}",
                topo.label(*dc),
                session,
                ratio
            );
        }
        // Every DC that both receives and sends a session's flow has a
        // ratio entry.
        for (m, s) in sessions.iter().enumerate() {
            for dc in topo.data_centers() {
                let inflow: f64 = dep.edge_rates[m]
                    .iter()
                    .filter(|(&e, _)| topo.graph.edge(e).to == dc)
                    .map(|(_, &r)| r)
                    .sum();
                let outflow: f64 = dep.edge_rates[m]
                    .iter()
                    .filter(|(&e, _)| topo.graph.edge(e).from == dc)
                    .map(|(_, &r)| r)
                    .sum();
                assert_eq!(
                    ratios.contains_key(&(dc, s.id)),
                    inflow > 0.0 && outflow > 0.0
                );
            }
        }
    }

    #[test]
    fn scale_in_emits_vnf_end() {
        let (topo, sessions, dep) = setup();
        let mut shrunk = dep.clone();
        for count in shrunk.vnfs.values_mut() {
            *count = 0;
        }
        shrunk.edge_rates = vec![HashMap::new(); sessions.len()];
        let plan = plan_signals(&topo, &sessions, Some(&dep), &shrunk, &addr);
        let ended: u64 = plan.terminations.iter().map(|&(_, c)| c as u64).sum();
        assert_eq!(ended, dep.total_vnfs());
        let signals = plan.to_signals(&topo, 600);
        let ends = signals
            .iter()
            .filter(|s| matches!(s, Signal::NcVnfEnd { tau_secs: 600 }))
            .count() as u64;
        assert_eq!(ends, dep.total_vnfs());
    }
}
