//! The closed control loop: measurement → decision → actuation.
//!
//! Sec. III-A of the paper describes a controller that "monitors the
//! system" and "adjusts coding function deployment on the fly". Earlier
//! layers built every piece of that sentence in isolation — the
//! [`crate::telemetry`] aggregator, the [`ncvnf_deploy::ScalingController`]
//! hysteresis machine, the [`crate::journal`] write-ahead log and the
//! fenced [`crate::sender`]. This module closes the loop:
//!
//! 1. **Measure** — [`Autoscaler::poll`] queries every relay's `NC_STATS`
//!    snapshot, turns datagram-counter deltas into per-VNF capability
//!    estimates and feeds them to the telemetry window.
//! 2. **Decide** — drained [`ScalingEvent`]s run through the controller's
//!    ρ/τ hysteresis; an adoption is detected by comparing deployment
//!    fingerprints before and after the event batch.
//! 3. **Actuate** — every adoption is journaled (and fsynced) as a
//!    [`ControlRecord::ScaleDecision`] *before* any signal leaves the
//!    controller, then forwarding-table deltas are pushed through the
//!    epoch-fenced link, recoders before decoders so mid-path mixing
//!    capacity exists before receivers start draining it.
//!
//! **Scale-to-zero** rides the same poll: a relay whose data path has
//! been idle past `idle_tau_secs` *and* whose datagram counters did not
//! move since the previous poll is wound into the τ-pool with
//! `NC_VNF_END` (journaled first). The first returning packet — observed
//! as a counter delta, or reported out-of-band via a
//! `ncvnf_dataplane::feedback` wake frame — re-arms every draining
//! instance in dependency order via [`Autoscaler::wake`].
//!
//! The link is abstracted behind [`ControlLink`] so the decision loop is
//! testable without sockets; [`crate::SignalSender`] is the production
//! implementation.

use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::net::SocketAddr;
use std::time::Instant;

use ncvnf_deploy::{PlanError, ScalingController, ScalingEvent, VnfSpec};
use ncvnf_flowgraph::NodeId;

use crate::diff::tables_from_deployment;
use crate::journal::{ControlRecord, Journal};
use crate::metrics::ControlMetrics;
use crate::reconcile::snapshot_value;
use crate::sender::{SendError, SendReceipt, SignalSender};
use crate::signal::{Signal, VnfRoleWire};
use crate::telemetry::Telemetry;

/// The slice of [`SignalSender`] the autoscaler depends on. Production
/// code hands in a real sender; tests substitute a scripted mock and
/// assert on the exact signal order.
pub trait ControlLink {
    /// The controller epoch every push is fenced under.
    fn epoch(&self) -> u64;
    /// The sequence number the next push to `to` will carry (journaled
    /// *before* the push so replay knows what was intended).
    fn next_seq(&self, to: SocketAddr) -> u64;
    /// Pushes one fenced signal and blocks until ACKed or failed.
    ///
    /// # Errors
    ///
    /// Propagates the transport's [`SendError`].
    fn push(&mut self, to: SocketAddr, signal: &Signal) -> Result<SendReceipt, SendError>;
    /// Queries a node's `NC_STATS` snapshot (JSON text).
    ///
    /// # Errors
    ///
    /// Propagates the transport's [`SendError`].
    fn query_stats(&mut self, to: SocketAddr) -> Result<String, SendError>;
}

impl ControlLink for SignalSender {
    fn epoch(&self) -> u64 {
        SignalSender::epoch(self)
    }

    fn next_seq(&self, to: SocketAddr) -> u64 {
        SignalSender::next_seq(self, to)
    }

    fn push(&mut self, to: SocketAddr, signal: &Signal) -> Result<SendReceipt, SendError> {
        SignalSender::push(self, to, signal)
    }

    fn query_stats(&mut self, to: SocketAddr) -> Result<String, SendError> {
        SignalSender::query_stats(self, to)
    }
}

/// One relay under autoscaler management.
#[derive(Debug, Clone)]
pub struct RelayTarget {
    /// Controller-assigned node id (journal key).
    pub node: u32,
    /// The data center (topology node) this relay serves.
    pub dc: NodeId,
    /// The relay's control-socket address.
    pub control_addr: SocketAddr,
    /// The relay's coding role — orders actuation (recoders first).
    pub role: VnfRoleWire,
    /// The settings signals that (re)arm this relay, replayed verbatim
    /// on bootstrap and on wake-from-drain.
    pub settings: Vec<Signal>,
}

/// Tuning knobs of the loop.
#[derive(Debug, Clone, Copy)]
pub struct AutoscaleConfig {
    /// Minimum relative change before telemetry emits an observation
    /// (the controller applies its own ρ/τ hysteresis on top).
    pub min_rel_change: f64,
    /// Telemetry smoothing window (samples).
    pub telemetry_window: usize,
    /// Idle time before a relay becomes a scale-to-zero candidate
    /// (seconds of data-path silence).
    pub idle_tau_secs: f64,
    /// The τ grace period carried in `NC_VNF_END` (seconds).
    pub drain_tau_secs: u32,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            min_rel_change: 0.02,
            telemetry_window: 3,
            idle_tau_secs: 600.0,
            drain_tau_secs: 600,
        }
    }
}

/// What the autoscaler learned about one target across polls.
#[derive(Debug, Clone)]
struct TargetTrack {
    /// Controller clock of the previous successful poll.
    last_poll_secs: Option<f64>,
    /// `relay.datagrams_out` at the previous poll.
    last_out: u64,
    /// Sum of the relay's shed counters at the previous poll. Shed
    /// packets are demand the node *refused*, so they count toward the
    /// offered rate: a node pinned at its admission ceiling looks
    /// fully loaded rather than mysteriously idle, and overload drives
    /// scale-out instead of masking it.
    last_shed: u64,
    /// Highest packet rate ever observed (the "100% load" anchor the
    /// capability estimate scales the nominal spec by).
    baseline_pps: f64,
    /// The data center's nominal per-VNF spec, captured at first poll.
    nominal: VnfSpec,
    /// An `NC_VNF_END` was sent and no wake has re-armed it yet.
    draining: bool,
}

/// Outcome of one [`Autoscaler::poll`] pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PollReport {
    /// Targets that answered `NC_STATS`.
    pub polled: u32,
    /// Targets that did not answer.
    pub unreachable: u32,
    /// Scaling observations emitted by telemetry this pass.
    pub events: u32,
    /// True when the controller adopted a new deployment.
    pub adopted: bool,
    /// Forwarding-table deltas pushed.
    pub tables_pushed: u32,
    /// Node ids wound into the τ-pool this pass.
    pub drained: Vec<u32>,
    /// Node ids re-armed from drain this pass (traffic returned).
    pub woken: Vec<u32>,
}

/// Errors of the measurement→decision→actuation loop.
#[derive(Debug)]
pub enum AutoscaleError {
    /// Journal I/O failed — the decision could not be made durable, so
    /// no signal was sent.
    Io(std::io::Error),
    /// The planner rejected the re-solve.
    Plan(PlanError),
    /// A fenced push failed terminally (timeout, rejection, or a newer
    /// epoch fenced this controller off).
    Send(SendError),
}

impl fmt::Display for AutoscaleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutoscaleError::Io(e) => write!(f, "autoscale journal I/O: {e}"),
            AutoscaleError::Plan(e) => write!(f, "autoscale planning: {e}"),
            AutoscaleError::Send(e) => write!(f, "autoscale actuation: {e}"),
        }
    }
}

impl Error for AutoscaleError {}

impl From<std::io::Error> for AutoscaleError {
    fn from(e: std::io::Error) -> Self {
        AutoscaleError::Io(e)
    }
}

impl From<PlanError> for AutoscaleError {
    fn from(e: PlanError) -> Self {
        AutoscaleError::Plan(e)
    }
}

impl From<SendError> for AutoscaleError {
    fn from(e: SendError) -> Self {
        AutoscaleError::Send(e)
    }
}

/// Actuation order: mid-path mixing capacity must exist before the
/// receivers that drain it, so recoders (and sources) go first.
fn role_rank(role: VnfRoleWire) -> u8 {
    match role {
        VnfRoleWire::Encoder | VnfRoleWire::Forwarder | VnfRoleWire::Recoder => 0,
        VnfRoleWire::Decoder => 1,
    }
}

/// A cheap equality proxy for [`ncvnf_deploy::Deployment`] (which has no
/// `PartialEq`): VNF counts plus session rates rounded to whole bps.
fn fingerprint(dep: &ncvnf_deploy::Deployment) -> String {
    let mut vnfs: Vec<(usize, u64)> = dep.vnfs.iter().map(|(n, c)| (n.0, *c)).collect();
    vnfs.sort_unstable();
    let rates: Vec<i64> = dep.rates.iter().map(|r| r.round() as i64).collect();
    format!("{vnfs:?}|{rates:?}")
}

/// The autoscaler daemon: owns the scaling controller, the write-ahead
/// journal and the relay fleet description, and drives them from live
/// `NC_STATS` measurements. See the module docs for the loop shape.
pub struct Autoscaler {
    controller: ScalingController,
    journal: Journal,
    targets: Vec<RelayTarget>,
    /// Data-plane address of each topology node, for rendering
    /// forwarding-table next hops.
    data_addrs: HashMap<NodeId, String>,
    telemetry: Telemetry,
    config: AutoscaleConfig,
    tracks: HashMap<u32, TargetTrack>,
    /// Last table text pushed per node, to suppress no-op re-pushes.
    pushed_tables: HashMap<u32, String>,
    /// Controller clock at which each DC's current drift window opened
    /// (first deviating observation); cleared on adoption.
    drift_since: HashMap<NodeId, f64>,
    /// Monotonic decision counter (continues across restarts via
    /// [`crate::ControllerState::scale_decisions`]).
    decisions: u64,
    metrics: Option<ControlMetrics>,
}

impl Autoscaler {
    /// Creates an autoscaler over `targets`, journaling into `journal`.
    /// `data_addrs` maps topology nodes to the data-plane addresses
    /// forwarding tables should name.
    pub fn new(
        controller: ScalingController,
        journal: Journal,
        targets: Vec<RelayTarget>,
        data_addrs: HashMap<NodeId, String>,
        config: AutoscaleConfig,
    ) -> Autoscaler {
        Autoscaler {
            controller,
            journal,
            targets,
            data_addrs,
            telemetry: Telemetry::new(config.telemetry_window),
            config,
            tracks: HashMap::new(),
            pushed_tables: HashMap::new(),
            drift_since: HashMap::new(),
            decisions: 0,
            metrics: None,
        }
    }

    /// Continues the decision counter from a replayed
    /// [`crate::ControllerState::scale_decisions`], so decision
    /// sequence numbers stay unique across controller restarts.
    pub fn with_decision_base(mut self, seq: u64) -> Self {
        self.decisions = seq;
        self
    }

    /// Attaches registry handles for the `control.autoscale.*` metrics.
    pub fn with_metrics(mut self, metrics: ControlMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The wrapped scaling controller (read-only).
    pub fn controller(&self) -> &ScalingController {
        &self.controller
    }

    /// Decisions journaled so far (monotonic across restarts).
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Node ids currently draining toward scale-to-zero, ascending.
    pub fn draining(&self) -> Vec<u32> {
        let mut nodes: Vec<u32> = self
            .tracks
            .iter()
            .filter(|(_, t)| t.draining)
            .map(|(n, _)| *n)
            .collect();
        nodes.sort_unstable();
        nodes
    }

    /// Journals the fleet and arms every relay: `EpochStarted`, one
    /// `SessionCreated` per distinct session found in the targets'
    /// settings, one `VnfLaunched` per target — all committed *before*
    /// the first signal leaves — then settings pushes in dependency
    /// order, an initial plan if none exists, and the first table push.
    ///
    /// # Errors
    ///
    /// [`AutoscaleError::Io`] if the journal cannot be made durable (no
    /// signal is sent in that case), [`AutoscaleError::Plan`] /
    /// [`AutoscaleError::Send`] from planning and actuation.
    pub fn bootstrap(
        &mut self,
        link: &mut dyn ControlLink,
        now: f64,
    ) -> Result<(), AutoscaleError> {
        self.journal.append(&ControlRecord::EpochStarted {
            epoch: link.epoch(),
        });
        let mut seen_sessions = Vec::new();
        for t in &self.targets {
            for s in &t.settings {
                if let Signal::NcSettings {
                    session,
                    block_size,
                    generation_size,
                    buffer_generations,
                    ..
                } = s
                {
                    if seen_sessions.contains(session) {
                        continue;
                    }
                    seen_sessions.push(*session);
                    self.journal.append(&ControlRecord::SessionCreated {
                        session: *session,
                        block_size: *block_size,
                        generation_size: *generation_size,
                        buffer_generations: *buffer_generations,
                    });
                }
            }
        }
        for t in &self.targets {
            self.journal.append(&ControlRecord::VnfLaunched {
                node: t.node,
                data_center: self.controller.topology().label(t.dc).to_owned(),
                control_addr: t.control_addr.to_string(),
            });
        }
        self.journal.commit()?;
        let mut order: Vec<usize> = (0..self.targets.len()).collect();
        order.sort_by_key(|&i| (role_rank(self.targets[i].role), self.targets[i].node));
        for i in order {
            let t = &self.targets[i];
            for s in &t.settings {
                link.push(t.control_addr, s)?;
            }
        }
        if self.controller.deployment().is_none() {
            self.controller.replan(now)?;
        }
        self.push_tables(link)?;
        Ok(())
    }

    /// One loop iteration: poll every target's `NC_STATS`, feed the
    /// telemetry window, run the controller's hysteresis, and actuate
    /// whatever it adopted — journal first, signals second. Also runs
    /// the scale-to-zero policy (see module docs).
    ///
    /// # Errors
    ///
    /// [`AutoscaleError::Io`] when a decision cannot be journaled (the
    /// corresponding signals are *not* sent), [`AutoscaleError::Plan`] /
    /// [`AutoscaleError::Send`] from decision and actuation. Unreachable
    /// targets are not errors; they are counted in the report.
    pub fn poll(
        &mut self,
        link: &mut dyn ControlLink,
        now: f64,
    ) -> Result<PollReport, AutoscaleError> {
        let decide_start = Instant::now();
        let mut report = PollReport::default();
        let before = self.controller.deployment().map(fingerprint);

        // 1. Measure.
        let mut drain_candidates: Vec<(u32, SocketAddr)> = Vec::new();
        let mut measured: Vec<NodeId> = Vec::new();
        let mut traffic_returned = false;
        let probes: Vec<(u32, NodeId, SocketAddr)> = self
            .targets
            .iter()
            .map(|t| (t.node, t.dc, t.control_addr))
            .collect();
        for (node, dc, addr) in probes {
            let stats = match link.query_stats(addr) {
                Ok(s) => s,
                Err(_) => {
                    report.unreachable += 1;
                    continue;
                }
            };
            report.polled += 1;
            let out = snapshot_value(&stats, "relay.datagrams_out").unwrap_or(0.0) as u64;
            let shed = [
                "relay.shed_quota",
                "relay.shed_overload",
                "relay.shed_redundancy",
            ]
            .iter()
            .map(|name| snapshot_value(&stats, name).unwrap_or(0.0) as u64)
            .sum::<u64>();
            let idle_ms = snapshot_value(&stats, "relay.idle_ms").unwrap_or(0.0);
            let daemon_state = snapshot_value(&stats, "relay.daemon_state").map(|v| v as u8);
            let nominal = self.controller.topology().vnf_spec(dc);
            let track = self.tracks.entry(node).or_insert_with(|| TargetTrack {
                last_poll_secs: None,
                last_out: out,
                last_shed: shed,
                baseline_pps: 0.0,
                nominal,
                draining: false,
            });
            let mut out_delta = None;
            if let Some(prev) = track.last_poll_secs {
                let dt = now - prev;
                if dt > 0.0 {
                    let delta = out.saturating_sub(track.last_out);
                    out_delta = Some(delta);
                    // Offered load = what the node forwarded plus what
                    // it shed at the admission/overload gate.
                    let shed_delta = shed.saturating_sub(track.last_shed);
                    let pps = (delta + shed_delta) as f64 / dt;
                    track.baseline_pps = track.baseline_pps.max(pps);
                    if track.baseline_pps > 0.0 && !track.draining {
                        // Capability estimate: the nominal spec scaled
                        // by current throughput relative to the best
                        // this instance ever sustained, floored so a
                        // lull does not read as a dead machine.
                        let ratio = (pps / track.baseline_pps).max(0.05);
                        self.telemetry.record_bandwidth(
                            dc,
                            track.nominal.bin_bps * ratio,
                            track.nominal.bout_bps * ratio,
                        );
                        measured.push(dc);
                    }
                }
            }
            if track.draining && matches!(out_delta, Some(d) if d > 0) {
                // First packet after a drain: traffic is back, re-arm.
                traffic_returned = true;
            }
            if !track.draining
                && daemon_state == Some(1)
                && idle_ms >= self.config.idle_tau_secs * 1000.0
                && out_delta == Some(0)
            {
                drain_candidates.push((node, addr));
            }
            track.last_poll_secs = Some(now);
            track.last_out = out;
            track.last_shed = shed;
        }

        // 2. Decide: run the smoothed estimates through the controller's
        // ρ/τ hysteresis and let time-based windows fire.
        let events = self
            .telemetry
            .drain_events(self.controller.topology(), self.config.min_rel_change);
        report.events = events.len() as u32;
        let mut event_dcs: HashSet<NodeId> = HashSet::new();
        for event in &events {
            if let ScalingEvent::BandwidthObserved { dc, .. } = event {
                self.drift_since.entry(*dc).or_insert(now);
                event_dcs.insert(*dc);
            }
        }
        for event in events {
            self.controller.handle(event, now)?;
        }
        // Recovery closure: telemetry stays silent while an estimate
        // sits within min_rel_change of the current belief, but the
        // controller's pending windows need to *hear* that agreement —
        // a dip whose measurement stream recovered (rather than went
        // silent) would otherwise survive the staleness sweep and be
        // applied at the next tick even though it never persisted for
        // τ1. Feed non-deviating estimates back as explicit
        // confirmations so the window reset sees them.
        measured.sort_unstable_by_key(|dc| dc.0);
        measured.dedup();
        for dc in measured {
            if event_dcs.contains(&dc) {
                continue;
            }
            let Some((in_bps, out_bps)) = self.telemetry.bandwidth_estimate(dc) else {
                continue;
            };
            self.drift_since.remove(&dc);
            let coding_bps = self.controller.topology().vnf_spec(dc).coding_bps;
            self.controller.handle(
                ScalingEvent::BandwidthObserved {
                    dc,
                    spec: VnfSpec {
                        bin_bps: in_bps,
                        bout_bps: out_bps,
                        coding_bps,
                    },
                },
                now,
            )?;
        }
        self.controller.tick(now)?;

        // 3. Actuate: journal the decision durably, then push deltas.
        let after = self.controller.deployment().map(fingerprint);
        if after.is_some() && after != before {
            report.adopted = true;
            self.decisions += 1;
            let (vnfs, rate_bps) = {
                let dep = self.controller.deployment().expect("adopted deployment");
                (dep.total_vnfs() as u32, dep.total_rate_bps())
            };
            self.journal.append(&ControlRecord::ScaleDecision {
                epoch: link.epoch(),
                seq: self.decisions,
                vnfs,
                rate_bps,
            });
            self.journal.commit()?;
            report.tables_pushed = self.push_tables(link)?;
            let detect_ms = self
                .drift_since
                .drain()
                .map(|(_, since)| ((now - since) * 1000.0).max(0.0) as u64)
                .max();
            let decide_ns = decide_start.elapsed().as_nanos() as u64;
            if let Some(m) = &self.metrics {
                m.record_autoscale_adoption(detect_ms, decide_ns);
            }
        }

        // 4. Scale to zero — but never in a pass that just re-planned:
        // the new deployment may be about to route traffic through a
        // node that merely *looked* idle under the old one.
        if !report.adopted {
            for (node, addr) in drain_candidates {
                let deadline = now + self.config.drain_tau_secs as f64;
                self.journal.append(&ControlRecord::VnfEnded {
                    node,
                    linger_deadline_secs: deadline,
                });
                self.journal.commit()?;
                link.push(
                    addr,
                    &Signal::NcVnfEnd {
                        tau_secs: self.config.drain_tau_secs,
                    },
                )?;
                if let Some(track) = self.tracks.get_mut(&node) {
                    track.draining = true;
                }
                report.drained.push(node);
                if let Some(m) = &self.metrics {
                    m.record_autoscale_drained();
                }
            }
        }

        // 5. Wake: a draining node saw traffic — re-arm the fleet.
        if traffic_returned {
            report.woken = self.wake(link)?;
        }

        if let Some(m) = &self.metrics {
            m.record_autoscale_poll();
            m.set_autoscale_draining(self.draining().len() as u64);
        }
        Ok(report)
    }

    /// Re-arms every draining target in dependency order (recoders
    /// before decoders), journaling `VnfReused` before each settings
    /// push. Called from [`poll`](Self::poll) when counters show traffic
    /// returned, and directly by whoever receives a data-plane wake
    /// frame (first packet / first NACK at a draining relay).
    ///
    /// Returns the node ids woken.
    ///
    /// # Errors
    ///
    /// [`AutoscaleError::Io`] / [`AutoscaleError::Send`] as in
    /// [`poll`](Self::poll).
    pub fn wake(&mut self, link: &mut dyn ControlLink) -> Result<Vec<u32>, AutoscaleError> {
        let mut order: Vec<usize> = (0..self.targets.len())
            .filter(|&i| {
                self.tracks
                    .get(&self.targets[i].node)
                    .is_some_and(|t| t.draining)
            })
            .collect();
        order.sort_by_key(|&i| (role_rank(self.targets[i].role), self.targets[i].node));
        let mut woken = Vec::new();
        for i in order {
            let t = &self.targets[i];
            self.journal
                .append(&ControlRecord::VnfReused { node: t.node });
            self.journal.commit()?;
            for s in &t.settings {
                link.push(t.control_addr, s)?;
            }
            if let Some(track) = self.tracks.get_mut(&t.node) {
                track.draining = false;
            }
            // The re-armed relay needs its forwarding table again; force
            // a re-push on the next table pass.
            self.pushed_tables.remove(&t.node);
            woken.push(t.node);
            if let Some(m) = &self.metrics {
                m.record_autoscale_woken();
            }
        }
        if !woken.is_empty() {
            self.push_tables(link)?;
            if let Some(m) = &self.metrics {
                m.set_autoscale_draining(self.draining().len() as u64);
            }
        }
        Ok(woken)
    }

    /// Pushes the current deployment's forwarding tables to every target
    /// whose table changed since the last push, recoders before
    /// decoders. Each push is journaled (`TablePushed`, with the fence
    /// coordinates the link will use) and committed *before* the signal
    /// is sent. Returns the number of deltas pushed.
    fn push_tables(&mut self, link: &mut dyn ControlLink) -> Result<u32, AutoscaleError> {
        let Some(dep) = self.controller.deployment() else {
            return Ok(0);
        };
        let topo = self.controller.topology();
        let addrs = &self.data_addrs;
        let addr_of = |n: NodeId| {
            addrs
                .get(&n)
                .cloned()
                .unwrap_or_else(|| topo.label(n).to_owned())
        };
        let tables = tables_from_deployment(topo, self.controller.sessions(), dep, &addr_of);
        let mut order: Vec<usize> = (0..self.targets.len()).collect();
        order.sort_by_key(|&i| (role_rank(self.targets[i].role), self.targets[i].node));
        let mut pushed = 0;
        for i in order {
            let t = &self.targets[i];
            let Some(table) = tables.get(&t.dc) else {
                continue;
            };
            let text = table.to_text();
            if self.pushed_tables.get(&t.node) == Some(&text) {
                continue;
            }
            self.journal.append(&ControlRecord::TablePushed {
                node: t.node,
                epoch: link.epoch(),
                seq: link.next_seq(t.control_addr),
                table: text.clone(),
            });
            self.journal.commit()?;
            link.push(
                t.control_addr,
                &Signal::NcForwardTab {
                    table: text.clone(),
                },
            )?;
            self.pushed_tables.insert(t.node, text);
            pushed += 1;
        }
        Ok(pushed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Journal;
    use ncvnf_deploy::{Planner, ScalingParams, SessionSpec, TopologyBuilder};
    use ncvnf_rlnc::SessionId;

    /// A scripted link: records every push, serves canned stats.
    struct MockLink {
        epoch: u64,
        seqs: HashMap<SocketAddr, u64>,
        pushed: Vec<(SocketAddr, Signal)>,
        stats: HashMap<SocketAddr, String>,
    }

    impl MockLink {
        fn new(epoch: u64) -> Self {
            MockLink {
                epoch,
                seqs: HashMap::new(),
                pushed: Vec::new(),
                stats: HashMap::new(),
            }
        }

        fn set_stats(&mut self, addr: SocketAddr, out: u64, idle_ms: u64, state: u8) {
            self.stats.insert(
                addr,
                format!(
                    r#"{{"counters":{{"relay.datagrams_out":{out}}},"gauges":{{"relay.idle_ms":{idle_ms},"relay.daemon_state":{state}}}}}"#
                ),
            );
        }
    }

    impl ControlLink for MockLink {
        fn epoch(&self) -> u64 {
            self.epoch
        }

        fn next_seq(&self, to: SocketAddr) -> u64 {
            self.seqs.get(&to).copied().unwrap_or(0) + 1
        }

        fn push(&mut self, to: SocketAddr, signal: &Signal) -> Result<SendReceipt, SendError> {
            let seq = self.seqs.entry(to).or_insert(0);
            *seq += 1;
            self.pushed.push((to, signal.clone()));
            Ok(SendReceipt {
                seq: *seq,
                attempts: 1,
                rtt: std::time::Duration::from_micros(50),
            })
        }

        fn query_stats(&mut self, to: SocketAddr) -> Result<String, SendError> {
            self.stats
                .get(&to)
                .cloned()
                .ok_or(SendError::Timeout { attempts: 1 })
        }
    }

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    fn temp_wal(tag: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("ncvnf-autoscale-{tag}-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn settings_for(session: u16, role: VnfRoleWire, port: u16) -> Vec<Signal> {
        vec![Signal::NcSettings {
            session: SessionId::new(session),
            role,
            data_port: port,
            block_size: 1024,
            generation_size: 4,
            buffer_generations: 64,
        }]
    }

    /// src → dcA (recoder) → dcB (decoder) → rx, with fast hysteresis.
    fn harness(tag: &str) -> (Autoscaler, MockLink) {
        let mut b = TopologyBuilder::new();
        let spec = VnfSpec {
            bin_bps: 920e6,
            bout_bps: 920e6,
            coding_bps: 1000e6,
        };
        let dc_a = b.data_center("dc-a", spec);
        let dc_b = b.data_center("dc-b", spec);
        let s = b.source("src", 400e6);
        let r = b.receiver("rx", 400e6);
        b.link(s, dc_a, 5.0)
            .link(dc_a, dc_b, 5.0)
            .link(dc_b, r, 5.0);
        let params = ScalingParams {
            alpha: 20e6,
            rho1: 0.05,
            tau1_secs: 2.0,
            rho2: 0.05,
            tau2_secs: 2.0,
            pool_tau_secs: 60.0,
            launch_latency_secs: 0.0,
        };
        let mut controller = ScalingController::new(b.build(), Planner::new(), params);
        controller
            .handle(
                ScalingEvent::SessionJoin(SessionSpec::elastic(
                    SessionId::new(7),
                    s,
                    vec![r],
                    200.0,
                )),
                0.0,
            )
            .unwrap();
        let (journal, _, _) = Journal::open(temp_wal(tag)).unwrap();
        let targets = vec![
            RelayTarget {
                node: 1,
                dc: dc_a,
                control_addr: addr(9101),
                role: VnfRoleWire::Recoder,
                settings: settings_for(7, VnfRoleWire::Recoder, 9201),
            },
            RelayTarget {
                node: 2,
                dc: dc_b,
                control_addr: addr(9102),
                role: VnfRoleWire::Decoder,
                settings: settings_for(7, VnfRoleWire::Decoder, 9202),
            },
        ];
        let mut data_addrs = HashMap::new();
        data_addrs.insert(dc_a, "127.0.0.1:9201".to_owned());
        data_addrs.insert(dc_b, "127.0.0.1:9202".to_owned());
        data_addrs.insert(r, "127.0.0.1:9203".to_owned());
        let config = AutoscaleConfig {
            min_rel_change: 0.02,
            telemetry_window: 1,
            idle_tau_secs: 5.0,
            drain_tau_secs: 30,
        };
        let auto = Autoscaler::new(controller, journal, targets, data_addrs, config);
        (auto, MockLink::new(1))
    }

    #[test]
    fn bootstrap_journals_before_arming_in_dependency_order() {
        let (mut auto, mut link) = harness("bootstrap");
        auto.bootstrap(&mut link, 0.0).unwrap();
        // Journal replays to the full fleet belief.
        let path = auto.journal.path().to_path_buf();
        drop(auto);
        let (_, state, report) = Journal::open(&path).unwrap();
        assert!(!report.torn_tail);
        assert_eq!(state.epoch, 1);
        assert_eq!(state.nodes.len(), 2);
        assert_eq!(state.sessions.len(), 1);
        // Recoder (node 1) was armed before the decoder (node 2).
        let settings_order: Vec<SocketAddr> = link
            .pushed
            .iter()
            .filter(|(_, s)| matches!(s, Signal::NcSettings { .. }))
            .map(|(a, _)| *a)
            .collect();
        assert_eq!(settings_order, vec![addr(9101), addr(9102)]);
        // Both relays got a forwarding table.
        let tables: Vec<SocketAddr> = link
            .pushed
            .iter()
            .filter(|(_, s)| matches!(s, Signal::NcForwardTab { .. }))
            .map(|(a, _)| *a)
            .collect();
        assert_eq!(tables, vec![addr(9101), addr(9102)]);
    }

    #[test]
    fn steady_traffic_never_adopts_or_drains() {
        let (mut auto, mut link) = harness("steady");
        auto.bootstrap(&mut link, 0.0).unwrap();
        let before = link.pushed.len();
        let mut out = 0u64;
        for i in 0..6 {
            out += 1000;
            link.set_stats(addr(9101), out, 10, 1);
            link.set_stats(addr(9102), out, 10, 1);
            let report = auto.poll(&mut link, 1.0 + i as f64).unwrap();
            assert!(!report.adopted, "steady load must not re-plan");
            assert!(report.drained.is_empty(), "busy nodes must not drain");
        }
        assert_eq!(link.pushed.len(), before, "no signals under steady state");
    }

    #[test]
    fn persistent_bandwidth_drop_is_adopted_and_journaled_before_push() {
        let (mut auto, mut link) = harness("drop");
        auto.bootstrap(&mut link, 0.0).unwrap();
        // Establish a baseline rate, then collapse dc-a's throughput to
        // 30% and hold it past τ1 = 2 s.
        let mut out = 0u64;
        for i in 0..3 {
            out += 10_000;
            link.set_stats(addr(9101), out, 10, 1);
            link.set_stats(addr(9102), out, 10, 1);
            auto.poll(&mut link, 1.0 + i as f64).unwrap();
        }
        let mut adopted = false;
        for i in 0..8 {
            out += 3_000;
            link.set_stats(addr(9101), out, 10, 1);
            link.set_stats(addr(9102), out, 10, 1);
            let report = auto.poll(&mut link, 4.0 + i as f64).unwrap();
            adopted |= report.adopted;
        }
        assert!(adopted, "a persistent capability drop must be adopted");
        assert!(auto.decisions() >= 1);
        let path = auto.journal.path().to_path_buf();
        drop(auto);
        let (_, state, _) = Journal::open(&path).unwrap();
        assert!(
            state.scale_decisions >= 1,
            "the decision must be in the WAL"
        );
    }

    #[test]
    fn idle_relay_drains_and_traffic_wakes_it_recoder_first() {
        let (mut auto, mut link) = harness("drain");
        auto.bootstrap(&mut link, 0.0).unwrap();
        // Two polls with zero counter movement and a large idle gauge.
        link.set_stats(addr(9101), 500, 20_000, 1);
        link.set_stats(addr(9102), 500, 20_000, 1);
        auto.poll(&mut link, 1.0).unwrap();
        let report = auto.poll(&mut link, 2.0).unwrap();
        assert_eq!(report.drained, vec![1, 2]);
        assert_eq!(auto.draining(), vec![1, 2]);
        let ends = link
            .pushed
            .iter()
            .filter(|(_, s)| matches!(s, Signal::NcVnfEnd { tau_secs: 30 }))
            .count();
        assert_eq!(ends, 2);
        // Traffic returns at the decoder: both wake, recoder re-armed
        // first even though the decoder saw the packets.
        link.set_stats(addr(9102), 900, 5, 3);
        let report = auto.poll(&mut link, 3.0).unwrap();
        assert_eq!(report.woken, vec![1, 2]);
        assert!(auto.draining().is_empty());
        let wake_settings: Vec<SocketAddr> = link
            .pushed
            .iter()
            .rev()
            .take_while(|(_, s)| !matches!(s, Signal::NcVnfEnd { .. }))
            .filter(|(_, s)| matches!(s, Signal::NcSettings { .. }))
            .map(|(a, _)| *a)
            .collect();
        // Collected in reverse order: decoder appears last.
        assert_eq!(wake_settings.last(), Some(&addr(9101)));
        // The journal remembers the full drain/reuse cycle.
        let path = auto.journal.path().to_path_buf();
        drop(auto);
        let (_, state, _) = Journal::open(&path).unwrap();
        for node in [1u32, 2] {
            assert!(
                matches!(
                    state.nodes.get(&node).map(|b| &b.status),
                    Some(crate::journal::NodeStatus::Active)
                ),
                "node {node} must be active again after reuse"
            );
        }
    }

    #[test]
    fn unreachable_targets_are_counted_not_fatal() {
        let (mut auto, mut link) = harness("unreach");
        auto.bootstrap(&mut link, 0.0).unwrap();
        link.set_stats(addr(9101), 100, 10, 1);
        // Node 2 has no canned stats → Timeout.
        link.stats.remove(&addr(9102));
        let report = auto.poll(&mut link, 1.0).unwrap();
        assert_eq!(report.polled, 1);
        assert_eq!(report.unreachable, 1);
    }
}
