//! Control signals and their wire codec.
//!
//! "The signals below are designed to carry these messages from the
//! controller to the VNFs: `NC_START` ... `NC_VNF_START` ... `NC_VNF_END`
//! ... `NC_FORWARD_TAB` ... `NC_SETTINGS`" (Sec. III-A).
//!
//! Wire format: a 1-byte tag, a 4-byte big-endian body length, then the
//! body. Strings are UTF-8 with 2-byte length prefixes.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use ncvnf_rlnc::SessionId;
use std::error::Error;
use std::fmt;

/// The VNF role carried in `NC_SETTINGS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VnfRoleWire {
    /// Encode at the source.
    Encoder,
    /// Decode packets near a destination.
    Decoder,
    /// Forward without coding.
    Forwarder,
    /// Recode inside the network (in-network VNF). Controllers predating
    /// this variant sent [`Encoder`](Self::Encoder) for relay recoding;
    /// receivers must keep honouring that legacy meaning.
    Recoder,
}

impl VnfRoleWire {
    fn to_byte(self) -> u8 {
        match self {
            VnfRoleWire::Encoder => 1,
            VnfRoleWire::Decoder => 2,
            VnfRoleWire::Forwarder => 3,
            VnfRoleWire::Recoder => 4,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(VnfRoleWire::Encoder),
            2 => Some(VnfRoleWire::Decoder),
            3 => Some(VnfRoleWire::Forwarder),
            4 => Some(VnfRoleWire::Recoder),
            _ => None,
        }
    }
}

/// A control-plane message from the controller to a daemon (or itself).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Signal {
    /// Start network-coding-enabled transmission for a session.
    NcStart {
        /// The session to start.
        session: SessionId,
    },
    /// Launch `count` new VNFs (VMs) in the named data center.
    NcVnfStart {
        /// Data-center name (cloud-API region identifier).
        data_center: String,
        /// Number of VNFs to launch.
        count: u32,
    },
    /// Inform a VNF it is no longer used; it shuts down after `tau_secs`.
    NcVnfEnd {
        /// Grace period before the VM powers off.
        tau_secs: u32,
    },
    /// Replace the daemon's forwarding table (serialized text format).
    NcForwardTab {
        /// The table text (see [`crate::fwdtab`]).
        table: String,
    },
    /// Initial settings for a VNF: role, session, ports, layout.
    NcSettings {
        /// The session this configuration applies to.
        session: SessionId,
        /// The VNF's role for the session.
        role: VnfRoleWire,
        /// UDP port for NC data.
        data_port: u16,
        /// Block size in bytes.
        block_size: u32,
        /// Blocks per generation.
        generation_size: u32,
        /// Buffer capacity in generations.
        buffer_generations: u32,
    },
    /// Query a node's observability snapshot. The node replies with one
    /// JSON object ([`ncvnf_obs::Snapshot::to_json`] format) instead of
    /// the usual `OK`/`ERR` acknowledgement.
    NcStats,
    /// Provision (or revoke) a session's admission quota at a relay.
    /// The first quota a relay receives arms its admission regime;
    /// until then every datagram is admitted (pre-quota behavior).
    NcQuota {
        /// The session the quota applies to. Session 0 sets the default
        /// bucket for sessions without their own provision.
        session: SessionId,
        /// Token-bucket refill rate in packets per second. Zero blocks
        /// the session (or, for session 0, rejects unknown sessions).
        rate_pps: u32,
        /// Bucket depth in packets (burst tolerance).
        burst: u32,
        /// Shedding/eviction priority: 0 = most important, larger
        /// values shed first.
        priority: u8,
    },
}

/// Wire-decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SignalError {
    /// Fewer bytes than a complete frame.
    Truncated,
    /// Unknown message tag.
    UnknownTag(u8),
    /// Body contents inconsistent with the tag.
    Malformed(&'static str),
}

impl fmt::Display for SignalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignalError::Truncated => write!(f, "truncated signal frame"),
            SignalError::UnknownTag(t) => write!(f, "unknown signal tag {t:#04x}"),
            SignalError::Malformed(what) => write!(f, "malformed signal body: {what}"),
        }
    }
}

impl Error for SignalError {}

const TAG_START: u8 = 1;
const TAG_VNF_START: u8 = 2;
const TAG_VNF_END: u8 = 3;
const TAG_FORWARD_TAB: u8 = 4;
const TAG_SETTINGS: u8 = 5;
const TAG_STATS: u8 = 6;
const TAG_FENCED: u8 = 7;
const TAG_QUOTA: u8 = 8;

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u16(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut &[u8]) -> Result<String, SignalError> {
    if buf.len() < 2 {
        return Err(SignalError::Truncated);
    }
    let len = buf.get_u16() as usize;
    if buf.len() < len {
        return Err(SignalError::Truncated);
    }
    let s = std::str::from_utf8(&buf[..len])
        .map_err(|_| SignalError::Malformed("invalid utf-8"))?
        .to_owned();
    buf.advance(len);
    Ok(s)
}

impl Signal {
    /// Serializes the signal into one length-prefixed frame.
    pub fn to_bytes(&self) -> Bytes {
        let mut body = BytesMut::new();
        let tag = match self {
            Signal::NcStart { session } => {
                body.put_u16(session.value());
                TAG_START
            }
            Signal::NcVnfStart { data_center, count } => {
                put_string(&mut body, data_center);
                body.put_u32(*count);
                TAG_VNF_START
            }
            Signal::NcVnfEnd { tau_secs } => {
                body.put_u32(*tau_secs);
                TAG_VNF_END
            }
            Signal::NcForwardTab { table } => {
                body.put_u32(table.len() as u32);
                body.put_slice(table.as_bytes());
                TAG_FORWARD_TAB
            }
            Signal::NcSettings {
                session,
                role,
                data_port,
                block_size,
                generation_size,
                buffer_generations,
            } => {
                body.put_u16(session.value());
                body.put_u8(role.to_byte());
                body.put_u16(*data_port);
                body.put_u32(*block_size);
                body.put_u32(*generation_size);
                body.put_u32(*buffer_generations);
                TAG_SETTINGS
            }
            Signal::NcStats => TAG_STATS,
            Signal::NcQuota {
                session,
                rate_pps,
                burst,
                priority,
            } => {
                body.put_u16(session.value());
                body.put_u32(*rate_pps);
                body.put_u32(*burst);
                body.put_u8(*priority);
                TAG_QUOTA
            }
        };
        let mut frame = BytesMut::with_capacity(5 + body.len());
        frame.put_u8(tag);
        frame.put_u32(body.len() as u32);
        frame.put_slice(&body);
        frame.freeze()
    }

    /// Decodes one frame; returns the signal and the bytes consumed.
    ///
    /// # Errors
    ///
    /// [`SignalError::Truncated`], [`SignalError::UnknownTag`] or
    /// [`SignalError::Malformed`].
    pub fn from_bytes(data: &[u8]) -> Result<(Self, usize), SignalError> {
        if data.len() < 5 {
            return Err(SignalError::Truncated);
        }
        let tag = data[0];
        let len = u32::from_be_bytes([data[1], data[2], data[3], data[4]]) as usize;
        if data.len() < 5 + len {
            return Err(SignalError::Truncated);
        }
        let mut body = &data[5..5 + len];
        let sig = match tag {
            TAG_START => {
                if body.len() < 2 {
                    return Err(SignalError::Truncated);
                }
                Signal::NcStart {
                    session: SessionId::new(body.get_u16()),
                }
            }
            TAG_VNF_START => {
                let data_center = get_string(&mut body)?;
                if body.len() < 4 {
                    return Err(SignalError::Truncated);
                }
                Signal::NcVnfStart {
                    data_center,
                    count: body.get_u32(),
                }
            }
            TAG_VNF_END => {
                if body.len() < 4 {
                    return Err(SignalError::Truncated);
                }
                Signal::NcVnfEnd {
                    tau_secs: body.get_u32(),
                }
            }
            TAG_FORWARD_TAB => {
                let mut b = body;
                if b.len() < 4 {
                    return Err(SignalError::Truncated);
                }
                let tl = b.get_u32() as usize;
                if b.len() < tl {
                    return Err(SignalError::Truncated);
                }
                let table = std::str::from_utf8(&b[..tl])
                    .map_err(|_| SignalError::Malformed("invalid utf-8 table"))?
                    .to_owned();
                Signal::NcForwardTab { table }
            }
            TAG_SETTINGS => {
                if body.len() < 2 + 1 + 2 + 4 + 4 + 4 {
                    return Err(SignalError::Truncated);
                }
                let session = SessionId::new(body.get_u16());
                let role = VnfRoleWire::from_byte(body.get_u8())
                    .ok_or(SignalError::Malformed("bad role byte"))?;
                Signal::NcSettings {
                    session,
                    role,
                    data_port: body.get_u16(),
                    block_size: body.get_u32(),
                    generation_size: body.get_u32(),
                    buffer_generations: body.get_u32(),
                }
            }
            TAG_STATS => Signal::NcStats,
            TAG_QUOTA => {
                if body.len() < 2 + 4 + 4 + 1 {
                    return Err(SignalError::Truncated);
                }
                Signal::NcQuota {
                    session: SessionId::new(body.get_u16()),
                    rate_pps: body.get_u32(),
                    burst: body.get_u32(),
                    priority: body.get_u8(),
                }
            }
            t => return Err(SignalError::UnknownTag(t)),
        };
        Ok((sig, 5 + len))
    }
}

/// An epoch-fenced, sequence-numbered signal frame.
///
/// The crash-safe controller (DESIGN.md §13) wraps every push in this
/// envelope so receivers can reject signals from a superseded controller
/// incarnation (`epoch` fencing) and acknowledge retransmitted
/// duplicates without re-applying them (`seq` idempotence). On the wire
/// it is an ordinary signal frame with tag 7 whose body is
/// `epoch:u64 | seq:u64 | <inner legacy frame>`, so pre-fencing
/// receivers fail cleanly with [`SignalError::UnknownTag`] instead of
/// misparsing, and fencing receivers still decode bare legacy frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FencedSignal {
    /// Controller incarnation: bumped on every restart. Receivers
    /// reject frames whose epoch is below the highest they have seen.
    pub epoch: u64,
    /// Per-(controller, destination) sequence number, starting at 1.
    /// Within one epoch a receiver applies each seq at most once.
    pub seq: u64,
    /// The wrapped control signal.
    pub signal: Signal,
}

impl FencedSignal {
    /// Serializes the fenced frame (tag 7, fence header, inner frame).
    pub fn to_bytes(&self) -> Bytes {
        let inner = self.signal.to_bytes();
        let mut body = BytesMut::with_capacity(16 + inner.len());
        body.put_u64(self.epoch);
        body.put_u64(self.seq);
        body.put_slice(&inner);
        let mut frame = BytesMut::with_capacity(5 + body.len());
        frame.put_u8(TAG_FENCED);
        frame.put_u32(body.len() as u32);
        frame.put_slice(&body);
        frame.freeze()
    }

    /// Decodes one fenced frame; returns the frame and bytes consumed.
    ///
    /// # Errors
    ///
    /// [`SignalError::Truncated`], [`SignalError::UnknownTag`] (not a
    /// tag-7 frame, or unknown inner tag) or [`SignalError::Malformed`]
    /// (inner frame shorter than the declared body, or a fenced frame
    /// nested inside another fenced frame).
    pub fn from_bytes(data: &[u8]) -> Result<(Self, usize), SignalError> {
        if data.len() < 5 {
            return Err(SignalError::Truncated);
        }
        if data[0] != TAG_FENCED {
            return Err(SignalError::UnknownTag(data[0]));
        }
        let len = u32::from_be_bytes([data[1], data[2], data[3], data[4]]) as usize;
        if data.len() < 5 + len {
            return Err(SignalError::Truncated);
        }
        let mut body = &data[5..5 + len];
        if body.len() < 16 {
            return Err(SignalError::Truncated);
        }
        let epoch = body.get_u64();
        let seq = body.get_u64();
        if !body.is_empty() && body[0] == TAG_FENCED {
            return Err(SignalError::Malformed("nested fenced frame"));
        }
        let (signal, used) = Signal::from_bytes(body)?;
        if used != body.len() {
            return Err(SignalError::Malformed("trailing bytes after inner frame"));
        }
        Ok((FencedSignal { epoch, seq, signal }, 5 + len))
    }
}

/// Either wire shape a control socket can receive: a bare frame (any
/// tag but 7) or an epoch-fenced envelope (tag 7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SignalFrame {
    /// A pre-fencing frame with no delivery metadata.
    Legacy(Signal),
    /// An epoch-fenced, sequence-numbered frame.
    Fenced(FencedSignal),
}

impl SignalFrame {
    /// Decodes one frame of either shape; returns it and the bytes
    /// consumed.
    ///
    /// # Errors
    ///
    /// Same as [`Signal::from_bytes`] / [`FencedSignal::from_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<(Self, usize), SignalError> {
        if !data.is_empty() && data[0] == TAG_FENCED {
            let (fenced, used) = FencedSignal::from_bytes(data)?;
            Ok((SignalFrame::Fenced(fenced), used))
        } else {
            let (signal, used) = Signal::from_bytes(data)?;
            Ok((SignalFrame::Legacy(signal), used))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Signal> {
        vec![
            Signal::NcStart {
                session: SessionId::new(7),
            },
            Signal::NcVnfStart {
                data_center: "ec2-oregon".into(),
                count: 3,
            },
            Signal::NcVnfEnd { tau_secs: 600 },
            Signal::NcForwardTab {
                table: "session 1 10.0.0.1:4000 10.0.0.2:4000\n".into(),
            },
            Signal::NcSettings {
                session: SessionId::new(9),
                role: VnfRoleWire::Encoder,
                data_port: 4000,
                block_size: 1460,
                generation_size: 4,
                buffer_generations: 1024,
            },
            Signal::NcStats,
            Signal::NcQuota {
                session: SessionId::new(11),
                rate_pps: 50_000,
                burst: 256,
                priority: 2,
            },
        ]
    }

    #[test]
    fn roundtrip_every_variant() {
        for sig in samples() {
            let wire = sig.to_bytes();
            let (back, consumed) = Signal::from_bytes(&wire).unwrap();
            assert_eq!(back, sig);
            assert_eq!(consumed, wire.len());
        }
    }

    #[test]
    fn frames_concatenate() {
        let mut stream = Vec::new();
        for sig in samples() {
            stream.extend_from_slice(&sig.to_bytes());
        }
        let mut offset = 0;
        let mut decoded = Vec::new();
        while offset < stream.len() {
            let (sig, used) = Signal::from_bytes(&stream[offset..]).unwrap();
            decoded.push(sig);
            offset += used;
        }
        assert_eq!(decoded, samples());
    }

    #[test]
    fn truncation_and_bad_tags_detected() {
        let wire = samples()[1].to_bytes();
        for cut in 0..wire.len() {
            assert_eq!(
                Signal::from_bytes(&wire[..cut]).unwrap_err(),
                SignalError::Truncated,
                "cut at {cut}"
            );
        }
        let mut bad = wire.to_vec();
        bad[0] = 0xEE;
        assert_eq!(
            Signal::from_bytes(&bad).unwrap_err(),
            SignalError::UnknownTag(0xEE)
        );
    }

    #[test]
    fn recoder_role_has_its_own_byte_and_legacy_bytes_are_stable() {
        // Wire compat: bytes 1–3 keep their pre-Recoder meaning, Recoder
        // gets the fresh byte 4.
        assert_eq!(VnfRoleWire::Encoder.to_byte(), 1);
        assert_eq!(VnfRoleWire::Decoder.to_byte(), 2);
        assert_eq!(VnfRoleWire::Forwarder.to_byte(), 3);
        assert_eq!(VnfRoleWire::Recoder.to_byte(), 4);
        for b in 1..=4u8 {
            let role = VnfRoleWire::from_byte(b).unwrap();
            assert_eq!(role.to_byte(), b);
        }
        let sig = Signal::NcSettings {
            session: SessionId::new(3),
            role: VnfRoleWire::Recoder,
            data_port: 4000,
            block_size: 1460,
            generation_size: 4,
            buffer_generations: 1024,
        };
        let (back, _) = Signal::from_bytes(&sig.to_bytes()).unwrap();
        assert_eq!(back, sig);
    }

    #[test]
    fn fenced_frames_roundtrip_every_variant() {
        for (i, sig) in samples().into_iter().enumerate() {
            let fenced = FencedSignal {
                epoch: 3,
                seq: i as u64 + 1,
                signal: sig,
            };
            let wire = fenced.to_bytes();
            assert_eq!(wire[0], 7, "fenced frames use tag 7");
            let (back, used) = FencedSignal::from_bytes(&wire).unwrap();
            assert_eq!(back, fenced);
            assert_eq!(used, wire.len());
            // The generic frame decoder takes both shapes.
            let (frame, used2) = SignalFrame::from_bytes(&wire).unwrap();
            assert_eq!(frame, SignalFrame::Fenced(back));
            assert_eq!(used2, wire.len());
        }
        for sig in samples() {
            let wire = sig.to_bytes();
            let (frame, _) = SignalFrame::from_bytes(&wire).unwrap();
            assert_eq!(frame, SignalFrame::Legacy(sig));
        }
    }

    #[test]
    fn fenced_truncation_and_junk_detected() {
        let fenced = FencedSignal {
            epoch: u64::MAX,
            seq: 42,
            signal: samples()[3].clone(),
        };
        let wire = fenced.to_bytes();
        for cut in 0..wire.len() {
            assert!(
                FencedSignal::from_bytes(&wire[..cut]).is_err(),
                "cut at {cut}"
            );
        }
        // Trailing garbage inside the declared body is rejected, not
        // silently dropped.
        let mut padded = wire.to_vec();
        let len = u32::from_be_bytes([padded[1], padded[2], padded[3], padded[4]]);
        padded.push(0xAB);
        padded[1..5].copy_from_slice(&(len + 1).to_be_bytes());
        assert_eq!(
            FencedSignal::from_bytes(&padded).unwrap_err(),
            SignalError::Malformed("trailing bytes after inner frame")
        );
        // A fenced frame may not nest another fenced frame.
        let nested = FencedSignal {
            epoch: 1,
            seq: 1,
            signal: samples()[0].clone(),
        };
        let mut body = Vec::new();
        body.extend_from_slice(&1u64.to_be_bytes());
        body.extend_from_slice(&2u64.to_be_bytes());
        body.extend_from_slice(&nested.to_bytes());
        let mut outer = vec![7u8];
        outer.extend_from_slice(&(body.len() as u32).to_be_bytes());
        outer.extend_from_slice(&body);
        assert_eq!(
            FencedSignal::from_bytes(&outer).unwrap_err(),
            SignalError::Malformed("nested fenced frame")
        );
    }

    #[test]
    fn bad_role_byte_rejected() {
        let sig = Signal::NcSettings {
            session: SessionId::new(1),
            role: VnfRoleWire::Decoder,
            data_port: 1,
            block_size: 2,
            generation_size: 3,
            buffer_generations: 4,
        };
        let mut wire = sig.to_bytes().to_vec();
        wire[5 + 2] = 0xFF; // role byte
        assert_eq!(
            Signal::from_bytes(&wire).unwrap_err(),
            SignalError::Malformed("bad role byte")
        );
    }
}
