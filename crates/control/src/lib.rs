//! The NFV control plane (Sec. III-A of the paper).
//!
//! A central controller launches coding VNFs in data centers, configures
//! them and steers traffic by talking to a daemon on every coding node:
//!
//! * [`signal`] — the paper's five control signals (`NC_START`,
//!   `NC_VNF_START`, `NC_VNF_END`, `NC_FORWARD_TAB`, `NC_SETTINGS`) plus
//!   the `NC_STATS` observability query, with a length-prefixed wire
//!   codec usable over any byte transport;
//! * [`fwdtab`] — the forwarding table, which the paper keeps as "a text
//!   file, recording the next hops' IP addresses for each relevant
//!   multicast session": parser, serializer, and diff (Table III measures
//!   partial updates);
//! * [`daemon`] — the per-VNF daemon state machine: applies settings,
//!   pauses/swaps/resumes on table updates (the paper's `SIGUSR1` dance),
//!   honours the τ-delayed `NC_VNF_END` shutdown;
//! * [`diff`] — turns two [`ncvnf_deploy::Deployment`]s into the signal
//!   batch that morphs one into the other;
//! * [`liveness`] — heartbeat bookkeeping: the Alive → Suspect → Dead
//!   failure detector fed by the relays' beacon frames;
//! * [`failover`] — reroutes forwarding tables around a dead node and
//!   renders the `NC_FORWARD_TAB` deltas to push to survivors;
//! * [`metrics`] — the control-plane slice of the `ncvnf-obs` registry:
//!   liveness transitions, scaling observations, table-push latency,
//!   and the journal/sender/reconcile instrumentation;
//! * [`journal`] — the crash-safety layer (DESIGN.md §13): an
//!   append-only checksummed write-ahead log of [`ControlRecord`]s with
//!   torn-tail-tolerant replay into a [`ControllerState`];
//! * [`sender`] — reliable, epoch-fenced signal delivery: every push is
//!   a [`FencedSignal`] retried with exponential backoff until ACKed;
//! * [`reconcile()`] — restart reconciliation: diff the replayed journal
//!   belief against live `NC_STATS` observations, re-adopt healthy
//!   VNFs, re-push diverged tables, expire overdue τ-pool entries;
//! * [`autoscale`] — the closed control loop (DESIGN.md §15): polls live
//!   relay stats, runs them through the scaling controller's ρ/τ
//!   hysteresis, journals every adopted decision write-ahead, actuates
//!   via fenced pushes, and winds idle VNFs to zero until traffic wakes
//!   them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autoscale;
pub mod daemon;
pub mod diff;
pub mod failover;
pub mod fwdtab;
pub mod journal;
pub mod liveness;
pub mod metrics;
pub mod reconcile;
pub mod sender;
pub mod signal;
pub mod telemetry;

pub use autoscale::{
    AutoscaleConfig, AutoscaleError, Autoscaler, ControlLink, PollReport, RelayTarget,
};
pub use daemon::{Daemon, DaemonEvent, DaemonState};
pub use failover::{failover_signals, plan_failover, reroute_table};
pub use fwdtab::ForwardingTable;
pub use journal::{
    ControlRecord, ControllerState, Journal, NodeBelief, NodeStatus, ReplayReport, SessionSpec,
};
pub use liveness::{LivenessConfig, LivenessEvent, LivenessState, LivenessTracker};
pub use metrics::ControlMetrics;
pub use reconcile::{reconcile, NodeObservation, ReconcilePlan, ReconcileReport};
pub use sender::{SendError, SendReceipt, SenderConfig, SignalSender};
pub use signal::{FencedSignal, Signal, SignalError, SignalFrame, VnfRoleWire};
pub use telemetry::{DataplaneHealth, Telemetry};
