//! The NFV control plane (Sec. III-A of the paper).
//!
//! A central controller launches coding VNFs in data centers, configures
//! them and steers traffic by talking to a daemon on every coding node:
//!
//! * [`signal`] — the paper's five control signals (`NC_START`,
//!   `NC_VNF_START`, `NC_VNF_END`, `NC_FORWARD_TAB`, `NC_SETTINGS`) plus
//!   the `NC_STATS` observability query, with a length-prefixed wire
//!   codec usable over any byte transport;
//! * [`fwdtab`] — the forwarding table, which the paper keeps as "a text
//!   file, recording the next hops' IP addresses for each relevant
//!   multicast session": parser, serializer, and diff (Table III measures
//!   partial updates);
//! * [`daemon`] — the per-VNF daemon state machine: applies settings,
//!   pauses/swaps/resumes on table updates (the paper's `SIGUSR1` dance),
//!   honours the τ-delayed `NC_VNF_END` shutdown;
//! * [`diff`] — turns two [`ncvnf_deploy::Deployment`]s into the signal
//!   batch that morphs one into the other;
//! * [`liveness`] — heartbeat bookkeeping: the Alive → Suspect → Dead
//!   failure detector fed by the relays' beacon frames;
//! * [`failover`] — reroutes forwarding tables around a dead node and
//!   renders the `NC_FORWARD_TAB` deltas to push to survivors;
//! * [`metrics`] — the control-plane slice of the `ncvnf-obs` registry:
//!   liveness transitions, scaling observations, table-push latency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod diff;
pub mod failover;
pub mod fwdtab;
pub mod liveness;
pub mod metrics;
pub mod signal;
pub mod telemetry;

pub use daemon::{Daemon, DaemonEvent, DaemonState};
pub use failover::{failover_signals, plan_failover, reroute_table};
pub use fwdtab::ForwardingTable;
pub use liveness::{LivenessConfig, LivenessEvent, LivenessState, LivenessTracker};
pub use metrics::ControlMetrics;
pub use signal::{Signal, SignalError, VnfRoleWire};
pub use telemetry::{DataplaneHealth, Telemetry};
