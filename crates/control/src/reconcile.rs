//! Restart reconciliation: journal belief vs live network.
//!
//! After a crash the replayed [`ControllerState`] is what the
//! controller *intended*; the network holds what actually *landed*
//! (write-ahead means the journal can be ahead of reality by exactly
//! the in-flight push the crash interrupted). Reconciliation closes the
//! gap in three steps (DESIGN.md §13):
//!
//! 1. **Observe** — query every journaled node's `NC_STATS` snapshot
//!    and read back its fence gauges (`relay.ctrl_epoch`,
//!    `relay.ctrl_seq`) and table digest (`relay.table_digest`).
//! 2. **Plan** — pure diff: τ-expired lingerers are *expired*, silent
//!    nodes are *unreachable* (failover territory), nodes whose live
//!    digest matches the journal belief are *re-adopted* untouched, and
//!    everything else gets its believed table *re-pushed*.
//! 3. **Act** — re-push the diverged tables under the new epoch via
//!    [`SignalSender`], which fences off any zombie predecessor.

use std::net::SocketAddr;

use crate::journal::{ControllerState, NodeStatus};
use crate::metrics::ControlMetrics;
use crate::sender::{SendError, SignalSender};
use crate::signal::Signal;

/// What one live node reported during the observe step.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeObservation {
    /// Node id (journal key).
    pub node: u32,
    /// Highest controller epoch the node has accepted.
    pub ctrl_epoch: u64,
    /// Last applied sequence number within that epoch.
    pub ctrl_seq: u64,
    /// Digest of the node's live forwarding table
    /// ([`crate::ForwardingTable::digest`]), if the gauge was present.
    pub table_digest: Option<u64>,
    /// The relay's `relay.daemon_state` gauge (0 Idle, 1 Running,
    /// 2 Paused, 3 Draining, 4 Stopped), if present. Lets the planner
    /// spot a journaled drain whose `NC_VNF_END` never landed.
    pub daemon_state: Option<u8>,
}

/// Reads a numeric value out of a flat snapshot-JSON section by metric
/// name (the `ncvnf-obs` `Snapshot::to_json` format). A deliberate
/// string scan, not a JSON parser: metric names are the full keys and
/// values are bare numbers, so this stays dependency-free.
pub fn snapshot_value(json: &str, name: &str) -> Option<f64> {
    let needle = format!("\"{name}\":");
    let at = json.find(&needle)?;
    let rest = &json[at + needle.len()..];
    let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Builds a [`NodeObservation`] from a node's `NC_STATS` JSON reply.
pub fn observation_from_stats(node: u32, json: &str) -> NodeObservation {
    NodeObservation {
        node,
        ctrl_epoch: snapshot_value(json, "relay.ctrl_epoch").unwrap_or(0.0) as u64,
        ctrl_seq: snapshot_value(json, "relay.ctrl_seq").unwrap_or(0.0) as u64,
        table_digest: snapshot_value(json, "relay.table_digest").map(|v| v as u64),
        daemon_state: snapshot_value(json, "relay.daemon_state").map(|v| v as u8),
    }
}

/// The reconciliation plan: what to do with each journaled node.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReconcilePlan {
    /// Healthy nodes whose live table matches the journal belief; the
    /// controller re-adopts them without touching them.
    pub readopt: Vec<u32>,
    /// Nodes whose live table diverged (typically the push the crash
    /// interrupted): `(node, believed table text)` to re-push.
    pub repush: Vec<(u32, String)>,
    /// Lingering instances whose τ deadline passed during the outage;
    /// drop them from the pool and stop billing them.
    pub expired: Vec<u32>,
    /// Journaled nodes that did not answer the observe step — dead or
    /// partitioned; failover planning takes over from here.
    pub unreachable: Vec<u32>,
    /// Nodes the journal believes are draining but whose live daemon
    /// still reports another state — the `NC_VNF_END` the crash
    /// interrupted never landed; re-push it with the remaining τ.
    pub redrain: Vec<u32>,
}

/// Pure planning step: diffs the replayed state against observations
/// taken at controller-clock time `now_secs`. Nodes are bucketed in
/// id order, each into exactly one bucket.
pub fn plan(
    state: &ControllerState,
    observations: &[NodeObservation],
    now_secs: f64,
) -> ReconcilePlan {
    let mut plan = ReconcilePlan::default();
    for (&node, belief) in &state.nodes {
        let draining = if let NodeStatus::Draining { deadline_secs } = belief.status {
            if deadline_secs <= now_secs {
                plan.expired.push(node);
                continue;
            }
            true
        } else {
            false
        };
        let Some(obs) = observations.iter().find(|o| o.node == node) else {
            plan.unreachable.push(node);
            continue;
        };
        // The journal says this node was sent NC_VNF_END, but its live
        // daemon is still Idle/Running/Paused: the drain signal is the
        // push the crash interrupted. (Draining or Stopped daemons need
        // nothing; an absent gauge proves nothing either way.)
        if draining && matches!(obs.daemon_state, Some(s) if s < 3) {
            plan.redrain.push(node);
            continue;
        }
        if obs.table_digest == Some(belief.table.digest()) {
            plan.readopt.push(node);
        } else {
            plan.repush.push((node, belief.table.to_text()));
        }
    }
    plan
}

/// Outcome of a full reconciliation pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconcileReport {
    /// The plan that was executed.
    pub plan: ReconcilePlan,
    /// Diverged tables successfully re-pushed (fenced ACK received).
    pub repushed_ok: u32,
    /// Interrupted drains successfully re-sent (`NC_VNF_END` with the
    /// remaining τ, fenced ACK received).
    pub redrained_ok: u32,
    /// Re-pushes (tables or drains) that failed, with the sender's
    /// error rendered.
    pub repush_failures: Vec<(u32, String)>,
}

/// Observe → plan → act against live relays: queries every journaled
/// node's `NC_STATS` through `sender`, plans at `now_secs`, then
/// re-pushes each diverged table as a fenced `NC_FORWARD_TAB` under the
/// sender's (new) epoch. Unreachable nodes and failed re-pushes are
/// reported, not fatal — failover handles them.
pub fn reconcile(
    sender: &mut SignalSender,
    state: &ControllerState,
    now_secs: f64,
    metrics: Option<&ControlMetrics>,
) -> ReconcileReport {
    let mut observations = Vec::new();
    for (&node, belief) in &state.nodes {
        // Expired lingerers are not worth a probe; plan() buckets them.
        if let NodeStatus::Draining { deadline_secs } = belief.status {
            if deadline_secs <= now_secs {
                continue;
            }
        }
        let Ok(addr) = belief.control_addr.parse::<SocketAddr>() else {
            continue;
        };
        if let Ok(json) = sender.query_stats(addr) {
            observations.push(observation_from_stats(node, &json));
        }
    }
    let plan = plan(state, &observations, now_secs);
    let mut repushed_ok = 0;
    let mut repush_failures = Vec::new();
    for (node, table) in &plan.repush {
        let outcome = state.nodes[node]
            .control_addr
            .parse::<SocketAddr>()
            .map_err(|e| SendError::Rejected(format!("bad control addr: {e}")))
            .and_then(|addr| {
                sender.push(
                    addr,
                    &Signal::NcForwardTab {
                        table: table.clone(),
                    },
                )
            });
        match outcome {
            Ok(_) => repushed_ok += 1,
            Err(e) => repush_failures.push((*node, e.to_string())),
        }
    }
    let mut redrained_ok = 0;
    for node in &plan.redrain {
        let belief = &state.nodes[node];
        let NodeStatus::Draining { deadline_secs } = belief.status else {
            continue;
        };
        // Re-send the interrupted NC_VNF_END with the τ that remains.
        let tau_secs = (deadline_secs - now_secs).ceil().max(1.0) as u32;
        let outcome = belief
            .control_addr
            .parse::<SocketAddr>()
            .map_err(|e| SendError::Rejected(format!("bad control addr: {e}")))
            .and_then(|addr| sender.push(addr, &Signal::NcVnfEnd { tau_secs }));
        match outcome {
            Ok(_) => redrained_ok += 1,
            Err(e) => repush_failures.push((*node, e.to_string())),
        }
    }
    if let Some(m) = metrics {
        m.record_reconcile(
            plan.readopt.len() as u64,
            repushed_ok as u64,
            plan.expired.len() as u64,
            plan.unreachable.len() as u64,
        );
    }
    ReconcileReport {
        plan,
        repushed_ok,
        redrained_ok,
        repush_failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{ControlRecord, ControllerState};

    fn replayed_state() -> ControllerState {
        ControllerState::replay(&[
            ControlRecord::EpochStarted { epoch: 1 },
            ControlRecord::VnfLaunched {
                node: 0,
                data_center: "dc".into(),
                control_addr: "127.0.0.1:9000".into(),
            },
            ControlRecord::VnfLaunched {
                node: 1,
                data_center: "dc".into(),
                control_addr: "127.0.0.1:9001".into(),
            },
            ControlRecord::VnfLaunched {
                node: 2,
                data_center: "dc".into(),
                control_addr: "127.0.0.1:9002".into(),
            },
            ControlRecord::VnfLaunched {
                node: 3,
                data_center: "dc".into(),
                control_addr: "127.0.0.1:9003".into(),
            },
            ControlRecord::TablePushed {
                node: 0,
                epoch: 1,
                seq: 1,
                table: "session 1 a:1\n".into(),
            },
            ControlRecord::TablePushed {
                node: 1,
                epoch: 1,
                seq: 1,
                table: "session 1 b:1\n".into(),
            },
            ControlRecord::VnfEnded {
                node: 3,
                linger_deadline_secs: 500.0,
            },
        ])
    }

    #[test]
    fn plan_buckets_every_node_exactly_once() {
        let state = replayed_state();
        let healthy_digest = state.nodes[&0].table.digest();
        let observations = vec![
            NodeObservation {
                node: 0,
                ctrl_epoch: 1,
                ctrl_seq: 1,
                table_digest: Some(healthy_digest),
                daemon_state: Some(1),
            },
            NodeObservation {
                node: 1,
                ctrl_epoch: 1,
                ctrl_seq: 0,
                table_digest: Some(12345), // diverged
                daemon_state: Some(1),
            },
            // node 2 answered nothing, node 3 expired at 500
        ];
        let p = plan(&state, &observations, 600.0);
        assert_eq!(p.readopt, vec![0]);
        assert_eq!(p.repush, vec![(1, state.nodes[&1].table.to_text())]);
        assert_eq!(p.unreachable, vec![2]);
        assert_eq!(p.expired, vec![3]);
    }

    #[test]
    fn lingerer_inside_tau_is_probed_not_expired() {
        let state = replayed_state();
        let obs = vec![NodeObservation {
            node: 3,
            ctrl_epoch: 1,
            ctrl_seq: 0,
            table_digest: Some(state.nodes[&3].table.digest()),
            daemon_state: Some(3),
        }];
        let p = plan(&state, &obs, 100.0);
        assert!(p.readopt.contains(&3), "lingerer still inside τ re-adopted");
        assert!(p.expired.is_empty());
        assert!(p.redrain.is_empty());
    }

    #[test]
    fn journaled_drain_that_never_landed_is_redrained() {
        let state = replayed_state();
        // The journal says node 3 drains until 500, but the live daemon
        // still reports Running: the NC_VNF_END was the interrupted push.
        let obs = vec![NodeObservation {
            node: 3,
            ctrl_epoch: 1,
            ctrl_seq: 0,
            table_digest: Some(state.nodes[&3].table.digest()),
            daemon_state: Some(1),
        }];
        let p = plan(&state, &obs, 100.0);
        assert_eq!(p.redrain, vec![3]);
        assert!(p.readopt.is_empty());
        assert!(p.expired.is_empty());
        // A node whose gauge is missing proves nothing: not redrained.
        let obs = vec![NodeObservation {
            node: 3,
            ctrl_epoch: 1,
            ctrl_seq: 0,
            table_digest: Some(state.nodes[&3].table.digest()),
            daemon_state: None,
        }];
        let p = plan(&state, &obs, 100.0);
        assert!(p.redrain.is_empty());
        assert!(p.readopt.contains(&3));
    }

    #[test]
    fn snapshot_values_scan_the_json_shape() {
        let json = r#"{"counters":{"relay.signals":4},"gauges":{"relay.ctrl_epoch":2,"relay.ctrl_seq":7,"relay.table_digest":8888123,"relay.daemon_state":3}}"#;
        assert_eq!(snapshot_value(json, "relay.ctrl_epoch"), Some(2.0));
        assert_eq!(snapshot_value(json, "relay.signals"), Some(4.0));
        assert_eq!(snapshot_value(json, "missing.metric"), None);
        let obs = observation_from_stats(9, json);
        assert_eq!(
            obs,
            NodeObservation {
                node: 9,
                ctrl_epoch: 2,
                ctrl_seq: 7,
                table_digest: Some(8888123),
                daemon_state: Some(3),
            }
        );
    }

    #[test]
    fn missing_digest_gauge_forces_a_repush() {
        let state = replayed_state();
        let obs = vec![NodeObservation {
            node: 0,
            ctrl_epoch: 0,
            ctrl_seq: 0,
            table_digest: None,
            daemon_state: None,
        }];
        let p = plan(&state, &obs, 0.0);
        assert_eq!(p.repush.len(), 1, "no digest means no proof: re-push");
        assert!(p.readopt.is_empty());
    }
}
