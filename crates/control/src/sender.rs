//! Reliable, epoch-fenced control-signal delivery.
//!
//! The paper's controller pushes signals over UDP fire-and-forget; a
//! lost `NC_FORWARD_TAB` silently leaves a relay routing into a black
//! hole. [`SignalSender`] closes that gap: every push is wrapped in a
//! [`FencedSignal`] (controller epoch + per-destination sequence
//! number), sent, and retransmitted with exponential backoff until the
//! receiver acknowledges that exact sequence number or the retry budget
//! runs out. Receivers deduplicate by sequence number, so at-least-once
//! delivery becomes exactly-once *application* (DESIGN.md §13).
//!
//! ACK grammar (one UDP datagram from the receiver):
//!
//! ```text
//! OK <seq>                 applied (or deduplicated)
//! ERR stale-epoch <seq>    fenced off by a newer controller epoch
//! ERR <reason> <seq>       decoded but rejected (e.g. bad-table)
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

use crate::metrics::ControlMetrics;
use crate::signal::{FencedSignal, Signal};

/// Retry policy for un-ACKed pushes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SenderConfig {
    /// How long to wait for an ACK before retransmitting.
    pub ack_timeout: Duration,
    /// Total transmission attempts per push (first send included).
    pub max_attempts: u32,
    /// Backoff before attempt `n+1` is `backoff_base << (n-1)`.
    pub backoff_base: Duration,
}

impl Default for SenderConfig {
    fn default() -> Self {
        SenderConfig {
            ack_timeout: Duration::from_millis(150),
            max_attempts: 5,
            backoff_base: Duration::from_millis(25),
        }
    }
}

/// Why a push did not land.
#[derive(Debug)]
pub enum SendError {
    /// A socket operation failed outright.
    Io(std::io::Error),
    /// Every attempt timed out without a matching ACK.
    Timeout {
        /// Transmission attempts made.
        attempts: u32,
    },
    /// The receiver is fenced on a newer controller epoch — this
    /// controller incarnation has been superseded and must stop.
    StaleEpoch,
    /// The receiver decoded the signal but refused to apply it.
    Rejected(String),
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::Io(e) => write!(f, "signal push I/O error: {e}"),
            SendError::Timeout { attempts } => {
                write!(f, "no ACK after {attempts} attempts")
            }
            SendError::StaleEpoch => write!(f, "fenced off: receiver holds a newer epoch"),
            SendError::Rejected(reason) => write!(f, "receiver rejected signal: {reason}"),
        }
    }
}

impl Error for SendError {}

/// Proof of delivery for one push.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendReceipt {
    /// The sequence number the receiver acknowledged.
    pub seq: u64,
    /// Transmission attempts it took.
    pub attempts: u32,
    /// Push-to-ACK latency (of the successful attempt's wait).
    pub rtt: Duration,
}

/// What a receiver's ACK datagram said.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Ack {
    Ok { seq: Option<u64> },
    Err { reason: String, seq: Option<u64> },
}

/// Parses an `OK`/`ERR` acknowledgement datagram. Returns `None` for
/// anything else (e.g. an `NC_STATS` JSON reply).
fn parse_ack(reply: &[u8]) -> Option<Ack> {
    let text = std::str::from_utf8(reply).ok()?;
    let mut parts = text.split_whitespace();
    match parts.next()? {
        "OK" => {
            let seq = parts.next().and_then(|s| s.parse().ok());
            Some(Ack::Ok { seq })
        }
        "ERR" => {
            let rest: Vec<&str> = parts.collect();
            let (reason, seq) = match rest.split_last() {
                Some((last, head)) => match last.parse::<u64>() {
                    Ok(seq) => (head.join(" "), Some(seq)),
                    Err(_) => (rest.join(" "), None),
                },
                None => (String::new(), None),
            };
            Some(Ack::Err { reason, seq })
        }
        _ => None,
    }
}

/// The controller's sending half: owns the epoch, the per-destination
/// sequence counters, and the retry loop.
#[derive(Debug)]
pub struct SignalSender {
    socket: UdpSocket,
    epoch: u64,
    seqs: HashMap<SocketAddr, u64>,
    config: SenderConfig,
    metrics: Option<ControlMetrics>,
}

impl SignalSender {
    /// Binds a sender socket on loopback, fencing every push with
    /// `epoch`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn new(epoch: u64, config: SenderConfig) -> std::io::Result<Self> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        Ok(SignalSender {
            socket,
            epoch,
            seqs: HashMap::new(),
            config,
            metrics: None,
        })
    }

    /// Attaches a metrics bundle; pushes, retries, failures and ACK
    /// latency record into it.
    pub fn with_metrics(mut self, metrics: ControlMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The epoch stamped on every outbound frame.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The sequence number the next push to `to` will carry.
    pub fn next_seq(&self, to: SocketAddr) -> u64 {
        self.seqs.get(&to).copied().unwrap_or(0) + 1
    }

    /// The sender's local socket address (ACKs return here).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Pushes `signal` to `to` in a fenced frame and blocks until the
    /// receiver ACKs that exact sequence number, retransmitting with
    /// exponential backoff up to the configured attempt budget.
    ///
    /// # Errors
    ///
    /// [`SendError::Timeout`] when the budget runs out,
    /// [`SendError::StaleEpoch`] when the receiver is fenced on a newer
    /// epoch (stop this controller), [`SendError::Rejected`] when the
    /// receiver refuses the signal, [`SendError::Io`] on socket errors.
    pub fn push(&mut self, to: SocketAddr, signal: &Signal) -> Result<SendReceipt, SendError> {
        let seq = {
            let counter = self.seqs.entry(to).or_insert(0);
            *counter += 1;
            *counter
        };
        if let Some(m) = &self.metrics {
            m.record_sender_push();
        }
        let wire = FencedSignal {
            epoch: self.epoch,
            seq,
            signal: signal.clone(),
        }
        .to_bytes();
        let mut buf = [0u8; 2048];
        let mut attempts = 0;
        loop {
            attempts += 1;
            let sent_at = Instant::now();
            self.socket.send_to(&wire, to).map_err(SendError::Io)?;
            match self.await_ack(to, seq, &mut buf)? {
                Some(Ack::Ok { .. }) => {
                    let rtt = sent_at.elapsed();
                    if let Some(m) = &self.metrics {
                        m.record_sender_ack_ns(rtt.as_nanos() as u64);
                    }
                    return Ok(SendReceipt { seq, attempts, rtt });
                }
                Some(Ack::Err { reason, .. }) => {
                    return if reason == "stale-epoch" {
                        Err(SendError::StaleEpoch)
                    } else {
                        Err(SendError::Rejected(reason))
                    };
                }
                None => {}
            }
            if attempts >= self.config.max_attempts {
                if let Some(m) = &self.metrics {
                    m.record_sender_failure();
                }
                return Err(SendError::Timeout { attempts });
            }
            if let Some(m) = &self.metrics {
                m.record_sender_retry();
            }
            std::thread::sleep(self.config.backoff_base * (1 << (attempts - 1).min(8)));
        }
    }

    /// Sends a legacy (unfenced) `NC_STATS` query and returns the JSON
    /// snapshot reply, with the same timeout/retry budget as a push.
    /// Stats queries are read-only, so they are deliberately not
    /// sequence-numbered: a reconciliation pass may ask many times.
    ///
    /// # Errors
    ///
    /// [`SendError::Timeout`] or [`SendError::Io`].
    pub fn query_stats(&mut self, to: SocketAddr) -> Result<String, SendError> {
        let wire = Signal::NcStats.to_bytes();
        let mut buf = vec![0u8; 65536];
        let mut attempts = 0;
        loop {
            attempts += 1;
            self.socket.send_to(&wire, to).map_err(SendError::Io)?;
            let deadline = Instant::now() + self.config.ack_timeout;
            loop {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                self.socket
                    .set_read_timeout(Some(remaining))
                    .map_err(SendError::Io)?;
                match self.socket.recv_from(&mut buf) {
                    Ok((n, src)) if src == to && buf.first() == Some(&b'{') => {
                        if let Ok(json) = std::str::from_utf8(&buf[..n]) {
                            return Ok(json.to_owned());
                        }
                    }
                    Ok(_) => {} // late ACK or foreign datagram: keep waiting
                    Err(ref e) if is_timeout(e) => break,
                    Err(e) => return Err(SendError::Io(e)),
                }
            }
            if attempts >= self.config.max_attempts {
                return Err(SendError::Timeout { attempts });
            }
            std::thread::sleep(self.config.backoff_base * (1 << (attempts - 1).min(8)));
        }
    }

    /// Waits out one ACK window for `(to, seq)`. Returns `Ok(None)` on
    /// timeout (caller retries), the parsed ACK when the right one
    /// arrives; stray datagrams and ACKs for older sequence numbers are
    /// skipped.
    fn await_ack(
        &self,
        to: SocketAddr,
        seq: u64,
        buf: &mut [u8],
    ) -> Result<Option<Ack>, SendError> {
        let deadline = Instant::now() + self.config.ack_timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Ok(None);
            }
            self.socket
                .set_read_timeout(Some(remaining))
                .map_err(SendError::Io)?;
            let (n, src) = match self.socket.recv_from(buf) {
                Ok(x) => x,
                Err(ref e) if is_timeout(e) => return Ok(None),
                Err(e) => return Err(SendError::Io(e)),
            };
            if src != to {
                continue;
            }
            match parse_ack(&buf[..n]) {
                // Legacy receivers ACK without a seq; trust it for the
                // in-flight push (they apply in arrival order anyway).
                Some(Ack::Ok { seq: None }) => return Ok(Some(Ack::Ok { seq: None })),
                Some(Ack::Ok { seq: Some(s) }) if s == seq => {
                    return Ok(Some(Ack::Ok { seq: Some(s) }))
                }
                Some(Ack::Err { reason, seq: None }) => {
                    return Ok(Some(Ack::Err { reason, seq: None }))
                }
                Some(Ack::Err {
                    reason,
                    seq: Some(s),
                }) if s == seq => {
                    return Ok(Some(Ack::Err {
                        reason,
                        seq: Some(s),
                    }))
                }
                // An ACK for an older seq (late duplicate) or junk.
                _ => continue,
            }
        }
    }
}

/// True for the receive-timeout errors a bounded wait expects.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncvnf_rlnc::SessionId;
    use std::sync::mpsc;

    fn fast_config() -> SenderConfig {
        SenderConfig {
            ack_timeout: Duration::from_millis(60),
            max_attempts: 4,
            backoff_base: Duration::from_millis(5),
        }
    }

    /// A scripted receiver: applies `script(attempt)` to each arriving
    /// frame to decide the reply (None = stay silent).
    fn scripted_receiver(
        script: impl Fn(u32, &FencedSignal) -> Option<String> + Send + 'static,
    ) -> (SocketAddr, mpsc::Receiver<FencedSignal>) {
        let socket = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        let addr = socket.local_addr().unwrap();
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let mut buf = [0u8; 2048];
            let mut attempt = 0;
            socket
                .set_read_timeout(Some(Duration::from_secs(2)))
                .unwrap();
            while let Ok((n, src)) = socket.recv_from(&mut buf) {
                let Ok((frame, _)) = FencedSignal::from_bytes(&buf[..n]) else {
                    continue;
                };
                attempt += 1;
                if tx.send(frame.clone()).is_err() {
                    break;
                }
                if let Some(reply) = script(attempt, &frame) {
                    let _ = socket.send_to(reply.as_bytes(), src);
                }
            }
        });
        (addr, rx)
    }

    fn probe() -> Signal {
        Signal::NcStart {
            session: SessionId::new(1),
        }
    }

    #[test]
    fn first_try_ack_succeeds_with_sequenced_frames() {
        let (addr, rx) = scripted_receiver(|_, f| Some(format!("OK {}", f.seq)));
        let mut sender = SignalSender::new(3, fast_config()).unwrap();
        let r1 = sender.push(addr, &probe()).unwrap();
        let r2 = sender.push(addr, &probe()).unwrap();
        assert_eq!((r1.seq, r1.attempts), (1, 1));
        assert_eq!((r2.seq, r2.attempts), (2, 1));
        let f1 = rx.recv().unwrap();
        assert_eq!((f1.epoch, f1.seq), (3, 1));
        let f2 = rx.recv().unwrap();
        assert_eq!((f2.epoch, f2.seq), (3, 2));
    }

    #[test]
    fn lost_acks_are_retried_with_backoff() {
        // Silent for two attempts, then ACK.
        let (addr, rx) =
            scripted_receiver(|attempt, f| (attempt >= 3).then(|| format!("OK {}", f.seq)));
        let mut sender = SignalSender::new(1, fast_config()).unwrap();
        let receipt = sender.push(addr, &probe()).unwrap();
        assert_eq!(receipt.attempts, 3);
        // All three transmissions carried the same seq (idempotent
        // retransmission, not a fresh signal).
        for _ in 0..3 {
            assert_eq!(rx.recv().unwrap().seq, 1);
        }
    }

    #[test]
    fn unreachable_receiver_times_out_after_budget() {
        let (addr, _rx) = scripted_receiver(|_, _| None);
        let mut sender = SignalSender::new(1, fast_config()).unwrap();
        match sender.push(addr, &probe()) {
            Err(SendError::Timeout { attempts }) => assert_eq!(attempts, 4),
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn stale_epoch_and_rejections_are_surfaced_not_retried() {
        let (addr, rx) = scripted_receiver(|_, f| Some(format!("ERR stale-epoch {}", f.seq)));
        let mut sender = SignalSender::new(1, fast_config()).unwrap();
        assert!(matches!(
            sender.push(addr, &probe()),
            Err(SendError::StaleEpoch)
        ));
        drop(rx);
        let (addr, _rx) = scripted_receiver(|_, f| Some(format!("ERR bad-table {}", f.seq)));
        let mut sender = SignalSender::new(1, fast_config()).unwrap();
        match sender.push(addr, &probe()) {
            Err(SendError::Rejected(reason)) => assert_eq!(reason, "bad-table"),
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn ack_parser_handles_all_shapes() {
        assert_eq!(parse_ack(b"OK"), Some(Ack::Ok { seq: None }));
        assert_eq!(parse_ack(b"OK 17"), Some(Ack::Ok { seq: Some(17) }));
        assert_eq!(
            parse_ack(b"ERR bad-table"),
            Some(Ack::Err {
                reason: "bad-table".into(),
                seq: None
            })
        );
        assert_eq!(
            parse_ack(b"ERR stale-epoch 9"),
            Some(Ack::Err {
                reason: "stale-epoch".into(),
                seq: Some(9)
            })
        );
        assert_eq!(parse_ack(b"{\"counters\":{}}"), None);
        assert_eq!(parse_ack(&[0xFF, 0xFE]), None);
    }
}
