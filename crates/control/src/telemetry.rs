//! Measurement ingestion: probes → smoothed estimates → scaling events.
//!
//! "Iperf3 ... is installed on network coding VNFs and periodically
//! executed to obtain the inbound and outbound bandwidth ... Results are
//! sent to the controller for use of the dynamic scaling algorithm" and
//! "Ping is periodically executed on the VNFs to detect delay changes"
//! (Sec. IV-B). Raw probe samples are noisy; the controller's ρ/τ
//! hysteresis expects a stable estimate, so this module keeps a sliding
//! window per measurement target and reports the median.

use std::collections::HashMap;

use ncvnf_deploy::model::VnfSpec;
use ncvnf_deploy::{ScalingEvent, Topology};
use ncvnf_flowgraph::NodeId;
use ncvnf_obs::Snapshot;

use crate::metrics::ControlMetrics;

/// Sliding-window median estimator.
#[derive(Debug, Clone)]
struct Window {
    samples: Vec<f64>,
    capacity: usize,
    cursor: usize,
}

impl Window {
    fn new(capacity: usize) -> Self {
        Window {
            samples: Vec::with_capacity(capacity),
            capacity,
            cursor: 0,
        }
    }

    fn push(&mut self, x: f64) {
        if self.samples.len() < self.capacity {
            self.samples.push(x);
        } else {
            self.samples[self.cursor] = x;
            self.cursor = (self.cursor + 1) % self.capacity;
        }
    }

    fn median(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut v = self.samples.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        Some(v[v.len() / 2])
    }
}

/// A data-plane health snapshot reported by a relay (its cumulative
/// `RelayStats` counters) plus the recovery counters contributed by the
/// transfer endpoints. All counters are cumulative since node start;
/// re-recording a node replaces its previous snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataplaneHealth {
    /// Datagrams received on the data socket.
    pub datagrams_in: u64,
    /// Datagrams sent to next hops.
    pub datagrams_out: u64,
    /// Socket errors survived.
    pub io_errors: u64,
    /// Control signals rejected with an `ERR` reply.
    pub rejected_signals: u64,
    /// Feedback-magic frames that failed to decode (dropped, counted).
    pub malformed_feedback: u64,
    /// Liveness beacons the node emitted.
    pub heartbeats_sent: u64,
    /// NACKs sent by receivers for undecodable generations.
    pub nacks_sent: u64,
    /// Fresh coded packets retransmitted in response to NACKs.
    pub retransmit_packets: u64,
    /// Generations that needed at least one retransmission round and
    /// still decoded.
    pub generations_recovered: u64,
    /// Datagrams shed by admission control or overload protection
    /// (sum of the quota, overload, and redundancy shed classes).
    pub shed_packets: u64,
}

impl DataplaneHealth {
    /// Builds the health record from an observability snapshot — the
    /// node-side registry is the single source of truth, and this is
    /// the controller's ingestion mapping from metric names (the relay's
    /// `relay.*` node counters plus the transfer endpoints' `recovery.*`
    /// counters) to health fields. Metrics a node never registered read
    /// as zero.
    pub fn from_snapshot(snapshot: &Snapshot) -> DataplaneHealth {
        let c = |name: &str| snapshot.counter(name).unwrap_or(0);
        DataplaneHealth {
            datagrams_in: c("relay.datagrams_in"),
            datagrams_out: c("relay.datagrams_out"),
            io_errors: c("relay.io_errors"),
            rejected_signals: c("relay.rejected_signals"),
            malformed_feedback: c("relay.malformed_feedback"),
            heartbeats_sent: c("relay.heartbeats_sent"),
            nacks_sent: c("recovery.nacks_sent"),
            retransmit_packets: c("recovery.retransmit_packets"),
            generations_recovered: c("recovery.generations_recovered"),
            shed_packets: c("relay.shed_quota")
                + c("relay.shed_overload")
                + c("relay.shed_redundancy"),
        }
    }

    /// Field-wise sum (fleet-wide aggregation).
    #[must_use]
    pub fn combined(&self, other: &DataplaneHealth) -> DataplaneHealth {
        DataplaneHealth {
            datagrams_in: self.datagrams_in + other.datagrams_in,
            datagrams_out: self.datagrams_out + other.datagrams_out,
            io_errors: self.io_errors + other.io_errors,
            rejected_signals: self.rejected_signals + other.rejected_signals,
            malformed_feedback: self.malformed_feedback + other.malformed_feedback,
            heartbeats_sent: self.heartbeats_sent + other.heartbeats_sent,
            nacks_sent: self.nacks_sent + other.nacks_sent,
            retransmit_packets: self.retransmit_packets + other.retransmit_packets,
            generations_recovered: self.generations_recovered + other.generations_recovered,
            shed_packets: self.shed_packets + other.shed_packets,
        }
    }
}

/// Aggregates probe measurements and emits [`ScalingEvent`]s when the
/// smoothed estimate deviates from the topology's current belief.
#[derive(Debug)]
pub struct Telemetry {
    window: usize,
    /// Per-DC (inbound, outbound) bandwidth windows (bps).
    bandwidth: HashMap<NodeId, (Window, Window)>,
    /// Per-directed-pair RTT windows (ms).
    rtt: HashMap<(NodeId, NodeId), Window>,
    /// Latest data-plane health snapshot per relay node id.
    dataplane: HashMap<u32, DataplaneHealth>,
    /// Optional registry handles; when attached, `drain_events` counts
    /// the scaling observations it emits.
    metrics: Option<ControlMetrics>,
}

impl Telemetry {
    /// Creates an aggregator with a per-target window of `window` samples.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Telemetry {
            window,
            bandwidth: HashMap::new(),
            rtt: HashMap::new(),
            dataplane: HashMap::new(),
            metrics: None,
        }
    }

    /// Attaches registry handles so emitted scaling observations are
    /// counted under `control.scaling.events`.
    pub fn attach_metrics(&mut self, metrics: ControlMetrics) {
        self.metrics = Some(metrics);
    }

    /// Records a relay's latest data-plane health snapshot (counters are
    /// cumulative, so the newest snapshot supersedes older ones).
    pub fn record_dataplane(&mut self, node: u32, health: DataplaneHealth) {
        self.dataplane.insert(node, health);
    }

    /// The latest health snapshot recorded for a relay, if any.
    pub fn dataplane_health(&self, node: u32) -> Option<&DataplaneHealth> {
        self.dataplane.get(&node)
    }

    /// Field-wise sum of every relay's latest snapshot.
    pub fn dataplane_total(&self) -> DataplaneHealth {
        self.dataplane
            .values()
            .fold(DataplaneHealth::default(), |acc, h| acc.combined(h))
    }

    /// Node ids with a recorded health snapshot, ascending.
    pub fn dataplane_nodes(&self) -> Vec<u32> {
        let mut nodes: Vec<u32> = self.dataplane.keys().copied().collect();
        nodes.sort_unstable();
        nodes
    }

    /// Records one iperf-style sample of a DC's per-VNF bandwidth.
    pub fn record_bandwidth(&mut self, dc: NodeId, in_bps: f64, out_bps: f64) {
        let entry = self
            .bandwidth
            .entry(dc)
            .or_insert_with(|| (Window::new(self.window), Window::new(self.window)));
        entry.0.push(in_bps);
        entry.1.push(out_bps);
    }

    /// Records one ping RTT sample between two nodes.
    pub fn record_rtt(&mut self, from: NodeId, to: NodeId, rtt_ms: f64) {
        self.rtt
            .entry((from, to))
            .or_insert_with(|| Window::new(self.window))
            .push(rtt_ms);
    }

    /// Smoothed (median) per-VNF bandwidth estimate for a DC, if enough
    /// samples exist.
    pub fn bandwidth_estimate(&self, dc: NodeId) -> Option<(f64, f64)> {
        let (i, o) = self.bandwidth.get(&dc)?;
        Some((i.median()?, o.median()?))
    }

    /// Smoothed one-way delay estimate for a pair (RTT/2), if any.
    pub fn delay_estimate_ms(&self, from: NodeId, to: NodeId) -> Option<f64> {
        Some(self.rtt.get(&(from, to))?.median()? / 2.0)
    }

    /// Compares every smoothed estimate against the topology's current
    /// values and emits the corresponding observation events (the
    /// controller applies its own ρ/τ hysteresis on top).
    pub fn drain_events(&self, topo: &Topology, min_rel_change: f64) -> Vec<ScalingEvent> {
        let mut events = Vec::new();
        let mut dcs: Vec<NodeId> = self.bandwidth.keys().copied().collect();
        dcs.sort();
        for dc in dcs {
            let Some((in_bps, out_bps)) = self.bandwidth_estimate(dc) else {
                continue;
            };
            let current = topo.vnf_spec(dc);
            if rel(current.bin_bps, in_bps) >= min_rel_change
                || rel(current.bout_bps, out_bps) >= min_rel_change
            {
                events.push(ScalingEvent::BandwidthObserved {
                    dc,
                    spec: VnfSpec {
                        bin_bps: in_bps,
                        bout_bps: out_bps,
                        coding_bps: current.coding_bps,
                    },
                });
            }
        }
        let mut pairs: Vec<(NodeId, NodeId)> = self.rtt.keys().copied().collect();
        pairs.sort();
        for (from, to) in pairs {
            let Some(delay_ms) = self.delay_estimate_ms(from, to) else {
                continue;
            };
            let Some(current) = topo
                .graph
                .out_edges(from)
                .find(|e| e.to == to)
                .map(|e| e.delay)
            else {
                continue;
            };
            if rel(current, delay_ms) >= min_rel_change {
                events.push(ScalingEvent::DelayObserved { from, to, delay_ms });
            }
        }
        if let Some(metrics) = &self.metrics {
            metrics.record_scaling_events(events.len() as u64);
        }
        events
    }
}

fn rel(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        if new == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (new - old).abs() / old
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncvnf_deploy::presets::NorthAmerica;

    fn topo() -> Topology {
        NorthAmerica::new().build()
    }

    #[test]
    fn median_smooths_outliers() {
        let topo = topo();
        let dc = topo.data_centers()[0];
        let mut t = Telemetry::new(5);
        // Four good samples, one spike: the median ignores the spike.
        for _ in 0..4 {
            t.record_bandwidth(dc, 920e6, 920e6);
        }
        t.record_bandwidth(dc, 5e6, 5e6);
        let (i, o) = t.bandwidth_estimate(dc).unwrap();
        assert_eq!(i, 920e6);
        assert_eq!(o, 920e6);
        assert!(t.drain_events(&topo, 0.05).is_empty());
    }

    #[test]
    fn persistent_change_emits_event() {
        let topo = topo();
        let dc = topo.data_centers()[1];
        let mut t = Telemetry::new(4);
        for _ in 0..4 {
            t.record_bandwidth(dc, 460e6, 470e6);
        }
        let events = t.drain_events(&topo, 0.05);
        assert_eq!(events.len(), 1);
        match &events[0] {
            ScalingEvent::BandwidthObserved { dc: d, spec } => {
                assert_eq!(*d, dc);
                assert_eq!(spec.bin_bps, 460e6);
                assert_eq!(spec.bout_bps, 470e6);
                // Coding capacity is not probed; retain the current value.
                assert_eq!(spec.coding_bps, topo.vnf_spec(dc).coding_bps);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn rtt_halves_into_one_way_delay() {
        let topo = topo();
        let dcs = topo.data_centers();
        let mut t = Telemetry::new(3);
        for rtt in [100.0, 102.0, 98.0] {
            t.record_rtt(dcs[0], dcs[1], rtt);
        }
        assert_eq!(t.delay_estimate_ms(dcs[0], dcs[1]), Some(50.0));
        // CA->OR is 10 ms in the preset: a 50 ms estimate is a change.
        let events = t.drain_events(&topo, 0.05);
        assert!(events.iter().any(|e| matches!(
            e,
            ScalingEvent::DelayObserved { delay_ms, .. } if (*delay_ms - 50.0).abs() < 1e-9
        )));
    }

    #[test]
    fn small_changes_are_filtered() {
        let topo = topo();
        let dc = topo.data_centers()[0];
        let mut t = Telemetry::new(2);
        t.record_bandwidth(dc, 910e6, 915e6); // ~1% off nominal 920
        t.record_bandwidth(dc, 912e6, 913e6);
        assert!(t.drain_events(&topo, 0.05).is_empty());
    }

    #[test]
    fn dataplane_snapshots_replace_and_aggregate() {
        let mut t = Telemetry::new(2);
        assert_eq!(t.dataplane_health(7), None);
        t.record_dataplane(
            7,
            DataplaneHealth {
                datagrams_in: 10,
                nacks_sent: 2,
                ..DataplaneHealth::default()
            },
        );
        // Counters are cumulative: a fresher snapshot supersedes.
        t.record_dataplane(
            7,
            DataplaneHealth {
                datagrams_in: 25,
                nacks_sent: 3,
                retransmit_packets: 8,
                ..DataplaneHealth::default()
            },
        );
        t.record_dataplane(
            9,
            DataplaneHealth {
                datagrams_in: 5,
                generations_recovered: 1,
                heartbeats_sent: 40,
                ..DataplaneHealth::default()
            },
        );
        assert_eq!(t.dataplane_health(7).unwrap().datagrams_in, 25);
        assert_eq!(t.dataplane_nodes(), vec![7, 9]);
        let total = t.dataplane_total();
        assert_eq!(total.datagrams_in, 30);
        assert_eq!(total.nacks_sent, 3);
        assert_eq!(total.retransmit_packets, 8);
        assert_eq!(total.generations_recovered, 1);
        assert_eq!(total.heartbeats_sent, 40);
    }

    #[test]
    fn health_derives_from_registry_snapshot() {
        use ncvnf_obs::{desc, MetricKind, Registry};
        let registry = Registry::new();
        registry
            .counter(desc(
                "relay.datagrams_in",
                MetricKind::Counter,
                "datagrams",
                "relay",
                "test",
            ))
            .add(42);
        registry
            .counter(desc(
                "recovery.nacks_sent",
                MetricKind::Counter,
                "nacks",
                "relay",
                "test",
            ))
            .add(3);
        registry
            .counter(desc(
                "relay.shed_quota",
                MetricKind::Counter,
                "datagrams",
                "relay",
                "test",
            ))
            .add(5);
        registry
            .counter(desc(
                "relay.shed_overload",
                MetricKind::Counter,
                "datagrams",
                "relay",
                "test",
            ))
            .add(2);
        let health = DataplaneHealth::from_snapshot(&registry.snapshot());
        assert_eq!(health.datagrams_in, 42);
        assert_eq!(health.nacks_sent, 3);
        assert_eq!(health.shed_packets, 7, "shed classes sum into one field");
        // Metrics the node never registered read as zero.
        assert_eq!(health.io_errors, 0);
        assert_eq!(health.retransmit_packets, 0);
    }

    #[test]
    fn attached_metrics_count_scaling_events() {
        use crate::metrics::ControlMetrics;
        use ncvnf_obs::Registry;
        let registry = Registry::new();
        let topo = topo();
        let dc = topo.data_centers()[1];
        let mut t = Telemetry::new(2);
        t.attach_metrics(ControlMetrics::register(&registry));
        for _ in 0..2 {
            t.record_bandwidth(dc, 460e6, 470e6);
        }
        assert_eq!(t.drain_events(&topo, 0.05).len(), 1);
        assert_eq!(
            registry.snapshot().counter("control.scaling.events"),
            Some(1)
        );
    }

    #[test]
    fn window_rolls_over() {
        let topo = topo();
        let dc = topo.data_centers()[0];
        let mut t = Telemetry::new(3);
        for _ in 0..3 {
            t.record_bandwidth(dc, 920e6, 920e6);
        }
        // Three new samples displace the old ones entirely.
        for _ in 0..3 {
            t.record_bandwidth(dc, 400e6, 400e6);
        }
        let (i, _) = t.bandwidth_estimate(dc).unwrap();
        assert_eq!(i, 400e6);
        assert_eq!(t.drain_events(&topo, 0.05).len(), 1);
    }
}
