//! The forwarding table, as a text file.
//!
//! "The forwarding table is a text file, recording the next hops' IP
//! addresses for each relevant multicast session the coding function
//! belongs to" (Sec. III-A). Format, one line per session:
//!
//! ```text
//! session <id> <next-hop> [<next-hop> ...]
//! ```
//!
//! Next hops are opaque address strings (`ip:port` in the real-socket
//! deployment, `node:port` in the simulator). Lines starting with `#` and
//! blank lines are ignored.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use ncvnf_rlnc::SessionId;

/// Parse errors for the table text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// A line did not match the `session <id> <hops...>` shape.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Description.
        reason: String,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::BadLine { line, reason } => {
                write!(f, "bad forwarding table line {line}: {reason}")
            }
        }
    }
}

impl Error for TableError {}

/// A per-VNF forwarding table: session → next-hop addresses.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ForwardingTable {
    entries: BTreeMap<SessionId, Vec<String>>,
}

impl ForwardingTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the next hops of a session (replacing any previous entry).
    pub fn set(&mut self, session: SessionId, hops: Vec<String>) {
        self.entries.insert(session, hops);
    }

    /// Removes a session's entry; returns true if present.
    pub fn remove(&mut self, session: SessionId) -> bool {
        self.entries.remove(&session).is_some()
    }

    /// Next hops for a session.
    pub fn next_hops(&self, session: SessionId) -> Option<&[String]> {
        self.entries.get(&session).map(|v| v.as_slice())
    }

    /// Number of session entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over entries in session order.
    pub fn iter(&self) -> impl Iterator<Item = (SessionId, &[String])> {
        self.entries.iter().map(|(&s, h)| (s, h.as_slice()))
    }

    /// Serializes to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (session, hops) in &self.entries {
            out.push_str(&format!("session {}", session.value()));
            for h in hops {
                out.push(' ');
                out.push_str(h);
            }
            out.push('\n');
        }
        out
    }

    /// Parses the text format.
    ///
    /// # Errors
    ///
    /// [`TableError::BadLine`] on any malformed line.
    pub fn parse(text: &str) -> Result<Self, TableError> {
        let mut table = ForwardingTable::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("session") => {}
                _ => {
                    return Err(TableError::BadLine {
                        line: i + 1,
                        reason: "expected 'session' keyword".into(),
                    })
                }
            }
            let id: u16 = parts
                .next()
                .ok_or_else(|| TableError::BadLine {
                    line: i + 1,
                    reason: "missing session id".into(),
                })?
                .parse()
                .map_err(|e| TableError::BadLine {
                    line: i + 1,
                    reason: format!("bad session id: {e}"),
                })?;
            let hops: Vec<String> = parts.map(str::to_owned).collect();
            if hops.is_empty() {
                return Err(TableError::BadLine {
                    line: i + 1,
                    reason: "no next hops".into(),
                });
            }
            table.set(SessionId::new(id), hops);
        }
        Ok(table)
    }

    /// Number of entries that differ between the two tables (added,
    /// removed, or changed) — the "update percentage" of Table III is
    /// `differing / max(len)`.
    pub fn diff_count(&self, other: &ForwardingTable) -> usize {
        let mut n = 0;
        for (s, hops) in &self.entries {
            match other.entries.get(s) {
                Some(o) if o == hops => {}
                _ => n += 1,
            }
        }
        for s in other.entries.keys() {
            if !self.entries.contains_key(s) {
                n += 1;
            }
        }
        n
    }

    /// Applies `other` entry-by-entry, returning how many entries changed.
    pub fn apply(&mut self, other: &ForwardingTable) -> usize {
        let changed = self.diff_count(other);
        self.entries = other.entries.clone();
        changed
    }

    /// A content digest of the table, derived from the canonical text
    /// form (FNV-1a over [`to_text`](Self::to_text)), masked to 53 bits
    /// so the value survives a round trip through an `f64` metric gauge
    /// exactly. The controller's reconciliation pass compares the digest
    /// it believes a node holds (journal replay) against the digest the
    /// node reports (`relay.table_digest` in `NC_STATS`) to find
    /// diverged tables without shipping the text back.
    pub fn digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        for byte in self.to_text().bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        hash & ((1u64 << 53) - 1)
    }

    /// Merges `other` into this table (delta update): entries present in
    /// `other` replace or add to the current table, everything else is
    /// kept. Returns how many entries actually changed. This is the
    /// Table III operation — the controller ships only the changed
    /// fraction of the table.
    pub fn merge(&mut self, other: &ForwardingTable) -> usize {
        let mut changed = 0;
        for (&session, hops) in &other.entries {
            match self.entries.get(&session) {
                Some(existing) if existing == hops => {}
                _ => {
                    self.entries.insert(session, hops.clone());
                    changed += 1;
                }
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ForwardingTable {
        let mut t = ForwardingTable::new();
        t.set(
            SessionId::new(1),
            vec!["10.0.0.1:4000".into(), "10.0.0.2:4000".into()],
        );
        t.set(SessionId::new(3), vec!["10.0.0.9:4000".into()]);
        t
    }

    #[test]
    fn text_roundtrip() {
        let t = sample();
        let text = t.to_text();
        assert!(text.contains("session 1 10.0.0.1:4000 10.0.0.2:4000"));
        let back = ForwardingTable::parse(&text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# comment\n\nsession 5 a:1\n";
        let t = ForwardingTable::parse(text).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.next_hops(SessionId::new(5)).unwrap(), ["a:1"]);
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(ForwardingTable::parse("nonsense").is_err());
        assert!(ForwardingTable::parse("session x a:1").is_err());
        assert!(ForwardingTable::parse("session 5").is_err());
    }

    #[test]
    fn digest_tracks_content_and_fits_f64() {
        let a = sample();
        let b = sample();
        assert_eq!(a.digest(), b.digest(), "equal tables, equal digest");
        let mut c = sample();
        c.set(SessionId::new(1), vec!["10.9.9.9:4000".into()]);
        assert_ne!(a.digest(), c.digest(), "changed entry, changed digest");
        assert_ne!(
            ForwardingTable::new().digest(),
            a.digest(),
            "empty differs from populated"
        );
        // Survives the f64 gauge round trip losslessly.
        let through_gauge = a.digest() as f64 as u64;
        assert_eq!(through_gauge, a.digest());
    }

    #[test]
    fn diff_counts_changes() {
        let a = sample();
        let mut b = sample();
        assert_eq!(a.diff_count(&b), 0);
        b.set(SessionId::new(1), vec!["10.9.9.9:4000".into()]); // changed
        b.set(SessionId::new(4), vec!["x:1".into()]); // added
        b.remove(SessionId::new(3)); // removed
        assert_eq!(a.diff_count(&b), 3);
        let mut c = sample();
        let changed = c.apply(&b);
        assert_eq!(changed, 3);
        assert_eq!(c, b);
    }
}
