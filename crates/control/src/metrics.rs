//! Control-plane metrics: liveness transitions, scaling activity, and
//! table-push latency.
//!
//! The controller's closed loop (Sec. IV-B) acts on exactly these
//! signals — node health, load observations, and how fast a
//! `NC_FORWARD_TAB` push lands — so they are the control-plane slice of
//! the observability registry. [`ControlMetrics`] is a cheap-to-clone
//! handle bundle; hosts register it once and feed it from
//! [`LivenessTracker::poll`](crate::LivenessTracker::poll) events and
//! table-push round trips.

use ncvnf_obs::{
    desc, Counter, Gauge, Histogram, MetricDesc, MetricKind, Registry, TraceKind, TraceRing,
};

use crate::liveness::LivenessEvent;

/// `control.liveness.suspected` — nodes that went silent past the
/// suspect threshold.
pub const LIVENESS_SUSPECTED: MetricDesc = desc(
    "control.liveness.suspected",
    MetricKind::Counter,
    "events",
    "control",
    "Liveness transitions into Suspect",
);

/// `control.liveness.died` — nodes declared dead.
pub const LIVENESS_DIED: MetricDesc = desc(
    "control.liveness.died",
    MetricKind::Counter,
    "events",
    "control",
    "Liveness transitions into Dead",
);

/// `control.liveness.recovered` — suspect/dead nodes that resumed
/// beaconing.
pub const LIVENESS_RECOVERED: MetricDesc = desc(
    "control.liveness.recovered",
    MetricKind::Counter,
    "events",
    "control",
    "Suspect or dead nodes that resumed beaconing",
);

/// `control.scaling.events` — scaling observations emitted by telemetry.
pub const SCALING_EVENTS: MetricDesc = desc(
    "control.scaling.events",
    MetricKind::Counter,
    "events",
    "control",
    "Scaling observations emitted by telemetry aggregation",
);

/// `control.table_push_ns` — round-trip latency of a table push.
pub const TABLE_PUSH_NS: MetricDesc = desc(
    "control.table_push_ns",
    MetricKind::Histogram,
    "ns",
    "control",
    "NC_FORWARD_TAB push round-trip latency (send to OK)",
);

/// `control.journal.appends` — records appended to the write-ahead
/// journal.
pub const JOURNAL_APPENDS: MetricDesc = desc(
    "control.journal.appends",
    MetricKind::Counter,
    "records",
    "control",
    "Records appended to the write-ahead journal",
);

/// `control.journal.commit_ns` — fsync'd commit latency per batch.
pub const JOURNAL_COMMIT_NS: MetricDesc = desc(
    "control.journal.commit_ns",
    MetricKind::Histogram,
    "ns",
    "control",
    "Journal commit latency (buffered write plus fsync) per batch",
);

/// `control.journal.replayed` — records replayed on restart.
pub const JOURNAL_REPLAYED: MetricDesc = desc(
    "control.journal.replayed",
    MetricKind::Counter,
    "records",
    "control",
    "Journal records replayed into controller state on restart",
);

/// `control.journal.torn_tails` — torn tails truncated on open.
pub const JOURNAL_TORN_TAILS: MetricDesc = desc(
    "control.journal.torn_tails",
    MetricKind::Counter,
    "events",
    "control",
    "Torn journal tails detected and truncated on open",
);

/// `control.sender.pushes` — fenced signal pushes attempted.
pub const SENDER_PUSHES: MetricDesc = desc(
    "control.sender.pushes",
    MetricKind::Counter,
    "signals",
    "control",
    "Fenced signal pushes attempted by the reliable sender",
);

/// `control.sender.retries` — retransmissions after an ACK timeout.
pub const SENDER_RETRIES: MetricDesc = desc(
    "control.sender.retries",
    MetricKind::Counter,
    "attempts",
    "control",
    "Signal retransmissions after an ACK timeout (exponential backoff)",
);

/// `control.sender.failed` — pushes abandoned after exhausting retries.
pub const SENDER_FAILED: MetricDesc = desc(
    "control.sender.failed",
    MetricKind::Counter,
    "signals",
    "control",
    "Signal pushes abandoned after exhausting every retry",
);

/// `control.sender.ack_ns` — push-to-ACK latency of delivered signals.
pub const SENDER_ACK_NS: MetricDesc = desc(
    "control.sender.ack_ns",
    MetricKind::Histogram,
    "ns",
    "control",
    "Push-to-ACK latency of successfully delivered fenced signals",
);

/// `control.reconcile.runs` — restart reconciliation passes executed.
pub const RECONCILE_RUNS: MetricDesc = desc(
    "control.reconcile.runs",
    MetricKind::Counter,
    "runs",
    "control",
    "Restart reconciliation passes executed",
);

/// `control.reconcile.readopted` — nodes re-adopted unchanged.
pub const RECONCILE_READOPTED: MetricDesc = desc(
    "control.reconcile.readopted",
    MetricKind::Counter,
    "nodes",
    "control",
    "Healthy nodes re-adopted with their tables intact",
);

/// `control.reconcile.repushed` — diverged tables re-pushed.
pub const RECONCILE_REPUSHED: MetricDesc = desc(
    "control.reconcile.repushed",
    MetricKind::Counter,
    "tables",
    "control",
    "Forwarding tables re-pushed because the live digest diverged",
);

/// `control.reconcile.expired` — τ-pool entries expired during downtime.
pub const RECONCILE_EXPIRED: MetricDesc = desc(
    "control.reconcile.expired",
    MetricKind::Counter,
    "instances",
    "control",
    "Lingering instances whose deadline passed while the controller was down",
);

/// `control.reconcile.unreachable` — journaled nodes that failed to
/// answer the reconciliation query.
pub const RECONCILE_UNREACHABLE: MetricDesc = desc(
    "control.reconcile.unreachable",
    MetricKind::Counter,
    "nodes",
    "control",
    "Journaled nodes that did not answer the reconciliation NC_STATS query",
);

/// `control.autoscale.polls` — NC_STATS polling sweeps completed.
pub const AUTOSCALE_POLLS: MetricDesc = desc(
    "control.autoscale.polls",
    MetricKind::Counter,
    "sweeps",
    "control",
    "Autoscaler NC_STATS polling sweeps over the relay fleet",
);

/// `control.autoscale.adoptions` — deployments adopted by the loop.
pub const AUTOSCALE_ADOPTIONS: MetricDesc = desc(
    "control.autoscale.adoptions",
    MetricKind::Counter,
    "deployments",
    "control",
    "New deployments adopted and actuated by the autoscaler",
);

/// `control.autoscale.drained` — VNFs wound into the τ-pool by
/// scale-to-zero.
pub const AUTOSCALE_DRAINED: MetricDesc = desc(
    "control.autoscale.drained",
    MetricKind::Counter,
    "instances",
    "control",
    "Idle VNFs sent NC_VNF_END by the scale-to-zero policy",
);

/// `control.autoscale.woken` — drained VNFs re-armed on traffic.
pub const AUTOSCALE_WOKEN: MetricDesc = desc(
    "control.autoscale.woken",
    MetricKind::Counter,
    "instances",
    "control",
    "Draining VNFs re-armed after a wake request or traffic return",
);

/// `control.autoscale.draining` — targets currently draining.
pub const AUTOSCALE_DRAINING: MetricDesc = desc(
    "control.autoscale.draining",
    MetricKind::Gauge,
    "instances",
    "control",
    "Relay targets currently draining toward scale-to-zero",
);

/// `control.autoscale.detect_ms` — drift-to-adoption detection latency.
pub const AUTOSCALE_DETECT_MS: MetricDesc = desc(
    "control.autoscale.detect_ms",
    MetricKind::Histogram,
    "ms",
    "control",
    "Controller-clock latency from first drift observation to adoption",
);

/// `control.autoscale.decide_ns` — wall-clock decision latency.
pub const AUTOSCALE_DECIDE_NS: MetricDesc = desc(
    "control.autoscale.decide_ns",
    MetricKind::Histogram,
    "ns",
    "control",
    "Wall-clock latency of one adopting decision pass (observe to actuated)",
);

/// Registry-backed handles for control-plane metrics.
#[derive(Debug, Clone)]
pub struct ControlMetrics {
    suspected: Counter,
    died: Counter,
    recovered: Counter,
    scaling_events: Counter,
    table_push_ns: Histogram,
    journal_appends: Counter,
    journal_commit_ns: Histogram,
    journal_replayed: Counter,
    journal_torn_tails: Counter,
    sender_pushes: Counter,
    sender_retries: Counter,
    sender_failed: Counter,
    sender_ack_ns: Histogram,
    reconcile_runs: Counter,
    reconcile_readopted: Counter,
    reconcile_repushed: Counter,
    reconcile_expired: Counter,
    reconcile_unreachable: Counter,
    autoscale_polls: Counter,
    autoscale_adoptions: Counter,
    autoscale_drained: Counter,
    autoscale_woken: Counter,
    autoscale_draining: Gauge,
    autoscale_detect_ms: Histogram,
    autoscale_decide_ns: Histogram,
    trace: TraceRing,
}

impl ControlMetrics {
    /// Registers (or retrieves) the control metrics in `registry`.
    pub fn register(registry: &Registry) -> Self {
        ControlMetrics {
            suspected: registry.counter(LIVENESS_SUSPECTED),
            died: registry.counter(LIVENESS_DIED),
            recovered: registry.counter(LIVENESS_RECOVERED),
            scaling_events: registry.counter(SCALING_EVENTS),
            table_push_ns: registry.histogram(TABLE_PUSH_NS),
            journal_appends: registry.counter(JOURNAL_APPENDS),
            journal_commit_ns: registry.histogram(JOURNAL_COMMIT_NS),
            journal_replayed: registry.counter(JOURNAL_REPLAYED),
            journal_torn_tails: registry.counter(JOURNAL_TORN_TAILS),
            sender_pushes: registry.counter(SENDER_PUSHES),
            sender_retries: registry.counter(SENDER_RETRIES),
            sender_failed: registry.counter(SENDER_FAILED),
            sender_ack_ns: registry.histogram(SENDER_ACK_NS),
            reconcile_runs: registry.counter(RECONCILE_RUNS),
            reconcile_readopted: registry.counter(RECONCILE_READOPTED),
            reconcile_repushed: registry.counter(RECONCILE_REPUSHED),
            reconcile_expired: registry.counter(RECONCILE_EXPIRED),
            reconcile_unreachable: registry.counter(RECONCILE_UNREACHABLE),
            autoscale_polls: registry.counter(AUTOSCALE_POLLS),
            autoscale_adoptions: registry.counter(AUTOSCALE_ADOPTIONS),
            autoscale_drained: registry.counter(AUTOSCALE_DRAINED),
            autoscale_woken: registry.counter(AUTOSCALE_WOKEN),
            autoscale_draining: registry.gauge(AUTOSCALE_DRAINING),
            autoscale_detect_ms: registry.histogram(AUTOSCALE_DETECT_MS),
            autoscale_decide_ns: registry.histogram(AUTOSCALE_DECIDE_NS),
            trace: registry.trace(),
        }
    }

    /// Counts one liveness transition and emits the matching trace
    /// event (`a` = node id, `b` = 0 suspect / 1 dead / 2 recovered).
    pub fn record_liveness_event(&self, event: &LivenessEvent) {
        match event {
            LivenessEvent::Suspected(node) => {
                self.suspected.inc();
                self.trace.push(TraceKind::Liveness, *node as u64, 0);
            }
            LivenessEvent::Died(node) => {
                self.died.inc();
                self.trace.push(TraceKind::Liveness, *node as u64, 1);
            }
            LivenessEvent::Recovered(node) => {
                self.recovered.inc();
                self.trace.push(TraceKind::Liveness, *node as u64, 2);
            }
        }
    }

    /// Counts a batch of liveness transitions (the shape
    /// [`LivenessTracker::poll`](crate::LivenessTracker::poll) returns).
    pub fn record_liveness_events(&self, events: &[LivenessEvent]) {
        for ev in events {
            self.record_liveness_event(ev);
        }
    }

    /// Counts `n` scaling observations.
    pub fn record_scaling_events(&self, n: u64) {
        self.scaling_events.add(n);
    }

    /// Records one table-push round trip.
    pub fn record_table_push_ns(&self, nanos: u64) {
        self.table_push_ns.record(nanos);
    }

    /// Counts one record appended to the write-ahead journal.
    pub fn record_journal_append(&self) {
        self.journal_appends.inc();
    }

    /// Records one fsync'd journal commit.
    pub fn record_journal_commit_ns(&self, nanos: u64) {
        self.journal_commit_ns.record(nanos);
    }

    /// Records the outcome of a journal replay: records recovered and
    /// whether a torn tail had to be truncated.
    pub fn record_journal_replay(&self, records: u64, torn_tail: bool) {
        self.journal_replayed.add(records);
        if torn_tail {
            self.journal_torn_tails.inc();
        }
    }

    /// Counts one fenced push attempt by the reliable sender.
    pub fn record_sender_push(&self) {
        self.sender_pushes.inc();
    }

    /// Counts one retransmission after an ACK timeout.
    pub fn record_sender_retry(&self) {
        self.sender_retries.inc();
    }

    /// Counts one push abandoned after exhausting every retry.
    pub fn record_sender_failure(&self) {
        self.sender_failed.inc();
    }

    /// Records the push-to-ACK latency of a delivered signal.
    pub fn record_sender_ack_ns(&self, nanos: u64) {
        self.sender_ack_ns.record(nanos);
    }

    /// Records one reconciliation pass: how many nodes were re-adopted
    /// untouched, how many tables were re-pushed, how many τ-pool
    /// entries had expired during the outage, and how many journaled
    /// nodes never answered.
    pub fn record_reconcile(&self, readopted: u64, repushed: u64, expired: u64, unreachable: u64) {
        self.reconcile_runs.inc();
        self.reconcile_readopted.add(readopted);
        self.reconcile_repushed.add(repushed);
        self.reconcile_expired.add(expired);
        self.reconcile_unreachable.add(unreachable);
    }

    /// Records one completed autoscaler polling sweep.
    pub fn record_autoscale_poll(&self) {
        self.autoscale_polls.inc();
    }

    /// Records one adopted deployment, with the controller-clock
    /// detection latency (first drift observation to adoption, when a
    /// drift window was open) and the wall-clock decision latency.
    pub fn record_autoscale_adoption(&self, detect_ms: Option<u64>, decide_ns: u64) {
        self.autoscale_adoptions.inc();
        if let Some(ms) = detect_ms {
            self.autoscale_detect_ms.record(ms);
        }
        self.autoscale_decide_ns.record(decide_ns);
    }

    /// Records one VNF wound into the τ-pool by scale-to-zero.
    pub fn record_autoscale_drained(&self) {
        self.autoscale_drained.inc();
    }

    /// Records one draining VNF re-armed on returning traffic.
    pub fn record_autoscale_woken(&self) {
        self.autoscale_woken.inc();
    }

    /// Publishes the number of targets currently draining.
    pub fn set_autoscale_draining(&self, n: u64) {
        self.autoscale_draining.set(n as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn liveness_events_count_and_trace() {
        let registry = Registry::new();
        let m = ControlMetrics::register(&registry);
        m.record_liveness_events(&[
            LivenessEvent::Suspected(7),
            LivenessEvent::Died(7),
            LivenessEvent::Recovered(7),
            LivenessEvent::Suspected(9),
        ]);
        m.record_scaling_events(2);
        m.record_table_push_ns(1_000_000);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("control.liveness.suspected"), Some(2));
        assert_eq!(snap.counter("control.liveness.died"), Some(1));
        assert_eq!(snap.counter("control.liveness.recovered"), Some(1));
        assert_eq!(snap.counter("control.scaling.events"), Some(2));
        assert_eq!(
            snap.histogram("control.table_push_ns").map(|h| h.count),
            Some(1)
        );
        assert_eq!(snap.events.len(), 4, "one trace event per transition");
        assert!(snap
            .events
            .iter()
            .all(|e| e.kind == ncvnf_obs::TraceKind::Liveness));
    }

    #[test]
    fn journal_sender_and_reconcile_metrics_record() {
        let registry = Registry::new();
        let m = ControlMetrics::register(&registry);
        m.record_journal_append();
        m.record_journal_append();
        m.record_journal_commit_ns(50_000);
        m.record_journal_replay(7, true);
        m.record_journal_replay(3, false);
        m.record_sender_push();
        m.record_sender_retry();
        m.record_sender_failure();
        m.record_sender_ack_ns(1_000_000);
        m.record_reconcile(2, 1, 1, 0);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("control.journal.appends"), Some(2));
        assert_eq!(
            snap.histogram("control.journal.commit_ns").map(|h| h.count),
            Some(1)
        );
        assert_eq!(snap.counter("control.journal.replayed"), Some(10));
        assert_eq!(snap.counter("control.journal.torn_tails"), Some(1));
        assert_eq!(snap.counter("control.sender.pushes"), Some(1));
        assert_eq!(snap.counter("control.sender.retries"), Some(1));
        assert_eq!(snap.counter("control.sender.failed"), Some(1));
        assert_eq!(
            snap.histogram("control.sender.ack_ns").map(|h| h.count),
            Some(1)
        );
        assert_eq!(snap.counter("control.reconcile.runs"), Some(1));
        assert_eq!(snap.counter("control.reconcile.readopted"), Some(2));
        assert_eq!(snap.counter("control.reconcile.repushed"), Some(1));
        assert_eq!(snap.counter("control.reconcile.expired"), Some(1));
        assert_eq!(snap.counter("control.reconcile.unreachable"), Some(0));
    }

    #[test]
    fn autoscale_metrics_record() {
        let registry = Registry::new();
        let m = ControlMetrics::register(&registry);
        m.record_autoscale_poll();
        m.record_autoscale_poll();
        m.record_autoscale_adoption(Some(1_200), 85_000);
        m.record_autoscale_adoption(None, 40_000);
        m.record_autoscale_drained();
        m.record_autoscale_woken();
        m.set_autoscale_draining(1);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("control.autoscale.polls"), Some(2));
        assert_eq!(snap.counter("control.autoscale.adoptions"), Some(2));
        assert_eq!(snap.counter("control.autoscale.drained"), Some(1));
        assert_eq!(snap.counter("control.autoscale.woken"), Some(1));
        assert_eq!(snap.gauge("control.autoscale.draining"), Some(1.0));
        assert_eq!(
            snap.histogram("control.autoscale.detect_ms")
                .map(|h| h.count),
            Some(1),
            "detection latency only recorded when a drift window was open"
        );
        assert_eq!(
            snap.histogram("control.autoscale.decide_ns")
                .map(|h| h.count),
            Some(2)
        );
    }
}
