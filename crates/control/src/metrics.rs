//! Control-plane metrics: liveness transitions, scaling activity, and
//! table-push latency.
//!
//! The controller's closed loop (Sec. IV-B) acts on exactly these
//! signals — node health, load observations, and how fast a
//! `NC_FORWARD_TAB` push lands — so they are the control-plane slice of
//! the observability registry. [`ControlMetrics`] is a cheap-to-clone
//! handle bundle; hosts register it once and feed it from
//! [`LivenessTracker::poll`](crate::LivenessTracker::poll) events and
//! table-push round trips.

use ncvnf_obs::{desc, Counter, Histogram, MetricDesc, MetricKind, Registry, TraceKind, TraceRing};

use crate::liveness::LivenessEvent;

/// `control.liveness.suspected` — nodes that went silent past the
/// suspect threshold.
pub const LIVENESS_SUSPECTED: MetricDesc = desc(
    "control.liveness.suspected",
    MetricKind::Counter,
    "events",
    "control",
    "Liveness transitions into Suspect",
);

/// `control.liveness.died` — nodes declared dead.
pub const LIVENESS_DIED: MetricDesc = desc(
    "control.liveness.died",
    MetricKind::Counter,
    "events",
    "control",
    "Liveness transitions into Dead",
);

/// `control.liveness.recovered` — suspect/dead nodes that resumed
/// beaconing.
pub const LIVENESS_RECOVERED: MetricDesc = desc(
    "control.liveness.recovered",
    MetricKind::Counter,
    "events",
    "control",
    "Suspect or dead nodes that resumed beaconing",
);

/// `control.scaling.events` — scaling observations emitted by telemetry.
pub const SCALING_EVENTS: MetricDesc = desc(
    "control.scaling.events",
    MetricKind::Counter,
    "events",
    "control",
    "Scaling observations emitted by telemetry aggregation",
);

/// `control.table_push_ns` — round-trip latency of a table push.
pub const TABLE_PUSH_NS: MetricDesc = desc(
    "control.table_push_ns",
    MetricKind::Histogram,
    "ns",
    "control",
    "NC_FORWARD_TAB push round-trip latency (send to OK)",
);

/// Registry-backed handles for control-plane metrics.
#[derive(Debug, Clone)]
pub struct ControlMetrics {
    suspected: Counter,
    died: Counter,
    recovered: Counter,
    scaling_events: Counter,
    table_push_ns: Histogram,
    trace: TraceRing,
}

impl ControlMetrics {
    /// Registers (or retrieves) the control metrics in `registry`.
    pub fn register(registry: &Registry) -> Self {
        ControlMetrics {
            suspected: registry.counter(LIVENESS_SUSPECTED),
            died: registry.counter(LIVENESS_DIED),
            recovered: registry.counter(LIVENESS_RECOVERED),
            scaling_events: registry.counter(SCALING_EVENTS),
            table_push_ns: registry.histogram(TABLE_PUSH_NS),
            trace: registry.trace(),
        }
    }

    /// Counts one liveness transition and emits the matching trace
    /// event (`a` = node id, `b` = 0 suspect / 1 dead / 2 recovered).
    pub fn record_liveness_event(&self, event: &LivenessEvent) {
        match event {
            LivenessEvent::Suspected(node) => {
                self.suspected.inc();
                self.trace.push(TraceKind::Liveness, *node as u64, 0);
            }
            LivenessEvent::Died(node) => {
                self.died.inc();
                self.trace.push(TraceKind::Liveness, *node as u64, 1);
            }
            LivenessEvent::Recovered(node) => {
                self.recovered.inc();
                self.trace.push(TraceKind::Liveness, *node as u64, 2);
            }
        }
    }

    /// Counts a batch of liveness transitions (the shape
    /// [`LivenessTracker::poll`](crate::LivenessTracker::poll) returns).
    pub fn record_liveness_events(&self, events: &[LivenessEvent]) {
        for ev in events {
            self.record_liveness_event(ev);
        }
    }

    /// Counts `n` scaling observations.
    pub fn record_scaling_events(&self, n: u64) {
        self.scaling_events.add(n);
    }

    /// Records one table-push round trip.
    pub fn record_table_push_ns(&self, nanos: u64) {
        self.table_push_ns.record(nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn liveness_events_count_and_trace() {
        let registry = Registry::new();
        let m = ControlMetrics::register(&registry);
        m.record_liveness_events(&[
            LivenessEvent::Suspected(7),
            LivenessEvent::Died(7),
            LivenessEvent::Recovered(7),
            LivenessEvent::Suspected(9),
        ]);
        m.record_scaling_events(2);
        m.record_table_push_ns(1_000_000);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("control.liveness.suspected"), Some(2));
        assert_eq!(snap.counter("control.liveness.died"), Some(1));
        assert_eq!(snap.counter("control.liveness.recovered"), Some(1));
        assert_eq!(snap.counter("control.scaling.events"), Some(2));
        assert_eq!(
            snap.histogram("control.table_push_ns").map(|h| h.count),
            Some(1)
        );
        assert_eq!(snap.events.len(), 4, "one trace event per transition");
        assert!(snap
            .events
            .iter()
            .all(|e| e.kind == ncvnf_obs::TraceKind::Liveness));
    }
}
