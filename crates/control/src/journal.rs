//! The controller's write-ahead journal.
//!
//! The paper's controller (Sec. III-A) holds every durable decision —
//! which sessions exist, which VNFs were launched, which forwarding
//! table each node was given, which instances linger in the τ-pool — in
//! memory only. This module makes those decisions crash-safe the way
//! SDN-controller reliability work (ONIX, Ravana) does: each decision is
//! appended to an append-only log *before* the matching signal leaves
//! the controller, and on restart the log is replayed into a
//! [`ControllerState`] that reconciliation (see [`crate::reconcile()`])
//! diffs against the live network.
//!
//! # Frame format
//!
//! ```text
//! | len: u32 BE | crc32(body): u32 BE | body: len bytes |
//! ```
//!
//! `body` is one [`ControlRecord`] (1-byte tag + fields, strings with
//! 2-byte length prefixes, `f64` as IEEE-754 bits). The CRC is the
//! IEEE 802.3 polynomial. A crash mid-append leaves a *torn tail*: a
//! frame whose length header, checksum, or body is incomplete. Replay
//! stops at the first invalid frame, reports it, and
//! [`Journal::open`] truncates the file back to the last valid prefix
//! so the journal is append-ready again — records are only trusted
//! once their checksum closes over them.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use bytes::{Buf, BufMut};
use ncvnf_deploy::{PoolState, VnfPool};
use ncvnf_rlnc::SessionId;

use crate::fwdtab::ForwardingTable;
use crate::metrics::ControlMetrics;
use crate::signal::SignalError;

/// Upper bound on a single record body. Anything larger in a length
/// header is garbage (a torn tail whose bytes happen to decode as a
/// huge length), not a record we ever wrote.
const MAX_RECORD_LEN: usize = 1 << 20;

const TAG_EPOCH_STARTED: u8 = 1;
const TAG_SESSION_CREATED: u8 = 2;
const TAG_SESSION_ENDED: u8 = 3;
const TAG_VNF_LAUNCHED: u8 = 4;
const TAG_VNF_ENDED: u8 = 5;
const TAG_VNF_REUSED: u8 = 6;
const TAG_TABLE_PUSHED: u8 = 7;
const TAG_POOL_EXPIRED: u8 = 8;
const TAG_SCALE_DECISION: u8 = 9;

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) lookup table, built at
/// compile time so the crate needs no checksum dependency.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                0xEDB8_8320 ^ (crc >> 1)
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `data` — the frame checksum.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// One durable controller decision.
///
/// Records are written *before* the corresponding signal is sent
/// (write-ahead), so replaying them reconstructs what the controller
/// *intended* — reconciliation then checks what actually landed.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlRecord {
    /// A controller incarnation began. The first record of every run;
    /// restart writes `max(replayed epoch) + 1`.
    EpochStarted {
        /// The incarnation number.
        epoch: u64,
    },
    /// A multicast session was created with this generation layout.
    SessionCreated {
        /// Session id.
        session: SessionId,
        /// Block size in bytes.
        block_size: u32,
        /// Blocks per generation.
        generation_size: u32,
        /// Buffer capacity in generations.
        buffer_generations: u32,
    },
    /// A session ended.
    SessionEnded {
        /// Session id.
        session: SessionId,
    },
    /// A VNF was launched (or adopted) on a node.
    VnfLaunched {
        /// Controller-assigned node id.
        node: u32,
        /// Data-center name the instance runs in.
        data_center: String,
        /// The node's control-socket address (`ip:port`).
        control_addr: String,
    },
    /// `NC_VNF_END` was sent: the instance lingers in the τ-pool until
    /// `linger_deadline_secs` (controller clock, seconds).
    VnfEnded {
        /// Node id.
        node: u32,
        /// Absolute controller-clock deadline of the τ window.
        linger_deadline_secs: f64,
    },
    /// A lingering instance was reused before its τ deadline.
    VnfReused {
        /// Node id.
        node: u32,
    },
    /// An `NC_FORWARD_TAB` delta was pushed to a node under the given
    /// fence coordinates (see [`crate::signal::FencedSignal`]).
    TablePushed {
        /// Destination node id.
        node: u32,
        /// Controller epoch of the push.
        epoch: u64,
        /// Per-node sequence number of the push.
        seq: u64,
        /// The table delta, in [`ForwardingTable`] text form.
        table: String,
    },
    /// A τ-pool entry expired and the instance was shut down for good.
    PoolExpired {
        /// Node id.
        node: u32,
    },
    /// The autoscaler adopted a new deployment. Journaled (and
    /// committed) *before* any table or lifecycle signal of the
    /// decision leaves the controller, so a crash mid-actuation leaves
    /// an audit trail of what the scaling loop intended.
    ScaleDecision {
        /// Controller epoch the decision was made under.
        epoch: u64,
        /// Per-run decision counter (1-based).
        seq: u64,
        /// Total VNFs in the adopted deployment.
        vnfs: u32,
        /// Total multicast throughput of the adopted deployment (bps).
        rate_bps: f64,
    },
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.put_u16(s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

fn get_string(buf: &mut &[u8]) -> Result<String, SignalError> {
    if buf.len() < 2 {
        return Err(SignalError::Truncated);
    }
    let len = buf.get_u16() as usize;
    if buf.len() < len {
        return Err(SignalError::Truncated);
    }
    let s = std::str::from_utf8(&buf[..len])
        .map_err(|_| SignalError::Malformed("invalid utf-8"))?
        .to_owned();
    buf.advance(len);
    Ok(s)
}

impl ControlRecord {
    /// Serializes the record body (tag + fields, no frame header).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            ControlRecord::EpochStarted { epoch } => {
                out.put_u8(TAG_EPOCH_STARTED);
                out.put_u64(*epoch);
            }
            ControlRecord::SessionCreated {
                session,
                block_size,
                generation_size,
                buffer_generations,
            } => {
                out.put_u8(TAG_SESSION_CREATED);
                out.put_u16(session.value());
                out.put_u32(*block_size);
                out.put_u32(*generation_size);
                out.put_u32(*buffer_generations);
            }
            ControlRecord::SessionEnded { session } => {
                out.put_u8(TAG_SESSION_ENDED);
                out.put_u16(session.value());
            }
            ControlRecord::VnfLaunched {
                node,
                data_center,
                control_addr,
            } => {
                out.put_u8(TAG_VNF_LAUNCHED);
                out.put_u32(*node);
                put_string(&mut out, data_center);
                put_string(&mut out, control_addr);
            }
            ControlRecord::VnfEnded {
                node,
                linger_deadline_secs,
            } => {
                out.put_u8(TAG_VNF_ENDED);
                out.put_u32(*node);
                out.put_u64(linger_deadline_secs.to_bits());
            }
            ControlRecord::VnfReused { node } => {
                out.put_u8(TAG_VNF_REUSED);
                out.put_u32(*node);
            }
            ControlRecord::TablePushed {
                node,
                epoch,
                seq,
                table,
            } => {
                out.put_u8(TAG_TABLE_PUSHED);
                out.put_u32(*node);
                out.put_u64(*epoch);
                out.put_u64(*seq);
                out.put_u32(table.len() as u32);
                out.extend_from_slice(table.as_bytes());
            }
            ControlRecord::PoolExpired { node } => {
                out.put_u8(TAG_POOL_EXPIRED);
                out.put_u32(*node);
            }
            ControlRecord::ScaleDecision {
                epoch,
                seq,
                vnfs,
                rate_bps,
            } => {
                out.put_u8(TAG_SCALE_DECISION);
                out.put_u64(*epoch);
                out.put_u64(*seq);
                out.put_u32(*vnfs);
                out.put_u64(rate_bps.to_bits());
            }
        }
        out
    }

    /// Decodes one record body; returns the record and bytes consumed.
    ///
    /// # Errors
    ///
    /// [`SignalError::Truncated`], [`SignalError::UnknownTag`] or
    /// [`SignalError::Malformed`] — the same error shapes as the signal
    /// codec, since the failure modes are identical.
    pub fn from_bytes(data: &[u8]) -> Result<(Self, usize), SignalError> {
        if data.is_empty() {
            return Err(SignalError::Truncated);
        }
        let tag = data[0];
        let mut body = &data[1..];
        let before = body.len();
        let record = match tag {
            TAG_EPOCH_STARTED => {
                if body.len() < 8 {
                    return Err(SignalError::Truncated);
                }
                ControlRecord::EpochStarted {
                    epoch: body.get_u64(),
                }
            }
            TAG_SESSION_CREATED => {
                if body.len() < 2 + 4 + 4 + 4 {
                    return Err(SignalError::Truncated);
                }
                ControlRecord::SessionCreated {
                    session: SessionId::new(body.get_u16()),
                    block_size: body.get_u32(),
                    generation_size: body.get_u32(),
                    buffer_generations: body.get_u32(),
                }
            }
            TAG_SESSION_ENDED => {
                if body.len() < 2 {
                    return Err(SignalError::Truncated);
                }
                ControlRecord::SessionEnded {
                    session: SessionId::new(body.get_u16()),
                }
            }
            TAG_VNF_LAUNCHED => {
                if body.len() < 4 {
                    return Err(SignalError::Truncated);
                }
                let node = body.get_u32();
                let data_center = get_string(&mut body)?;
                let control_addr = get_string(&mut body)?;
                ControlRecord::VnfLaunched {
                    node,
                    data_center,
                    control_addr,
                }
            }
            TAG_VNF_ENDED => {
                if body.len() < 4 + 8 {
                    return Err(SignalError::Truncated);
                }
                let node = body.get_u32();
                let bits = body.get_u64();
                let deadline = f64::from_bits(bits);
                if !deadline.is_finite() {
                    return Err(SignalError::Malformed("non-finite linger deadline"));
                }
                ControlRecord::VnfEnded {
                    node,
                    linger_deadline_secs: deadline,
                }
            }
            TAG_VNF_REUSED => {
                if body.len() < 4 {
                    return Err(SignalError::Truncated);
                }
                ControlRecord::VnfReused {
                    node: body.get_u32(),
                }
            }
            TAG_TABLE_PUSHED => {
                if body.len() < 4 + 8 + 8 + 4 {
                    return Err(SignalError::Truncated);
                }
                let node = body.get_u32();
                let epoch = body.get_u64();
                let seq = body.get_u64();
                let tl = body.get_u32() as usize;
                if body.len() < tl {
                    return Err(SignalError::Truncated);
                }
                let table = std::str::from_utf8(&body[..tl])
                    .map_err(|_| SignalError::Malformed("invalid utf-8 table"))?
                    .to_owned();
                body.advance(tl);
                ControlRecord::TablePushed {
                    node,
                    epoch,
                    seq,
                    table,
                }
            }
            TAG_POOL_EXPIRED => {
                if body.len() < 4 {
                    return Err(SignalError::Truncated);
                }
                ControlRecord::PoolExpired {
                    node: body.get_u32(),
                }
            }
            TAG_SCALE_DECISION => {
                if body.len() < 8 + 8 + 4 + 8 {
                    return Err(SignalError::Truncated);
                }
                let epoch = body.get_u64();
                let seq = body.get_u64();
                let vnfs = body.get_u32();
                let rate_bps = f64::from_bits(body.get_u64());
                if !rate_bps.is_finite() {
                    return Err(SignalError::Malformed("non-finite decision rate"));
                }
                ControlRecord::ScaleDecision {
                    epoch,
                    seq,
                    vnfs,
                    rate_bps,
                }
            }
            t => return Err(SignalError::UnknownTag(t)),
        };
        Ok((record, 1 + (before - body.len())))
    }
}

/// What the journal believes about one node's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeStatus {
    /// Serving traffic.
    Active,
    /// `NC_VNF_END` sent; lingering in the τ-pool until the deadline.
    Draining {
        /// Absolute controller-clock deadline of the τ window.
        deadline_secs: f64,
    },
}

/// The journal's belief about one node: where it is, what table it
/// holds, and the fence coordinates of the last push it was sent.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeBelief {
    /// Data-center name.
    pub data_center: String,
    /// Control-socket address (`ip:port`).
    pub control_addr: String,
    /// The forwarding table the node should hold (all pushed deltas,
    /// merged in order).
    pub table: ForwardingTable,
    /// Epoch of the last table push journaled for this node.
    pub last_epoch: u64,
    /// Sequence number of the last table push journaled for this node.
    pub last_seq: u64,
    /// Lifecycle status.
    pub status: NodeStatus,
}

/// A session's generation layout, as journaled at creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionSpec {
    /// Block size in bytes.
    pub block_size: u32,
    /// Blocks per generation.
    pub generation_size: u32,
    /// Buffer capacity in generations.
    pub buffer_generations: u32,
}

/// The controller state reconstructed by replaying the journal.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ControllerState {
    /// Highest epoch journaled so far (0 if the journal is empty).
    pub epoch: u64,
    /// Live sessions and their layouts.
    pub sessions: BTreeMap<SessionId, SessionSpec>,
    /// Per-node beliefs, keyed by node id.
    pub nodes: BTreeMap<u32, NodeBelief>,
    /// Highest autoscaler decision sequence journaled (0 if none); a
    /// restarting autoscaler continues its decision counter from here.
    pub scale_decisions: u64,
}

impl ControllerState {
    /// Replays records in order into a state. Records that reference a
    /// node never launched (possible only with a hand-edited journal)
    /// are ignored rather than trusted.
    pub fn replay(records: &[ControlRecord]) -> Self {
        let mut state = ControllerState::default();
        for record in records {
            match record {
                ControlRecord::EpochStarted { epoch } => {
                    state.epoch = state.epoch.max(*epoch);
                }
                ControlRecord::SessionCreated {
                    session,
                    block_size,
                    generation_size,
                    buffer_generations,
                } => {
                    state.sessions.insert(
                        *session,
                        SessionSpec {
                            block_size: *block_size,
                            generation_size: *generation_size,
                            buffer_generations: *buffer_generations,
                        },
                    );
                }
                ControlRecord::SessionEnded { session } => {
                    state.sessions.remove(session);
                }
                ControlRecord::VnfLaunched {
                    node,
                    data_center,
                    control_addr,
                } => {
                    state.nodes.insert(
                        *node,
                        NodeBelief {
                            data_center: data_center.clone(),
                            control_addr: control_addr.clone(),
                            table: ForwardingTable::new(),
                            last_epoch: 0,
                            last_seq: 0,
                            status: NodeStatus::Active,
                        },
                    );
                }
                ControlRecord::VnfEnded {
                    node,
                    linger_deadline_secs,
                } => {
                    if let Some(belief) = state.nodes.get_mut(node) {
                        belief.status = NodeStatus::Draining {
                            deadline_secs: *linger_deadline_secs,
                        };
                    }
                }
                ControlRecord::VnfReused { node } => {
                    if let Some(belief) = state.nodes.get_mut(node) {
                        belief.status = NodeStatus::Active;
                    }
                }
                ControlRecord::TablePushed {
                    node,
                    epoch,
                    seq,
                    table,
                } => {
                    if let Some(belief) = state.nodes.get_mut(node) {
                        if let Ok(delta) = ForwardingTable::parse(table) {
                            belief.table.merge(&delta);
                        }
                        belief.last_epoch = *epoch;
                        belief.last_seq = *seq;
                    }
                }
                ControlRecord::PoolExpired { node } => {
                    state.nodes.remove(node);
                }
                ControlRecord::ScaleDecision { seq, .. } => {
                    state.scale_decisions = state.scale_decisions.max(*seq);
                }
            }
        }
        state
    }

    /// The epoch a restarting controller must fence its signals with:
    /// one above everything ever journaled.
    pub fn next_epoch(&self) -> u64 {
        self.epoch + 1
    }

    /// Rebuilds the [`VnfPool`] from the replayed node statuses: every
    /// `Active` node is an active instance, every `Draining` node is a
    /// lingering instance with its journaled deadline. Ticking the
    /// returned pool with the current clock expires every τ window that
    /// closed while the controller was down.
    pub fn rebuild_pool(&self, tau: f64, launch_latency: f64) -> VnfPool {
        let mut pool = PoolState {
            tau,
            launch_latency,
            ..PoolState::default()
        };
        for belief in self.nodes.values() {
            match belief.status {
                NodeStatus::Active => pool.active += 1,
                NodeStatus::Draining { deadline_secs } => pool.lingering.push(deadline_secs),
            }
        }
        pool.total_launches = pool.active + pool.lingering.len() as u64;
        VnfPool::import(pool)
    }
}

/// What replay found in the journal file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayReport {
    /// Valid records replayed.
    pub records: u64,
    /// True if the file ended in an incomplete or corrupt frame.
    pub torn_tail: bool,
    /// Bytes discarded from the torn tail (0 when clean).
    pub truncated_bytes: u64,
}

/// Scans `bytes` for consecutive valid frames. Returns the decoded
/// records and the length of the valid prefix — everything past it is
/// a torn tail.
pub fn scan_frames(bytes: &[u8]) -> (Vec<ControlRecord>, usize) {
    let mut records = Vec::new();
    let mut offset = 0;
    loop {
        let rest = &bytes[offset..];
        if rest.len() < 8 {
            break;
        }
        let len = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        if len > MAX_RECORD_LEN || rest.len() < 8 + len {
            break;
        }
        let crc = u32::from_be_bytes([rest[4], rest[5], rest[6], rest[7]]);
        let body = &rest[8..8 + len];
        if crc32(body) != crc {
            break;
        }
        match ControlRecord::from_bytes(body) {
            Ok((record, used)) if used == len => {
                records.push(record);
                offset += 8 + len;
            }
            _ => break,
        }
    }
    (records, offset)
}

/// The append half of the write-ahead log.
///
/// Appends buffer in memory; [`commit`](Self::commit) writes them out
/// and `fsync`s, so callers group the records of one decision into one
/// durable batch. [`log`](Self::log) is the single-record convenience.
/// Dropping the journal flushes best-effort, but only a returned
/// `Ok(())` from `commit` proves durability.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    pending: Vec<u8>,
    metrics: Option<ControlMetrics>,
}

impl Journal {
    /// Opens (or creates) the journal at `path`, replays every valid
    /// record into a [`ControllerState`], and truncates any torn tail
    /// so the file is append-ready.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn open(
        path: impl AsRef<Path>,
    ) -> std::io::Result<(Journal, ControllerState, ReplayReport)> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (records, valid_len) = scan_frames(&bytes);
        let torn = valid_len < bytes.len();
        if torn {
            file.set_len(valid_len as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(valid_len as u64))?;
        let state = ControllerState::replay(&records);
        let report = ReplayReport {
            records: records.len() as u64,
            torn_tail: torn,
            truncated_bytes: (bytes.len() - valid_len) as u64,
        };
        Ok((
            Journal {
                file,
                path,
                pending: Vec::new(),
                metrics: None,
            },
            state,
            report,
        ))
    }

    /// Attaches a metrics bundle; appends and commits record into it.
    pub fn with_metrics(mut self, metrics: ControlMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Buffers one record (frame-encoded) for the next commit.
    pub fn append(&mut self, record: &ControlRecord) {
        let body = record.to_bytes();
        self.pending.reserve(8 + body.len());
        self.pending
            .extend_from_slice(&(body.len() as u32).to_be_bytes());
        self.pending.extend_from_slice(&crc32(&body).to_be_bytes());
        self.pending.extend_from_slice(&body);
        if let Some(m) = &self.metrics {
            m.record_journal_append();
        }
    }

    /// Writes all buffered records and `fsync`s. A decision is durable
    /// only once this returns `Ok(())`.
    ///
    /// # Errors
    ///
    /// Propagates write/sync errors; buffered records stay pending so a
    /// retry can complete the batch.
    pub fn commit(&mut self) -> std::io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let started = Instant::now();
        self.file.write_all(&self.pending)?;
        self.file.sync_data()?;
        self.pending.clear();
        if let Some(m) = &self.metrics {
            m.record_journal_commit_ns(started.elapsed().as_nanos() as u64);
        }
        Ok(())
    }

    /// Appends one record and commits it immediately (write-ahead for a
    /// single decision).
    ///
    /// # Errors
    ///
    /// Propagates write/sync errors.
    pub fn log(&mut self, record: &ControlRecord) -> std::io::Result<()> {
        self.append(record);
        self.commit()
    }
}

impl Drop for Journal {
    /// Best-effort flush of anything still pending; errors are dropped
    /// because there is no one left to retry.
    fn drop(&mut self) {
        let _ = self.commit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<ControlRecord> {
        vec![
            ControlRecord::EpochStarted { epoch: 1 },
            ControlRecord::SessionCreated {
                session: SessionId::new(7),
                block_size: 1460,
                generation_size: 4,
                buffer_generations: 1024,
            },
            ControlRecord::VnfLaunched {
                node: 0,
                data_center: "ec2-oregon".into(),
                control_addr: "127.0.0.1:4100".into(),
            },
            ControlRecord::VnfLaunched {
                node: 1,
                data_center: "linode-london".into(),
                control_addr: "127.0.0.1:4200".into(),
            },
            ControlRecord::TablePushed {
                node: 0,
                epoch: 1,
                seq: 1,
                table: "session 7 127.0.0.1:4201\n".into(),
            },
            ControlRecord::VnfEnded {
                node: 1,
                linger_deadline_secs: 700.0,
            },
            ControlRecord::VnfReused { node: 1 },
            ControlRecord::ScaleDecision {
                epoch: 1,
                seq: 1,
                vnfs: 2,
                rate_bps: 150e6,
            },
        ]
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "ncvnf-journal-test-{}-{tag}.wal",
            std::process::id()
        ))
    }

    #[test]
    fn record_codec_roundtrips() {
        for record in sample_records().iter().chain(&[
            ControlRecord::SessionEnded {
                session: SessionId::new(7),
            },
            ControlRecord::PoolExpired { node: 3 },
        ]) {
            let bytes = record.to_bytes();
            let (back, used) = ControlRecord::from_bytes(&bytes).unwrap();
            assert_eq!(&back, record);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn truncated_records_error_cleanly() {
        for record in sample_records() {
            let bytes = record.to_bytes();
            for cut in 0..bytes.len() {
                assert!(
                    ControlRecord::from_bytes(&bytes[..cut]).is_err(),
                    "cut at {cut} of {record:?}"
                );
            }
        }
        assert_eq!(
            ControlRecord::from_bytes(&[0xEE]).unwrap_err(),
            SignalError::UnknownTag(0xEE)
        );
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn journal_roundtrips_through_a_file() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let (mut journal, state, report) = Journal::open(&path).unwrap();
            assert_eq!(state, ControllerState::default());
            assert_eq!(report.records, 0);
            assert!(!report.torn_tail);
            for record in sample_records() {
                journal.append(&record);
            }
            journal.commit().unwrap();
        }
        let (_journal, state, report) = Journal::open(&path).unwrap();
        assert_eq!(report.records, sample_records().len() as u64);
        assert!(!report.torn_tail);
        assert_eq!(state.epoch, 1);
        assert_eq!(
            state.sessions.get(&SessionId::new(7)),
            Some(&SessionSpec {
                block_size: 1460,
                generation_size: 4,
                buffer_generations: 1024,
            })
        );
        let n0 = &state.nodes[&0];
        assert_eq!(n0.last_seq, 1);
        assert_eq!(
            n0.table.next_hops(SessionId::new(7)).unwrap(),
            ["127.0.0.1:4201"]
        );
        // Node 1 drained, then was reused: Active again.
        assert_eq!(state.nodes[&1].status, NodeStatus::Active);
        // The autoscaler's decision counter resumes past the journal.
        assert_eq!(state.scale_decisions, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_append_continues() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (mut journal, _, _) = Journal::open(&path).unwrap();
            journal
                .log(&ControlRecord::EpochStarted { epoch: 1 })
                .unwrap();
            journal.log(&ControlRecord::VnfReused { node: 9 }).unwrap();
        }
        let clean_len = std::fs::metadata(&path).unwrap().len();
        // Simulate a crash mid-append: a frame header promising more
        // bytes than exist, followed by part of a body.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&200u32.to_be_bytes()).unwrap();
            f.write_all(&[0xAA, 0xBB, 0xCC, 0xDD, 1, 2, 3]).unwrap();
        }
        let (mut journal, state, report) = Journal::open(&path).unwrap();
        assert_eq!(report.records, 2);
        assert!(report.torn_tail);
        assert_eq!(report.truncated_bytes, 11);
        assert_eq!(state.epoch, 1);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        // The journal is append-ready again.
        journal
            .log(&ControlRecord::EpochStarted { epoch: 2 })
            .unwrap();
        drop(journal);
        let (_j, state, report) = Journal::open(&path).unwrap();
        assert!(!report.torn_tail);
        assert_eq!(report.records, 3);
        assert_eq!(state.epoch, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_checksum_stops_replay_at_last_good_record() {
        let path = temp_path("crc");
        let _ = std::fs::remove_file(&path);
        {
            let (mut journal, _, _) = Journal::open(&path).unwrap();
            journal
                .log(&ControlRecord::EpochStarted { epoch: 5 })
                .unwrap();
            journal
                .log(&ControlRecord::VnfLaunched {
                    node: 2,
                    data_center: "dc".into(),
                    control_addr: "127.0.0.1:1".into(),
                })
                .unwrap();
        }
        // Flip one byte in the last record's body.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let (_j, state, report) = Journal::open(&path).unwrap();
        assert_eq!(report.records, 1, "corrupt record discarded");
        assert!(report.torn_tail);
        assert_eq!(state.epoch, 5);
        assert!(state.nodes.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pool_rebuild_reflects_statuses_and_expires_overdue_lingerers() {
        let records = vec![
            ControlRecord::EpochStarted { epoch: 1 },
            ControlRecord::VnfLaunched {
                node: 0,
                data_center: "dc".into(),
                control_addr: "127.0.0.1:1".into(),
            },
            ControlRecord::VnfLaunched {
                node: 1,
                data_center: "dc".into(),
                control_addr: "127.0.0.1:2".into(),
            },
            ControlRecord::VnfEnded {
                node: 1,
                linger_deadline_secs: 300.0,
            },
        ];
        let state = ControllerState::replay(&records);
        let mut pool = state.rebuild_pool(600.0, 35.0);
        assert_eq!(pool.active(), 1);
        assert_eq!(pool.billable(100.0), 2, "lingerer still billed before τ");
        // The controller was down past the deadline: expire it.
        pool.tick(301.0);
        assert_eq!(pool.billable(301.0), 1);
        assert_eq!(state.next_epoch(), 2);
    }

    #[test]
    fn replay_is_deterministic() {
        let records = sample_records();
        assert_eq!(
            ControllerState::replay(&records),
            ControllerState::replay(&records)
        );
    }
}
