//! Property-based tests for the RLNC codec.

use ncvnf_rlnc::{
    CodedPacket, GenerationConfig, GenerationDecoder, GenerationEncoder, ObjectDecoder,
    ObjectEncoder, ReceiveOutcome, Recoder, SessionId,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any generation decodes from enough random coded packets, for random
    /// layouts, payloads and RNG seeds.
    #[test]
    fn generation_roundtrip(
        block_size in 1usize..64,
        g in 1usize..9,
        seed in any::<u64>(),
        byte in any::<u8>(),
        fill in 1usize..256,
    ) {
        let cfg = GenerationConfig::new(block_size, g).unwrap();
        let len = usize::min(fill, cfg.generation_payload());
        let data: Vec<u8> = (0..len).map(|i| byte.wrapping_add(i as u8)).collect();
        let enc = GenerationEncoder::new(cfg, &data).unwrap();
        let mut dec = GenerationDecoder::new(cfg);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sent = 0;
        while !dec.is_complete() {
            let pkt = enc.coded_packet(SessionId::new(1), 0, &mut rng);
            dec.receive(pkt.coefficients(), pkt.payload()).unwrap();
            sent += 1;
            prop_assert!(sent < 40 * g, "failed to converge");
        }
        let decoded = dec.decoded_payload().unwrap();
        prop_assert_eq!(&decoded[..len], &data[..]);
        prop_assert!(decoded[len..].iter().all(|&b| b == 0));
    }

    /// Recoding in the middle never breaks decodability and never grows
    /// the coefficient space.
    #[test]
    fn recode_chain_roundtrip(
        g in 1usize..6,
        chain_len in 1usize..4,
        seed in any::<u64>(),
    ) {
        let cfg = GenerationConfig::new(8, g).unwrap();
        let data: Vec<u8> = (0..cfg.generation_payload()).map(|i| (i * 7) as u8).collect();
        let enc = GenerationEncoder::new(cfg, &data).unwrap();
        let mut chain: Vec<Recoder> =
            (0..chain_len).map(|_| Recoder::new(cfg, SessionId::new(3), 5)).collect();
        let mut dec = GenerationDecoder::new(cfg);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sent = 0;
        while !dec.is_complete() {
            let mut pkt = enc.coded_packet(SessionId::new(3), 5, &mut rng);
            for r in chain.iter_mut() {
                pkt = r.process(&pkt, &mut rng).unwrap();
            }
            dec.receive(pkt.coefficients(), pkt.payload()).unwrap();
            sent += 1;
            prop_assert!(sent < 60 * g, "failed to converge through chain");
        }
        prop_assert_eq!(dec.decoded_payload().unwrap(), data);
    }

    /// Decoder rank equals g exactly when decoding succeeds; feeding only
    /// k < g distinct systematic packets never completes.
    #[test]
    fn rank_semantics(g in 2usize..8, k_raw in 1usize..8) {
        let cfg = GenerationConfig::new(4, g).unwrap();
        let k = k_raw % g; // strictly fewer than g
        let data = vec![0xABu8; cfg.generation_payload()];
        let enc = GenerationEncoder::new(cfg, &data).unwrap();
        let mut dec = GenerationDecoder::new(cfg);
        for i in 0..k {
            let pkt = enc.systematic_packet(SessionId::new(0), 0, i);
            let out = dec.receive(pkt.coefficients(), pkt.payload()).unwrap();
            let innovative = matches!(out, ReceiveOutcome::Innovative { .. });
            prop_assert!(innovative);
        }
        prop_assert_eq!(dec.rank(), k);
        prop_assert!(!dec.is_complete());
        prop_assert!(dec.decoded_payload().is_err());
    }

    /// Wire round-trip of arbitrary coded packets.
    #[test]
    fn packet_wire_roundtrip(
        session in any::<u16>(),
        generation in 0u64..u32::MAX as u64,
        coeffs in prop::collection::vec(any::<u8>(), 1..16),
        payload in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let g = coeffs.len();
        let pkt = CodedPacket::new(
            ncvnf_rlnc::NcHeader {
                session: SessionId::new(session),
                generation,
                coefficients: coeffs.into(),
            },
            bytes::Bytes::from(payload),
        );
        let wire = pkt.to_bytes();
        let back = CodedPacket::from_bytes(&wire, g).unwrap();
        prop_assert_eq!(back, pkt);
    }

    /// Object-level framing recovers exact bytes for arbitrary objects.
    #[test]
    fn object_roundtrip(
        object in prop::collection::vec(any::<u8>(), 1..2000),
        seed in any::<u64>(),
    ) {
        let cfg = GenerationConfig::new(32, 4).unwrap();
        let enc = ObjectEncoder::new(cfg, SessionId::new(2), &object).unwrap();
        let mut dec = ObjectDecoder::new(cfg, enc.generations());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rounds = 0;
        while !dec.is_complete() {
            for g in 0..enc.generations() {
                let pkt = enc.coded_packet(g, &mut rng);
                dec.receive(&pkt).unwrap();
            }
            rounds += 1;
            prop_assert!(rounds < 50, "object decode failed to converge");
        }
        prop_assert_eq!(dec.into_object().unwrap(), object);
    }
}
