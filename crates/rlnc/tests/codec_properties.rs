//! Property-based tests for the RLNC codec.

use ncvnf_rlnc::{
    CodedPacket, CodingMode, GenerationConfig, GenerationDecoder, GenerationEncoder, ObjectDecoder,
    ObjectEncoder, PayloadPool, ReceiveOutcome, Recoder, SessionId, WindowConfig, WindowDecoder,
    WindowEncoder, WindowOutcome,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any generation decodes from enough random coded packets, for random
    /// layouts, payloads and RNG seeds.
    #[test]
    fn generation_roundtrip(
        block_size in 1usize..64,
        g in 1usize..9,
        seed in any::<u64>(),
        byte in any::<u8>(),
        fill in 1usize..256,
    ) {
        let cfg = GenerationConfig::new(block_size, g).unwrap();
        let len = usize::min(fill, cfg.generation_payload());
        let data: Vec<u8> = (0..len).map(|i| byte.wrapping_add(i as u8)).collect();
        let enc = GenerationEncoder::new(cfg, &data).unwrap();
        let mut dec = GenerationDecoder::new(cfg);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sent = 0;
        while !dec.is_complete() {
            let pkt = enc.coded_packet(SessionId::new(1), 0, &mut rng);
            dec.receive(pkt.coefficients(), pkt.payload()).unwrap();
            sent += 1;
            prop_assert!(sent < 40 * g, "failed to converge");
        }
        let decoded = dec.decoded_payload().unwrap();
        prop_assert_eq!(&decoded[..len], &data[..]);
        prop_assert!(decoded[len..].iter().all(|&b| b == 0));
    }

    /// Recoding in the middle never breaks decodability and never grows
    /// the coefficient space.
    #[test]
    fn recode_chain_roundtrip(
        g in 1usize..6,
        chain_len in 1usize..4,
        seed in any::<u64>(),
    ) {
        let cfg = GenerationConfig::new(8, g).unwrap();
        let data: Vec<u8> = (0..cfg.generation_payload()).map(|i| (i * 7) as u8).collect();
        let enc = GenerationEncoder::new(cfg, &data).unwrap();
        let mut chain: Vec<Recoder> =
            (0..chain_len).map(|_| Recoder::new(cfg, SessionId::new(3), 5)).collect();
        let mut dec = GenerationDecoder::new(cfg);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sent = 0;
        while !dec.is_complete() {
            let mut pkt = enc.coded_packet(SessionId::new(3), 5, &mut rng);
            for r in chain.iter_mut() {
                pkt = r.process(&pkt, &mut rng).unwrap();
            }
            dec.receive(pkt.coefficients(), pkt.payload()).unwrap();
            sent += 1;
            prop_assert!(sent < 60 * g, "failed to converge through chain");
        }
        prop_assert_eq!(dec.decoded_payload().unwrap(), data);
    }

    /// Decoder rank equals g exactly when decoding succeeds; feeding only
    /// k < g distinct systematic packets never completes.
    #[test]
    fn rank_semantics(g in 2usize..8, k_raw in 1usize..8) {
        let cfg = GenerationConfig::new(4, g).unwrap();
        let k = k_raw % g; // strictly fewer than g
        let data = vec![0xABu8; cfg.generation_payload()];
        let enc = GenerationEncoder::new(cfg, &data).unwrap();
        let mut dec = GenerationDecoder::new(cfg);
        for i in 0..k {
            let pkt = enc.systematic_packet(SessionId::new(0), 0, i);
            let out = dec.receive(pkt.coefficients(), pkt.payload()).unwrap();
            let innovative = matches!(out, ReceiveOutcome::Innovative { .. });
            prop_assert!(innovative);
        }
        prop_assert_eq!(dec.rank(), k);
        prop_assert!(!dec.is_complete());
        prop_assert!(dec.decoded_payload().is_err());
    }

    /// Wire round-trip of arbitrary coded packets.
    #[test]
    fn packet_wire_roundtrip(
        session in any::<u16>(),
        generation in 0u64..u32::MAX as u64,
        coeffs in prop::collection::vec(any::<u8>(), 1..16),
        payload in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let g = coeffs.len();
        let pkt = CodedPacket::new(
            ncvnf_rlnc::NcHeader {
                session: SessionId::new(session),
                generation,
                coefficients: coeffs.into(),
            },
            bytes::Bytes::from(payload),
        );
        let wire = pkt.to_bytes();
        let back = CodedPacket::from_bytes(&wire, g).unwrap();
        prop_assert_eq!(back, pkt);
    }

    /// Sparse repair streams decode to exactly the same payload as dense
    /// ones, at any density, under the same seeded loss pattern.
    #[test]
    fn sparse_and_dense_decode_equivalence(
        g in 2usize..10,
        density_raw in 1usize..10,
        seed in any::<u64>(),
        drop_mask in any::<u32>(),
    ) {
        let cfg = GenerationConfig::new(16, g).unwrap();
        let data: Vec<u8> =
            (0..cfg.generation_payload()).map(|i| (i * 13 + 5) as u8).collect();
        let enc = GenerationEncoder::new(cfg, &data).unwrap();
        let nonzeros = 1 + density_raw % g;
        let mut pool = PayloadPool::new();
        for mode in [CodingMode::Dense, CodingMode::Sparse { nonzeros }] {
            let mut dec = GenerationDecoder::new(cfg);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut seq = 0u64;
            while !dec.is_complete() {
                let pkt = enc.mode_packet_pooled(
                    mode, SessionId::new(7), 0, seq, &mut rng, &mut pool,
                );
                let dropped = seq < 32 && (drop_mask >> seq) & 1 == 1;
                if !dropped {
                    dec.receive(pkt.coefficients(), pkt.payload()).unwrap();
                }
                pool.recycle(pkt);
                seq += 1;
                prop_assert!(seq < 400 * g as u64, "mode {:?} failed to converge", mode);
            }
            prop_assert_eq!(&dec.decoded_payload().unwrap()[..], &data[..]);
        }
    }

    /// A sliding-window stream and a generational transfer deliver the
    /// same bytes under the same seeded loss pattern.
    #[test]
    fn window_and_generational_delivery_equivalence(
        seed in any::<u64>(),
        drop_mask in any::<u64>(),
    ) {
        let symbol = 32usize;
        let n_symbols = 12usize;
        let data: Vec<u8> =
            (0..symbol * n_symbols).map(|i| (i * 31 + 7) as u8).collect();
        let lost = |i: u64| i < 64 && (drop_mask >> i) & 1 == 1;

        // Generational path: same data, same loss indices.
        let cfg = GenerationConfig::new(symbol, 4).unwrap();
        let enc = ObjectEncoder::new(cfg, SessionId::new(5), &data).unwrap();
        let mut dec = ObjectDecoder::new(cfg, enc.generations());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx = 0u64;
        let mut rounds = 0;
        while !dec.is_complete() {
            for gen in 0..enc.generations() {
                let pkt = enc.coded_packet(gen, &mut rng);
                if !lost(idx) {
                    dec.receive(&pkt).unwrap();
                }
                idx += 1;
            }
            rounds += 1;
            prop_assert!(rounds < 100, "generational path failed to converge");
        }
        let generational_bytes = dec.into_object().unwrap();

        // Window path: systematic stream with coded repair, acks
        // sliding the encoder as the delivery cursor advances.
        let window = WindowConfig::new(symbol, 6).unwrap();
        let mut wenc = WindowEncoder::new(window, SessionId::new(5));
        let mut wdec = WindowDecoder::new(window);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pool = PayloadPool::new();
        let mut delivered: Vec<u8> = Vec::new();
        let mut chunks = data.chunks(symbol);
        let mut sent_all = false;
        let mut idx = 0u64;
        let mut attempts = 0;
        while delivered.len() < data.len() {
            while !sent_all && wenc.live() < window.capacity() {
                let Some(chunk) = chunks.next() else {
                    sent_all = true;
                    break;
                };
                let s = wenc.push(chunk).unwrap();
                let pkt = wenc.systematic_packet_pooled(s, &mut pool).unwrap();
                if !lost(idx) {
                    if let WindowOutcome::Delivered { payloads, .. } =
                        wdec.receive(pkt.base, &pkt.coefficients, &pkt.payload).unwrap()
                    {
                        for p in payloads {
                            delivered.extend_from_slice(&p);
                        }
                    }
                }
                pool.recycle_window(pkt);
                idx += 1;
            }
            if delivered.len() < data.len() {
                let pkt = wenc.coded_packet_pooled(&mut rng, &mut pool).unwrap();
                if !lost(idx) {
                    if let WindowOutcome::Delivered { payloads, .. } =
                        wdec.receive(pkt.base, &pkt.coefficients, &pkt.payload).unwrap()
                    {
                        for p in payloads {
                            delivered.extend_from_slice(&p);
                        }
                    }
                }
                pool.recycle_window(pkt);
                idx += 1;
            }
            wenc.handle_ack(wdec.cumulative_ack());
            attempts += 1;
            prop_assert!(attempts < 2000, "window path failed to converge");
        }
        prop_assert_eq!(&delivered, &generational_bytes);
        prop_assert_eq!(delivered, data);
    }

    /// Object-level framing recovers exact bytes for arbitrary objects.
    #[test]
    fn object_roundtrip(
        object in prop::collection::vec(any::<u8>(), 1..2000),
        seed in any::<u64>(),
    ) {
        let cfg = GenerationConfig::new(32, 4).unwrap();
        let enc = ObjectEncoder::new(cfg, SessionId::new(2), &object).unwrap();
        let mut dec = ObjectDecoder::new(cfg, enc.generations());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rounds = 0;
        while !dec.is_complete() {
            for g in 0..enc.generations() {
                let pkt = enc.coded_packet(g, &mut rng);
                dec.receive(&pkt).unwrap();
            }
            rounds += 1;
            prop_assert!(rounds < 50, "object decode failed to converge");
        }
        prop_assert_eq!(dec.into_object().unwrap(), object);
    }
}
