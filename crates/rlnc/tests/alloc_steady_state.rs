//! The batch encode and recode paths are allocation-free at steady state.
//!
//! A counting global allocator wraps `System`; after a warm-up phase that
//! fills the [`PayloadPool`] and grows every scratch buffer to its final
//! capacity, checkout → code → freeze → recycle cycles must touch the
//! heap exactly zero times. The counter is scoped to the measuring thread
//! so harness threads (e.g. libtest's result-channel lazy init) cannot
//! pollute it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use ncvnf_rlnc::{
    CodingMode, GenerationConfig, GenerationEncoder, PayloadPool, Recoder, SessionId, WindowConfig,
    WindowEncoder, WindowRecoder,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct CountingAlloc;

static HEAP_OPS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Count only allocations made by the thread under measurement: the
    // libtest main thread lazily initializes its mpsc receiver context
    // (one-time ~48 B Arc) while blocked waiting for the test result,
    // which otherwise races into the measured window. Const-initialized
    // native TLS for a `Cell<bool>` never allocates, so reading the flag
    // inside the allocator is safe.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn counting_here() -> bool {
    COUNTING.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_here() {
            HEAP_OPS.fetch_add(1, Ordering::SeqCst);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_here() {
            HEAP_OPS.fetch_add(1, Ordering::SeqCst);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Number of heap allocations (incl. reallocations) performed by `work`
/// on the calling thread.
fn heap_ops_during(mut work: impl FnMut()) -> u64 {
    let before = HEAP_OPS.load(Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
    work();
    COUNTING.with(|c| c.set(false));
    HEAP_OPS.load(Ordering::SeqCst) - before
}

#[test]
fn warm_encode_and_recode_paths_do_not_allocate() {
    const BLOCK: usize = 256;
    const G: usize = 8;
    const BATCH: usize = 4;

    let config = GenerationConfig::new(BLOCK, G).expect("valid layout");
    let mut rng = StdRng::seed_from_u64(0xA110_C001);
    let mut data = vec![0u8; config.generation_payload()];
    rng.fill(&mut data[..]);
    let encoder = GenerationEncoder::new(config, &data).expect("valid generation");
    let session = SessionId::new(42);

    let mut pool = PayloadPool::new();
    let mut out = Vec::with_capacity(BATCH);

    // Warm-up: the pool fills with coefficient- and payload-sized buffers
    // and the checkout order is LIFO, so after a few cycles every buffer
    // settles into a fixed role with its final capacity.
    for _ in 0..16 {
        encoder.coded_packets_into(session, 0, BATCH, &mut rng, &mut pool, &mut out);
        for pkt in out.drain(..) {
            pool.recycle(pkt);
        }
    }
    let idle_before = pool.idle();

    let encode_allocs = heap_ops_during(|| {
        for _ in 0..64 {
            encoder.coded_packets_into(session, 0, BATCH, &mut rng, &mut pool, &mut out);
            for pkt in out.drain(..) {
                pool.recycle(pkt);
            }
        }
    });
    assert_eq!(
        encode_allocs, 0,
        "warm batch encode must not touch the heap (256 packets coded)"
    );
    assert_eq!(
        pool.idle(),
        idle_before,
        "every buffer returned to the pool"
    );

    // Recode at full rank: the relay steady state.
    let mut recoder = Recoder::new(config, session, 0);
    while recoder.rank() < G {
        let pkt = encoder.coded_packet(session, 0, &mut rng);
        recoder
            .absorb(pkt.coefficients(), pkt.payload())
            .expect("layout matches");
    }
    for _ in 0..16 {
        let pkt = recoder
            .recode_into(&mut rng, &mut pool)
            .expect("recoder is non-empty");
        pool.recycle(pkt);
    }

    let recode_allocs = heap_ops_during(|| {
        for _ in 0..256 {
            let pkt = recoder
                .recode_into(&mut rng, &mut pool)
                .expect("recoder is non-empty");
            pool.recycle(pkt);
        }
    });
    assert_eq!(
        recode_allocs, 0,
        "warm recode must not touch the heap (256 packets recoded)"
    );
}

#[test]
fn warm_sparse_emission_does_not_allocate() {
    const BLOCK: usize = 256;
    const G: usize = 16;
    const BATCH: usize = 4;

    let config = GenerationConfig::new(BLOCK, G).expect("valid layout");
    let mut rng = StdRng::seed_from_u64(0x5AA5_1DEA);
    let mut data = vec![0u8; config.generation_payload()];
    rng.fill(&mut data[..]);
    let encoder = GenerationEncoder::new(config, &data).expect("valid generation");
    let session = SessionId::new(43);
    let mode = CodingMode::sparse_default(G);

    let mut pool = PayloadPool::new();
    let mut out = Vec::with_capacity(BATCH);

    // Warm-up covers both halves of the mode: the systematic first pass
    // (seq < g) and the sparse repair tail.
    for cycle in 0..16u64 {
        let first_seq = (cycle * BATCH as u64) % (2 * G as u64);
        encoder.mode_packets_into(
            mode, session, 0, first_seq, BATCH, &mut rng, &mut pool, &mut out,
        );
        for pkt in out.drain(..) {
            pool.recycle(pkt);
        }
    }
    let idle_before = pool.idle();

    let sparse_allocs = heap_ops_during(|| {
        for cycle in 0..64u64 {
            let first_seq = (cycle * BATCH as u64) % (2 * G as u64);
            encoder.mode_packets_into(
                mode, session, 0, first_seq, BATCH, &mut rng, &mut pool, &mut out,
            );
            for pkt in out.drain(..) {
                pool.recycle(pkt);
            }
        }
    });
    assert_eq!(
        sparse_allocs, 0,
        "warm sparse/systematic emission must not touch the heap"
    );
    assert_eq!(
        pool.idle(),
        idle_before,
        "every buffer returned to the pool"
    );
}

#[test]
fn warm_window_emission_and_recode_do_not_allocate() {
    const SYMBOL: usize = 256;
    const CAPACITY: usize = 16;

    let window = WindowConfig::new(SYMBOL, CAPACITY).expect("valid window");
    let session = SessionId::new(44);
    let mut rng = StdRng::seed_from_u64(0xD0_511DE);
    let mut encoder = WindowEncoder::new(window, session);
    let mut symbol = vec![0u8; SYMBOL];
    for _ in 0..CAPACITY {
        rng.fill(&mut symbol[..]);
        encoder.push(&symbol).expect("window has room");
    }

    let mut pool = PayloadPool::new();

    // Warm-up: systematic and coded emission settle the pool buffers.
    for i in 0..16u64 {
        let pkt = encoder
            .systematic_packet_pooled(i % CAPACITY as u64, &mut pool)
            .expect("symbol is live");
        pool.recycle_window(pkt);
        let pkt = encoder
            .coded_packet_pooled(&mut rng, &mut pool)
            .expect("window is non-empty");
        pool.recycle_window(pkt);
    }
    let idle_before = pool.idle();

    let emit_allocs = heap_ops_during(|| {
        for i in 0..64u64 {
            let pkt = encoder
                .systematic_packet_pooled(i % CAPACITY as u64, &mut pool)
                .expect("symbol is live");
            pool.recycle_window(pkt);
            let pkt = encoder
                .coded_packet_pooled(&mut rng, &mut pool)
                .expect("window is non-empty");
            pool.recycle_window(pkt);
        }
    });
    assert_eq!(
        emit_allocs, 0,
        "warm window emission must not touch the heap"
    );
    assert_eq!(
        pool.idle(),
        idle_before,
        "every buffer returned to the pool"
    );

    // Relay steady state: a full recoder re-mixing the live window.
    let mut recoder = WindowRecoder::new(window, session);
    for _ in 0..CAPACITY {
        let pkt = encoder
            .coded_packet_pooled(&mut rng, &mut pool)
            .expect("window is non-empty");
        recoder
            .absorb(pkt.base, &pkt.coefficients, &pkt.payload)
            .expect("layout matches");
        pool.recycle_window(pkt);
    }
    for _ in 0..16 {
        let pkt = recoder
            .recode_into(&mut rng, &mut pool)
            .expect("recoder is non-empty");
        pool.recycle_window(pkt);
    }

    let recode_allocs = heap_ops_during(|| {
        for _ in 0..256 {
            let pkt = recoder
                .recode_into(&mut rng, &mut pool)
                .expect("recoder is non-empty");
            pool.recycle_window(pkt);
        }
    });
    assert_eq!(
        recode_allocs, 0,
        "warm window recode must not touch the heap (256 packets recoded)"
    );
}
