//! The batch encode and recode paths are allocation-free at steady state.
//!
//! A counting global allocator wraps `System`; after a warm-up phase that
//! fills the [`PayloadPool`] and grows every scratch buffer to its final
//! capacity, checkout → code → freeze → recycle cycles must touch the
//! heap exactly zero times. The counter is scoped to the measuring thread
//! so harness threads (e.g. libtest's result-channel lazy init) cannot
//! pollute it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use ncvnf_rlnc::{GenerationConfig, GenerationEncoder, PayloadPool, Recoder, SessionId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct CountingAlloc;

static HEAP_OPS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Count only allocations made by the thread under measurement: the
    // libtest main thread lazily initializes its mpsc receiver context
    // (one-time ~48 B Arc) while blocked waiting for the test result,
    // which otherwise races into the measured window. Const-initialized
    // native TLS for a `Cell<bool>` never allocates, so reading the flag
    // inside the allocator is safe.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn counting_here() -> bool {
    COUNTING.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_here() {
            HEAP_OPS.fetch_add(1, Ordering::SeqCst);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_here() {
            HEAP_OPS.fetch_add(1, Ordering::SeqCst);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Number of heap allocations (incl. reallocations) performed by `work`
/// on the calling thread.
fn heap_ops_during(mut work: impl FnMut()) -> u64 {
    let before = HEAP_OPS.load(Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
    work();
    COUNTING.with(|c| c.set(false));
    HEAP_OPS.load(Ordering::SeqCst) - before
}

#[test]
fn warm_encode_and_recode_paths_do_not_allocate() {
    const BLOCK: usize = 256;
    const G: usize = 8;
    const BATCH: usize = 4;

    let config = GenerationConfig::new(BLOCK, G).expect("valid layout");
    let mut rng = StdRng::seed_from_u64(0xA110_C001);
    let mut data = vec![0u8; config.generation_payload()];
    rng.fill(&mut data[..]);
    let encoder = GenerationEncoder::new(config, &data).expect("valid generation");
    let session = SessionId::new(42);

    let mut pool = PayloadPool::new();
    let mut out = Vec::with_capacity(BATCH);

    // Warm-up: the pool fills with coefficient- and payload-sized buffers
    // and the checkout order is LIFO, so after a few cycles every buffer
    // settles into a fixed role with its final capacity.
    for _ in 0..16 {
        encoder.coded_packets_into(session, 0, BATCH, &mut rng, &mut pool, &mut out);
        for pkt in out.drain(..) {
            pool.recycle(pkt);
        }
    }
    let idle_before = pool.idle();

    let encode_allocs = heap_ops_during(|| {
        for _ in 0..64 {
            encoder.coded_packets_into(session, 0, BATCH, &mut rng, &mut pool, &mut out);
            for pkt in out.drain(..) {
                pool.recycle(pkt);
            }
        }
    });
    assert_eq!(
        encode_allocs, 0,
        "warm batch encode must not touch the heap (256 packets coded)"
    );
    assert_eq!(
        pool.idle(),
        idle_before,
        "every buffer returned to the pool"
    );

    // Recode at full rank: the relay steady state.
    let mut recoder = Recoder::new(config, session, 0);
    while recoder.rank() < G {
        let pkt = encoder.coded_packet(session, 0, &mut rng);
        recoder
            .absorb(pkt.coefficients(), pkt.payload())
            .expect("layout matches");
    }
    for _ in 0..16 {
        let pkt = recoder
            .recode_into(&mut rng, &mut pool)
            .expect("recoder is non-empty");
        pool.recycle(pkt);
    }

    let recode_allocs = heap_ops_during(|| {
        for _ in 0..256 {
            let pkt = recoder
                .recode_into(&mut rng, &mut pool)
                .expect("recoder is non-empty");
            pool.recycle(pkt);
        }
    });
    assert_eq!(
        recode_allocs, 0,
        "warm recode must not touch the heap (256 packets recoded)"
    );
}
