//! Codec metrics: redundancy level, decode progress, and pool health.
//!
//! The codec itself stays metrics-free — encoders, decoders and pools
//! keep plain fields on their hot paths. This module defines the
//! registry-facing view: handle bundles that a host (the relay's
//! recovery layer, a bench harness) registers once and then feeds from
//! codec state, either per event ([`RlncMetrics::record_generation_decoded`])
//! or by republishing cumulative totals at snapshot time
//! ([`PoolMetrics::publish`]).

use ncvnf_obs::{desc, Counter, Gauge, Histogram, MetricDesc, MetricKind, Registry};

use crate::pool::PoolStats;
use crate::redundancy::AdaptiveRedundancy;

/// `rlnc.redundancy.extra` — current AIMD extra coded packets/generation.
pub const REDUNDANCY_EXTRA: MetricDesc = desc(
    "rlnc.redundancy.extra",
    MetricKind::Gauge,
    "packets",
    "rlnc",
    "Current adaptive redundancy: extra coded packets per generation",
);

/// `rlnc.redundancy.peak_extra` — highest redundancy reached so far.
pub const REDUNDANCY_PEAK: MetricDesc = desc(
    "rlnc.redundancy.peak_extra",
    MetricKind::Gauge,
    "packets",
    "rlnc",
    "Peak adaptive redundancy reached since start",
);

/// `rlnc.decode.generations` — generations fully decoded.
pub const DECODE_GENERATIONS: MetricDesc = desc(
    "rlnc.decode.generations",
    MetricKind::Counter,
    "generations",
    "rlnc",
    "Generations decoded to full rank",
);

/// `rlnc.decode.packets_per_generation` — coded packets consumed per
/// decoded generation (rank progress efficiency; `g` is optimal).
pub const DECODE_PACKETS_PER_GENERATION: MetricDesc = desc(
    "rlnc.decode.packets_per_generation",
    MetricKind::Histogram,
    "packets",
    "rlnc",
    "Coded packets consumed to decode one generation",
);

/// Registry-backed handles for codec-level metrics.
///
/// Cheap to clone; records are lock-free.
#[derive(Debug, Clone)]
pub struct RlncMetrics {
    redundancy_extra: Gauge,
    redundancy_peak: Gauge,
    generations_decoded: Counter,
    packets_per_generation: Histogram,
}

impl RlncMetrics {
    /// Registers (or retrieves) the codec metrics in `registry`.
    pub fn register(registry: &Registry) -> Self {
        RlncMetrics {
            redundancy_extra: registry.gauge(REDUNDANCY_EXTRA),
            redundancy_peak: registry.gauge(REDUNDANCY_PEAK),
            generations_decoded: registry.counter(DECODE_GENERATIONS),
            packets_per_generation: registry.histogram(DECODE_PACKETS_PER_GENERATION),
        }
    }

    /// Publishes the controller's current and peak redundancy levels.
    pub fn observe_redundancy(&self, controller: &AdaptiveRedundancy) {
        self.redundancy_extra.set(controller.current_extra());
        self.redundancy_peak.set(controller.peak_extra());
    }

    /// Records that a generation reached full rank after consuming
    /// `packets` coded packets.
    pub fn record_generation_decoded(&self, packets: u64) {
        self.generations_decoded.inc();
        self.packets_per_generation.record(packets);
    }

    /// Generations decoded so far (for tests and derived views).
    pub fn generations_decoded(&self) -> u64 {
        self.generations_decoded.get()
    }
}

/// `rlnc.pool.checkouts` — buffers checked out of payload pools.
pub const POOL_CHECKOUTS: MetricDesc = desc(
    "rlnc.pool.checkouts",
    MetricKind::Counter,
    "buffers",
    "rlnc",
    "Buffers checked out of payload pools",
);

/// `rlnc.pool.hits` — checkouts served from recycled buffers.
pub const POOL_HITS: MetricDesc = desc(
    "rlnc.pool.hits",
    MetricKind::Counter,
    "buffers",
    "rlnc",
    "Pool checkouts served by a recycled buffer (no allocation)",
);

/// `rlnc.pool.reclaimed` — buffers recovered into the free list.
pub const POOL_RECLAIMED: MetricDesc = desc(
    "rlnc.pool.reclaimed",
    MetricKind::Counter,
    "buffers",
    "rlnc",
    "Buffers reclaimed into the pool free list",
);

/// `rlnc.pool.dropped` — reclaim attempts lost to shared buffers.
pub const POOL_DROPPED: MetricDesc = desc(
    "rlnc.pool.dropped",
    MetricKind::Counter,
    "buffers",
    "rlnc",
    "Reclaim attempts that failed because the buffer was still shared",
);

/// `rlnc.pool.evicted` — reclaims released to honor the byte budget.
pub const POOL_EVICTED: MetricDesc = desc(
    "rlnc.pool.evicted",
    MetricKind::Counter,
    "buffers",
    "rlnc",
    "Reclaimed buffers released instead of retained to honor the pool byte budget",
);

/// Registry-backed republication of [`PoolStats`].
///
/// Pools are single-threaded and keep plain counters; call
/// [`PoolMetrics::publish`] at snapshot points to export the running
/// totals without touching the pool's hot path.
#[derive(Debug, Clone)]
pub struct PoolMetrics {
    checkouts: Counter,
    hits: Counter,
    reclaimed: Counter,
    dropped: Counter,
    evicted: Counter,
}

impl PoolMetrics {
    /// Registers (or retrieves) the pool metrics in `registry`.
    pub fn register(registry: &Registry) -> Self {
        PoolMetrics {
            checkouts: registry.counter(POOL_CHECKOUTS),
            hits: registry.counter(POOL_HITS),
            reclaimed: registry.counter(POOL_RECLAIMED),
            dropped: registry.counter(POOL_DROPPED),
            evicted: registry.counter(POOL_EVICTED),
        }
    }

    /// Overwrites the registry counters with the pool's running totals.
    pub fn publish(&self, stats: &PoolStats) {
        self.checkouts.publish(stats.checkouts);
        self.hits.publish(stats.hits);
        self.reclaimed.publish(stats.reclaimed);
        self.dropped.publish(stats.dropped);
        self.evicted.publish(stats.evicted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::redundancy::AimdConfig;

    #[test]
    fn redundancy_and_decode_flow_into_registry() {
        let registry = Registry::new();
        let m = RlncMetrics::register(&registry);
        let mut ctl = AdaptiveRedundancy::new(AimdConfig::default());
        ctl.on_loss(2);
        m.observe_redundancy(&ctl);
        m.record_generation_decoded(6);
        m.record_generation_decoded(4);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("rlnc.decode.generations"), Some(2));
        let hist = snap
            .histogram("rlnc.decode.packets_per_generation")
            .expect("registered");
        assert_eq!(hist.count, 2);
        assert_eq!(hist.min, 4);
        assert_eq!(hist.max, 6);
        assert!(snap.gauge("rlnc.redundancy.extra").unwrap() > 0.0);
    }

    #[test]
    fn pool_publish_overwrites_totals() {
        let registry = Registry::new();
        let m = PoolMetrics::register(&registry);
        let stats = PoolStats {
            checkouts: 10,
            hits: 8,
            reclaimed: 9,
            dropped: 1,
            evicted: 2,
        };
        m.publish(&stats);
        m.publish(&stats); // republication is idempotent, not additive
        let snap = registry.snapshot();
        assert_eq!(snap.counter("rlnc.pool.checkouts"), Some(10));
        assert_eq!(snap.counter("rlnc.pool.hits"), Some(8));
        assert_eq!(snap.counter("rlnc.pool.reclaimed"), Some(9));
        assert_eq!(snap.counter("rlnc.pool.dropped"), Some(1));
        assert_eq!(snap.counter("rlnc.pool.evicted"), Some(2));
    }
}
