//! Seed-compressed coefficient headers (extension beyond the paper).
//!
//! The paper's NC header carries one explicit GF(2^8) coefficient per
//! block — fine at g = 4 (4 bytes), painful at g = 128. A classic RLNC
//! optimization replaces the vector with the 8-byte PRNG seed that
//! generated it; the receiver re-expands the seed. The catch, and the
//! reason the paper's explicit vectors are the right default for *this*
//! system: **recoders cannot recode seeded packets** — a fresh random
//! combination of buffered packets has no generating seed — so the
//! compact form only survives on source→destination paths with
//! forwarding-only relays. [`expandable`] tells a relay whether a packet
//! can keep its compact form.
//!
//! Wire format:
//!
//! ```text
//! byte 0      magic 0xAD (distinct from explicit-header 0xAC)
//! byte 1      version (1)
//! bytes 2-3   session id, big endian
//! bytes 4-7   generation id, big endian
//! bytes 8-15  coefficient seed, big endian
//! bytes 16..  payload
//! ```

use bytes::{BufMut, Bytes, BytesMut};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::HeaderError;
use crate::header::SessionId;

/// Magic byte identifying seed-compressed NC packets.
pub const SEEDED_MAGIC: u8 = 0xAD;
/// Fixed header length of a seeded packet.
pub const SEEDED_HEADER_LEN: usize = 16;

/// A coded packet whose coefficients are represented by a PRNG seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeededPacket {
    /// Session id.
    pub session: SessionId,
    /// Generation number.
    pub generation: u64,
    /// The seed that generated the coefficient vector.
    pub seed: u64,
    /// The encoded block.
    pub payload: Bytes,
}

/// Expands a seed into the generation's coefficient vector. Deterministic
/// and identical on every node; never returns the all-zero vector.
pub fn expand_coefficients(seed: u64, generation_size: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coefficients = vec![0u8; generation_size];
    loop {
        rng.fill(&mut coefficients[..]);
        if coefficients.iter().any(|&c| c != 0) {
            return coefficients;
        }
    }
}

impl SeededPacket {
    /// Serializes the packet.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(SEEDED_HEADER_LEN + self.payload.len());
        buf.put_u8(SEEDED_MAGIC);
        buf.put_u8(1);
        buf.put_u16(self.session.value());
        buf.put_u32(self.generation as u32);
        buf.put_u64(self.seed);
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Parses a seeded packet.
    ///
    /// # Errors
    ///
    /// [`HeaderError::BadMagic`] if the first byte is not
    /// [`SEEDED_MAGIC`]; [`HeaderError::Truncated`] if too short.
    pub fn from_bytes(data: &[u8]) -> Result<Self, HeaderError> {
        if data.is_empty() {
            return Err(HeaderError::Truncated {
                needed: SEEDED_HEADER_LEN,
                available: 0,
            });
        }
        if data[0] != SEEDED_MAGIC {
            return Err(HeaderError::BadMagic { found: data[0] });
        }
        if data.len() < SEEDED_HEADER_LEN {
            return Err(HeaderError::Truncated {
                needed: SEEDED_HEADER_LEN,
                available: data.len(),
            });
        }
        Ok(SeededPacket {
            session: SessionId::new(u16::from_be_bytes([data[2], data[3]])),
            generation: u32::from_be_bytes([data[4], data[5], data[6], data[7]]) as u64,
            seed: u64::from_be_bytes(data[8..16].try_into().expect("8 bytes")),
            payload: Bytes::copy_from_slice(&data[SEEDED_HEADER_LEN..]),
        })
    }

    /// Expands into the explicit coefficient vector for decoding.
    pub fn coefficients(&self, generation_size: usize) -> Vec<u8> {
        expand_coefficients(self.seed, generation_size)
    }
}

/// Header bytes saved per packet by the seeded form (negative when the
/// explicit form is smaller, i.e. for tiny generations).
pub fn header_savings(generation_size: usize) -> i64 {
    let explicit = crate::header::NcHeader::FIXED_LEN + generation_size;
    explicit as i64 - SEEDED_HEADER_LEN as i64
}

/// Whether a relay may keep a packet in compact (seeded) form: only pure
/// forwarding preserves the seed↔coefficients correspondence; any
/// recombination must fall back to explicit coefficients.
pub fn expandable(role_does_coding: bool) -> bool {
    !role_does_coding
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GenerationConfig;
    use crate::decoder::GenerationDecoder;
    use crate::encoder::GenerationEncoder;
    use ncvnf_gf256::bulk;

    #[test]
    fn wire_roundtrip() {
        let pkt = SeededPacket {
            session: SessionId::new(12),
            generation: 99,
            seed: 0xDEAD_BEEF_CAFE_F00D,
            payload: Bytes::from_static(b"block"),
        };
        let wire = pkt.to_bytes();
        assert_eq!(wire.len(), SEEDED_HEADER_LEN + 5);
        assert_eq!(SeededPacket::from_bytes(&wire).unwrap(), pkt);
        assert!(matches!(
            SeededPacket::from_bytes(&wire[..10]),
            Err(HeaderError::Truncated { .. })
        ));
        assert!(matches!(
            SeededPacket::from_bytes(&[0xAC; 20]),
            Err(HeaderError::BadMagic { .. })
        ));
    }

    #[test]
    fn expansion_is_deterministic_and_nonzero() {
        for seed in [0u64, 1, u64::MAX, 0x1234] {
            let a = expand_coefficients(seed, 16);
            let b = expand_coefficients(seed, 16);
            assert_eq!(a, b);
            assert!(a.iter().any(|&c| c != 0));
        }
        assert_ne!(expand_coefficients(1, 8), expand_coefficients(2, 8));
    }

    #[test]
    fn seeded_packets_decode_like_explicit_ones() {
        let cfg = GenerationConfig::new(32, 4).unwrap();
        let data: Vec<u8> = (0..128).map(|i| (i * 3 + 1) as u8).collect();
        let enc = GenerationEncoder::new(cfg, &data).unwrap();
        let mut dec = GenerationDecoder::new(cfg);
        let mut seed = 1000u64;
        while !dec.is_complete() {
            // Source side: expand the seed, combine, ship seed + payload.
            let coefficients = expand_coefficients(seed, 4);
            let mut payload = vec![0u8; cfg.block_size()];
            let rows: Vec<&[u8]> = enc.blocks().iter().map(|b| b.as_slice()).collect();
            bulk::linear_combine(&mut payload, &coefficients, &rows);
            let pkt = SeededPacket {
                session: SessionId::new(1),
                generation: 0,
                seed,
                payload: Bytes::from(payload),
            };
            let wire = pkt.to_bytes();
            // Receiver side: parse, re-expand, decode.
            let back = SeededPacket::from_bytes(&wire).unwrap();
            let coeffs = back.coefficients(4);
            dec.receive(&coeffs, &back.payload).unwrap();
            seed += 1;
            assert!(seed < 1100, "failed to converge");
        }
        assert_eq!(dec.decoded_payload().unwrap(), data);
    }

    #[test]
    fn savings_grow_with_generation_size() {
        assert!(header_savings(4) < 0); // explicit 12 B < seeded 16 B
        assert_eq!(header_savings(8), 0);
        assert!(header_savings(64) > 0); // explicit 72 B > seeded 16 B
        assert_eq!(header_savings(128), 120);
    }

    #[test]
    fn recoding_roles_cannot_stay_compact() {
        assert!(expandable(false)); // forwarder
        assert!(!expandable(true)); // recoder / decoder
    }
}
