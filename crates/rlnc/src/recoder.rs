//! Pipelined in-network recoder.

use rand::Rng;

use ncvnf_gf256::bulk;

use crate::config::{CodingMode, GenerationConfig};
use crate::error::CodecError;
use crate::header::{CodedPacket, NcHeader, SessionId};
use crate::pool::PayloadPool;

/// Recodes coded packets of one generation inside the network.
///
/// Matches the paper's VNF behaviour (Sec. III-B-2): the function processes
/// packets in a *pipelined* fashion — it emits an output immediately after
/// every input. If the input is the first packet of its generation the
/// packet is simply forwarded; otherwise a fresh random linear combination
/// of everything buffered so far is emitted. Recoding never needs to decode,
/// which is the defining property of RLNC relays.
#[derive(Debug, Clone)]
pub struct Recoder {
    config: GenerationConfig,
    session: SessionId,
    generation: u64,
    /// Buffered (coefficient, payload) rows. Only linearly independent rows
    /// are retained to bound memory and maximize the innovation of outputs.
    coeff_rows: Vec<Vec<u8>>,
    payloads: Vec<Vec<u8>>,
    /// Reusable elimination workspace — incoming packets are reduced here
    /// so the per-packet path performs no heap allocation.
    coeff_scratch: Vec<u8>,
    data_scratch: Vec<u8>,
    /// Reusable local mixing weights for [`recode_into`](Self::recode_into).
    weights_scratch: Vec<u8>,
    packets_in: u64,
    packets_out: u64,
}

impl Recoder {
    /// Creates an empty recoder for `(session, generation)`.
    pub fn new(config: GenerationConfig, session: SessionId, generation: u64) -> Self {
        Recoder {
            config,
            session,
            generation,
            coeff_rows: Vec::with_capacity(config.blocks_per_generation()),
            payloads: Vec::with_capacity(config.blocks_per_generation()),
            coeff_scratch: vec![0u8; config.blocks_per_generation()],
            data_scratch: vec![0u8; config.block_size()],
            weights_scratch: Vec::with_capacity(config.blocks_per_generation()),
            packets_in: 0,
            packets_out: 0,
        }
    }

    /// The session this recoder serves.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// The generation this recoder serves.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of linearly independent packets buffered.
    pub fn rank(&self) -> usize {
        self.coeff_rows.len()
    }

    /// Packets absorbed so far.
    pub fn packets_in(&self) -> u64 {
        self.packets_in
    }

    /// Packets emitted so far.
    pub fn packets_out(&self) -> u64 {
        self.packets_out
    }

    /// Buffers one incoming coded packet; returns whether it was innovative
    /// (increased the buffered rank).
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the packet does not match the configured
    /// layout.
    pub fn absorb(&mut self, coefficients: &[u8], payload: &[u8]) -> Result<bool, CodecError> {
        let g = self.config.blocks_per_generation();
        if coefficients.len() != g {
            return Err(CodecError::CoefficientCount {
                expected: g,
                actual: coefficients.len(),
            });
        }
        if payload.len() != self.config.block_size() {
            return Err(CodecError::PayloadSize {
                expected: self.config.block_size(),
                actual: payload.len(),
            });
        }
        self.packets_in += 1;
        if self.rank() == g {
            return Ok(false);
        }
        // Gaussian elimination against the buffer to test innovation. Runs
        // in the reusable scratch rows; only an innovative packet (at most
        // `g` per generation) is copied out of them into the buffer.
        self.coeff_scratch.copy_from_slice(coefficients);
        self.data_scratch.copy_from_slice(payload);
        for row in 0..self.coeff_rows.len() {
            let lead = leading_index(&self.coeff_rows[row]).expect("buffered rows are nonzero");
            if self.coeff_scratch[lead] != 0 {
                let factor = mul_div(self.coeff_scratch[lead], self.coeff_rows[row][lead]);
                bulk::mul_add_slice(&mut self.coeff_scratch, &self.coeff_rows[row], factor);
                bulk::mul_add_slice(&mut self.data_scratch, &self.payloads[row], factor);
            }
        }
        if self.coeff_scratch.iter().all(|&c| c == 0) {
            return Ok(false);
        }
        // Keep rows sorted by leading index so elimination stays triangular.
        self.coeff_rows.push(self.coeff_scratch.clone());
        self.payloads.push(self.data_scratch.clone());
        let mut i = self.coeff_rows.len() - 1;
        while i > 0 && leading_index(&self.coeff_rows[i]) < leading_index(&self.coeff_rows[i - 1]) {
            self.coeff_rows.swap(i, i - 1);
            self.payloads.swap(i, i - 1);
            i -= 1;
        }
        Ok(true)
    }

    /// Pipelined step: absorb `packet` and immediately produce an output.
    ///
    /// The first packet of the generation is forwarded verbatim (there is
    /// nothing to combine it with); later packets trigger a fresh random
    /// recombination of the buffer.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches from [`absorb`](Self::absorb).
    pub fn process<R: Rng + ?Sized>(
        &mut self,
        packet: &CodedPacket,
        rng: &mut R,
    ) -> Result<CodedPacket, CodecError> {
        let first = self.rank() == 0;
        self.absorb(packet.coefficients(), packet.payload())?;
        if first {
            self.packets_out += 1;
            return Ok(packet.clone());
        }
        let out = self.recode(rng)?;
        Ok(out)
    }

    /// Emits a fresh random combination of the buffered packets.
    ///
    /// Allocates fresh buffers per call; the hot path is
    /// [`recode_into`](Self::recode_into).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::EmptyRecoder`] if nothing has been buffered.
    pub fn recode<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Result<CodedPacket, CodecError> {
        let mut pool = PayloadPool::new();
        self.recode_into(rng, &mut pool)
    }

    /// Like [`recode`](Self::recode), but the output coefficient and
    /// payload buffers come from `pool`: with a warm pool (packets recycled
    /// back after forwarding) the steady state performs zero heap
    /// allocations per emitted packet.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::EmptyRecoder`] if nothing has been buffered.
    pub fn recode_into<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        pool: &mut PayloadPool,
    ) -> Result<CodedPacket, CodecError> {
        if self.coeff_rows.is_empty() {
            return Err(CodecError::EmptyRecoder);
        }
        let g = self.config.blocks_per_generation();
        // Draw local mixing weights; make sure at least one is nonzero.
        self.weights_scratch.resize(self.coeff_rows.len(), 0);
        loop {
            rng.fill(&mut self.weights_scratch[..]);
            if self.weights_scratch.iter().any(|&w| w != 0) {
                break;
            }
        }
        let mut coefficients = pool.checkout_zeroed(g);
        let mut payload = pool.checkout_zeroed(self.config.block_size());
        for (i, &w) in self.weights_scratch.iter().enumerate() {
            bulk::mul_add_slice(&mut coefficients, &self.coeff_rows[i], w);
            bulk::mul_add_slice(&mut payload, &self.payloads[i], w);
        }
        self.packets_out += 1;
        Ok(CodedPacket::new(
            NcHeader {
                session: self.session,
                generation: self.generation,
                coefficients: coefficients.freeze(),
            },
            payload.freeze(),
        ))
    }

    /// Sparse recombination: mixes only `width` randomly chosen buffered
    /// rows (each with a random nonzero weight) instead of the whole
    /// buffer — O(`width` · block) per output. Because the chosen rows
    /// are linearly independent and every weight is nonzero, the output
    /// is never the zero combination.
    ///
    /// When the upstream traffic is itself sparse/systematic, the output
    /// coefficient vector stays sparse, preserving the mode's decoding
    /// advantage across recoding hops.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::EmptyRecoder`] if nothing has been buffered.
    pub fn recode_sparse_into<R: Rng + ?Sized>(
        &mut self,
        width: usize,
        rng: &mut R,
        pool: &mut PayloadPool,
    ) -> Result<CodedPacket, CodecError> {
        if self.coeff_rows.is_empty() {
            return Err(CodecError::EmptyRecoder);
        }
        let g = self.config.blocks_per_generation();
        let n = self.coeff_rows.len();
        let d = width.clamp(1, n);
        let mut coefficients = pool.checkout_zeroed(g);
        let mut payload = pool.checkout_zeroed(self.config.block_size());
        // Floyd's sampling: d distinct row indices, weights recorded in
        // the scratch so duplicates are detectable.
        self.weights_scratch.clear();
        self.weights_scratch.resize(n, 0);
        for j in (n - d)..n {
            let t = rng.gen_range(0..=j);
            let row = if self.weights_scratch[t] != 0 { j } else { t };
            let w = rng.gen_range(1..=255u8);
            self.weights_scratch[row] = w;
            bulk::mul_add_slice(&mut coefficients, &self.coeff_rows[row], w);
            bulk::mul_add_slice(&mut payload, &self.payloads[row], w);
        }
        self.packets_out += 1;
        Ok(CodedPacket::new(
            NcHeader {
                session: self.session,
                generation: self.generation,
                coefficients: coefficients.freeze(),
            },
            payload.freeze(),
        ))
    }

    /// Mode-aware recombination: sparse traffic is recoded sparsely (the
    /// mode's density bounds the rows mixed per output), everything else
    /// takes the dense path.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::EmptyRecoder`] if nothing has been buffered.
    pub fn recode_mode_into<R: Rng + ?Sized>(
        &mut self,
        mode: CodingMode,
        rng: &mut R,
        pool: &mut PayloadPool,
    ) -> Result<CodedPacket, CodecError> {
        match mode {
            CodingMode::Sparse { nonzeros } => self.recode_sparse_into(nonzeros, rng, pool),
            CodingMode::Dense | CodingMode::Systematic => self.recode_into(rng, pool),
        }
    }
}

/// Index of the first nonzero coefficient.
fn leading_index(coeffs: &[u8]) -> Option<usize> {
    coeffs.iter().position(|&c| c != 0)
}

/// `a / b` over GF(2^8) for the elimination factor.
fn mul_div(a: u8, b: u8) -> u8 {
    use ncvnf_gf256::Gf256;
    (Gf256::new(a) / Gf256::new(b)).value()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::GenerationDecoder;
    use crate::encoder::GenerationEncoder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> GenerationConfig {
        GenerationConfig::new(24, 4).unwrap()
    }

    #[test]
    fn first_packet_is_forwarded_verbatim() {
        let enc = GenerationEncoder::new(cfg(), &[3u8; 96]).unwrap();
        let mut rec = Recoder::new(cfg(), SessionId::new(1), 0);
        let mut rng = StdRng::seed_from_u64(5);
        let pkt = enc.coded_packet(SessionId::new(1), 0, &mut rng);
        let out = rec.process(&pkt, &mut rng).unwrap();
        assert_eq!(out, pkt);
        assert_eq!(rec.packets_out(), 1);
    }

    #[test]
    fn recoded_packets_decode_end_to_end() {
        let data: Vec<u8> = (0..96).map(|i| (i * 5 + 1) as u8).collect();
        let enc = GenerationEncoder::new(cfg(), &data).unwrap();
        let mut rec = Recoder::new(cfg(), SessionId::new(1), 0);
        let mut dec = GenerationDecoder::new(cfg());
        let mut rng = StdRng::seed_from_u64(17);
        let mut hops = 0;
        while !dec.is_complete() {
            let pkt = enc.coded_packet(SessionId::new(1), 0, &mut rng);
            let out = rec.process(&pkt, &mut rng).unwrap();
            dec.receive(out.coefficients(), out.payload()).unwrap();
            hops += 1;
            assert!(hops < 64, "recode chain failed to converge");
        }
        assert_eq!(dec.decoded_payload().unwrap(), data);
    }

    #[test]
    fn two_stage_recoding_still_decodes() {
        let data: Vec<u8> = (0..96).map(|i| (i ^ 0x5A) as u8).collect();
        let enc = GenerationEncoder::new(cfg(), &data).unwrap();
        let mut rec1 = Recoder::new(cfg(), SessionId::new(2), 7);
        let mut rec2 = Recoder::new(cfg(), SessionId::new(2), 7);
        let mut dec = GenerationDecoder::new(cfg());
        let mut rng = StdRng::seed_from_u64(23);
        let mut steps = 0;
        while !dec.is_complete() {
            let pkt = enc.coded_packet(SessionId::new(2), 7, &mut rng);
            let mid = rec1.process(&pkt, &mut rng).unwrap();
            let out = rec2.process(&mid, &mut rng).unwrap();
            assert_eq!(out.session(), SessionId::new(2));
            assert_eq!(out.generation(), 7);
            dec.receive(out.coefficients(), out.payload()).unwrap();
            steps += 1;
            assert!(steps < 64, "two-stage recode failed to converge");
        }
        assert_eq!(dec.decoded_payload().unwrap(), data);
    }

    #[test]
    fn sparse_recoded_packets_decode_end_to_end() {
        let data: Vec<u8> = (0..96).map(|i| (i * 7 + 3) as u8).collect();
        let enc = GenerationEncoder::new(cfg(), &data).unwrap();
        let mut rec = Recoder::new(cfg(), SessionId::new(1), 0);
        let mut dec = GenerationDecoder::new(cfg());
        let mut rng = StdRng::seed_from_u64(31);
        let mut pool = crate::pool::PayloadPool::new();
        // Fill the relay buffer from a systematic pass, then serve the
        // decoder exclusively from 2-wide sparse recombinations.
        for i in 0..4 {
            let pkt = enc.systematic_packet(SessionId::new(1), 0, i);
            rec.absorb(pkt.coefficients(), pkt.payload()).unwrap();
        }
        let mut hops = 0;
        while !dec.is_complete() {
            let out = rec.recode_sparse_into(2, &mut rng, &mut pool).unwrap();
            dec.receive(out.coefficients(), out.payload()).unwrap();
            hops += 1;
            assert!(hops < 64, "sparse recode failed to converge");
        }
        assert_eq!(dec.decoded_payload().unwrap(), data);
    }

    #[test]
    fn sparse_recode_of_systematic_rows_stays_sparse() {
        let enc = GenerationEncoder::new(cfg(), &[4u8; 96]).unwrap();
        let mut rec = Recoder::new(cfg(), SessionId::new(1), 0);
        let mut rng = StdRng::seed_from_u64(13);
        let mut pool = crate::pool::PayloadPool::new();
        for i in 0..4 {
            let pkt = enc.systematic_packet(SessionId::new(1), 0, i);
            rec.absorb(pkt.coefficients(), pkt.payload()).unwrap();
        }
        for _ in 0..32 {
            let out = rec.recode_sparse_into(2, &mut rng, &mut pool).unwrap();
            let nonzeros = out.coefficients().iter().filter(|&&c| c != 0).count();
            assert!((1..=2).contains(&nonzeros), "got {nonzeros} nonzeros");
        }
    }

    #[test]
    fn rank_saturates_at_generation_size() {
        let enc = GenerationEncoder::new(cfg(), &[1u8; 96]).unwrap();
        let mut rec = Recoder::new(cfg(), SessionId::new(1), 0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let pkt = enc.coded_packet(SessionId::new(1), 0, &mut rng);
            rec.absorb(pkt.coefficients(), pkt.payload()).unwrap();
        }
        assert_eq!(rec.rank(), 4);
        assert_eq!(rec.packets_in(), 20);
    }

    #[test]
    fn empty_recoder_errors() {
        let mut rec = Recoder::new(cfg(), SessionId::new(1), 0);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(rec.recode(&mut rng).unwrap_err(), CodecError::EmptyRecoder);
    }

    #[test]
    fn redundant_input_is_not_buffered() {
        let enc = GenerationEncoder::new(cfg(), &[9u8; 96]).unwrap();
        let mut rec = Recoder::new(cfg(), SessionId::new(1), 0);
        let mut rng = StdRng::seed_from_u64(11);
        let pkt = enc.coded_packet(SessionId::new(1), 0, &mut rng);
        assert!(rec.absorb(pkt.coefficients(), pkt.payload()).unwrap());
        assert!(!rec.absorb(pkt.coefficients(), pkt.payload()).unwrap());
        assert_eq!(rec.rank(), 1);
    }
}
