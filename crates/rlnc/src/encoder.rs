//! Source-side generation encoder.

use bytes::Bytes;
use rand::Rng;

use ncvnf_gf256::bulk;

use crate::config::{CodingMode, GenerationConfig};
use crate::error::CodecError;
use crate::header::{CodedPacket, NcHeader, SessionId};
use crate::pool::PayloadPool;

/// Encodes one generation of source data into coded packets.
///
/// The encoder owns the `g` original blocks of a generation. Each call to
/// [`coded_packet`](Self::coded_packet) draws a fresh uniformly random
/// coefficient vector over GF(2^8) and emits the corresponding linear
/// combination. [`systematic_packet`](Self::systematic_packet) emits an
/// original block with a unit coefficient vector (the optional systematic
/// first pass).
///
/// # Encoding modes
///
/// [`mode_packet_pooled`](Self::mode_packet_pooled) drives a whole
/// generation through a [`CodingMode`]: packet sequence numbers `0..g`
/// come out verbatim in the systematic modes, and everything after that
/// is a repair packet — dense or [`sparse`](Self::sparse_packet_pooled)
/// per the mode. A typical systematic+sparse emission loop:
///
/// ```
/// use ncvnf_rlnc::{CodingMode, GenerationConfig, GenerationEncoder, PayloadPool, SessionId};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let config = GenerationConfig::new(64, 8).unwrap();
/// let encoder = GenerationEncoder::new(config, &[7u8; 512]).unwrap();
/// let mode = CodingMode::sparse_default(8);
/// let (mut rng, mut pool) = (StdRng::seed_from_u64(1), PayloadPool::new());
/// // First 8 packets are the source blocks; the rest are sparse repair.
/// for seq in 0..10u64 {
///     let pkt = encoder.mode_packet_pooled(mode, SessionId::new(1), 0, seq, &mut rng, &mut pool);
///     let nonzeros = pkt.coefficients().iter().filter(|&&c| c != 0).count();
///     if seq < 8 {
///         assert_eq!(nonzeros, 1);
///     } else {
///         assert!(nonzeros <= mode.repair_nonzeros(8));
///     }
/// }
/// ```
#[derive(Debug, Clone)]
pub struct GenerationEncoder {
    config: GenerationConfig,
    /// The original blocks, each exactly `block_size` long (last one padded
    /// with zeros when the source data was short).
    blocks: Vec<Vec<u8>>,
}

impl GenerationEncoder {
    /// Creates an encoder over exactly one generation of data.
    ///
    /// `data` may be shorter than
    /// [`generation_payload`](GenerationConfig::generation_payload); the
    /// tail is zero-padded (framing/truncation is the responsibility of
    /// [`ObjectEncoder`](crate::ObjectEncoder)).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::PayloadSize`] if `data` is empty or longer
    /// than one generation.
    pub fn new(config: GenerationConfig, data: &[u8]) -> Result<Self, CodecError> {
        if data.is_empty() || data.len() > config.generation_payload() {
            return Err(CodecError::PayloadSize {
                expected: config.generation_payload(),
                actual: data.len(),
            });
        }
        let bs = config.block_size();
        let mut blocks = Vec::with_capacity(config.blocks_per_generation());
        for i in 0..config.blocks_per_generation() {
            let mut block = vec![0u8; bs];
            let start = i * bs;
            if start < data.len() {
                let end = usize::min(start + bs, data.len());
                block[..end - start].copy_from_slice(&data[start..end]);
            }
            blocks.push(block);
        }
        Ok(GenerationEncoder { config, blocks })
    }

    /// The layout this encoder was built with.
    pub fn config(&self) -> GenerationConfig {
        self.config
    }

    /// Emits one randomly coded packet for `(session, generation)`.
    ///
    /// The coefficient vector is redrawn if it comes out all-zero (an
    /// all-zero combination carries no information), so the packet is
    /// always a nontrivial combination.
    ///
    /// Allocates fresh buffers per call; the hot paths use
    /// [`coded_packet_pooled`](Self::coded_packet_pooled) or
    /// [`coded_packets_into`](Self::coded_packets_into) instead.
    pub fn coded_packet<R: Rng + ?Sized>(
        &self,
        session: SessionId,
        generation: u64,
        rng: &mut R,
    ) -> CodedPacket {
        let mut pool = PayloadPool::new();
        self.coded_packet_pooled(session, generation, rng, &mut pool)
    }

    /// Like [`coded_packet`](Self::coded_packet), but the coefficient and
    /// payload buffers come from `pool` — zero heap allocations once the
    /// pool is warm.
    pub fn coded_packet_pooled<R: Rng + ?Sized>(
        &self,
        session: SessionId,
        generation: u64,
        rng: &mut R,
        pool: &mut PayloadPool,
    ) -> CodedPacket {
        let g = self.config.blocks_per_generation();
        let mut coefficients = pool.checkout_zeroed(g);
        loop {
            rng.fill(&mut coefficients[..]);
            if coefficients.iter().any(|&c| c != 0) {
                break;
            }
        }
        let mut payload = pool.checkout_zeroed(self.config.block_size());
        self.combine_into(&coefficients, &mut payload);
        CodedPacket::new(
            NcHeader {
                session,
                generation,
                coefficients: coefficients.freeze(),
            },
            payload.freeze(),
        )
    }

    /// Batch emit: appends `count` randomly coded packets to `out`, drawing
    /// all buffers from `pool`.
    ///
    /// This is the bulk path the VNF pipeline and the simulators use to
    /// emit a generation's worth of packets without per-packet allocation
    /// (`out` should be reused across calls so its capacity amortizes).
    pub fn coded_packets_into<R: Rng + ?Sized>(
        &self,
        session: SessionId,
        generation: u64,
        count: usize,
        rng: &mut R,
        pool: &mut PayloadPool,
        out: &mut Vec<CodedPacket>,
    ) {
        out.reserve(count);
        for _ in 0..count {
            out.push(self.coded_packet_pooled(session, generation, rng, pool));
        }
    }

    /// Emits original block `index` with a unit coefficient vector
    /// (systematic mode: the first `g` packets can skip coding work).
    ///
    /// # Panics
    ///
    /// Panics if `index >= blocks_per_generation`.
    pub fn systematic_packet(
        &self,
        session: SessionId,
        generation: u64,
        index: usize,
    ) -> CodedPacket {
        assert!(
            index < self.config.blocks_per_generation(),
            "systematic index out of range"
        );
        let mut coefficients = vec![0u8; self.config.blocks_per_generation()];
        coefficients[index] = 1;
        CodedPacket::new(
            NcHeader {
                session,
                generation,
                coefficients: Bytes::from(coefficients),
            },
            Bytes::from(self.blocks[index].clone()),
        )
    }

    /// Like [`systematic_packet`](Self::systematic_packet), but both
    /// buffers come from `pool` — the zero-copy-cost first pass of the
    /// systematic and sparse modes.
    ///
    /// # Panics
    ///
    /// Panics if `index >= blocks_per_generation`.
    pub fn systematic_packet_pooled(
        &self,
        session: SessionId,
        generation: u64,
        index: usize,
        pool: &mut PayloadPool,
    ) -> CodedPacket {
        assert!(
            index < self.config.blocks_per_generation(),
            "systematic index out of range"
        );
        let mut coefficients = pool.checkout_zeroed(self.config.blocks_per_generation());
        coefficients[index] = 1;
        let payload = pool.checkout_copy(&self.blocks[index]);
        CodedPacket::new(
            NcHeader {
                session,
                generation,
                coefficients: coefficients.freeze(),
            },
            payload.freeze(),
        )
    }

    /// Emits one sparse repair packet: `nonzeros` distinct blocks chosen
    /// uniformly at random, each with a uniformly random nonzero
    /// coefficient — O(`nonzeros` · block) coding work instead of
    /// O(g · block).
    ///
    /// `nonzeros` is clamped to `1..=g`. The combination is never
    /// all-zero by construction (every chosen coefficient is nonzero).
    pub fn sparse_packet_pooled<R: Rng + ?Sized>(
        &self,
        session: SessionId,
        generation: u64,
        nonzeros: usize,
        rng: &mut R,
        pool: &mut PayloadPool,
    ) -> CodedPacket {
        let g = self.config.blocks_per_generation();
        let d = nonzeros.clamp(1, g);
        let mut coefficients = pool.checkout_zeroed(g);
        let mut payload = pool.checkout_zeroed(self.config.block_size());
        // Floyd's algorithm gives d distinct positions without an aux
        // set proportional to g: for j in g-d..g, pick t in 0..=j; take t
        // unless already taken, else take j.
        for j in (g - d)..g {
            let t = rng.gen_range(0..=j);
            let pos = if coefficients[t] != 0 { j } else { t };
            let c = rng.gen_range(1..=255u8);
            coefficients[pos] = c;
            bulk::mul_add_slice(&mut payload, &self.blocks[pos], c);
        }
        CodedPacket::new(
            NcHeader {
                session,
                generation,
                coefficients: coefficients.freeze(),
            },
            payload.freeze(),
        )
    }

    /// Emits the packet with sequence number `seq` under `mode`.
    ///
    /// In the systematic-first modes ([`CodingMode::Systematic`] and
    /// [`CodingMode::Sparse`]), `seq < g` yields source block `seq`
    /// verbatim; later sequence numbers yield repair packets (dense or
    /// sparse per the mode). [`CodingMode::Dense`] always yields a dense
    /// random combination.
    pub fn mode_packet_pooled<R: Rng + ?Sized>(
        &self,
        mode: CodingMode,
        session: SessionId,
        generation: u64,
        seq: u64,
        rng: &mut R,
        pool: &mut PayloadPool,
    ) -> CodedPacket {
        let g = self.config.blocks_per_generation() as u64;
        if mode.is_systematic_first() && seq < g {
            return self.systematic_packet_pooled(session, generation, seq as usize, pool);
        }
        match mode {
            CodingMode::Sparse { nonzeros } => {
                self.sparse_packet_pooled(session, generation, nonzeros, rng, pool)
            }
            CodingMode::Dense | CodingMode::Systematic => {
                self.coded_packet_pooled(session, generation, rng, pool)
            }
        }
    }

    /// Batch emit under a mode: appends packets for sequence numbers
    /// `first_seq..first_seq + count` to `out` (the mode-aware analogue
    /// of [`coded_packets_into`](Self::coded_packets_into)).
    #[allow(clippy::too_many_arguments)]
    pub fn mode_packets_into<R: Rng + ?Sized>(
        &self,
        mode: CodingMode,
        session: SessionId,
        generation: u64,
        first_seq: u64,
        count: usize,
        rng: &mut R,
        pool: &mut PayloadPool,
        out: &mut Vec<CodedPacket>,
    ) {
        out.reserve(count);
        for i in 0..count as u64 {
            out.push(self.mode_packet_pooled(mode, session, generation, first_seq + i, rng, pool));
        }
    }

    /// Computes `Σ coefficients[i] * block[i]` into `out` (which must be
    /// `block_size` long; prior contents are overwritten).
    fn combine_into(&self, coefficients: &[u8], out: &mut [u8]) {
        out.fill(0);
        for (&c, block) in coefficients.iter().zip(self.blocks.iter()) {
            bulk::mul_add_slice(out, block, c);
        }
    }

    /// Borrow of the padded original blocks (used by tests and the object
    /// layer).
    pub fn blocks(&self) -> &[Vec<u8>] {
        &self.blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> GenerationConfig {
        GenerationConfig::new(16, 4).unwrap()
    }

    #[test]
    fn pads_short_generations() {
        let enc = GenerationEncoder::new(cfg(), &[9u8; 20]).unwrap();
        assert_eq!(enc.blocks().len(), 4);
        assert_eq!(enc.blocks()[0], vec![9u8; 16]);
        assert_eq!(&enc.blocks()[1][..4], &[9u8; 4]);
        assert_eq!(&enc.blocks()[1][4..], &[0u8; 12]);
        assert_eq!(enc.blocks()[3], vec![0u8; 16]);
    }

    #[test]
    fn rejects_oversized_and_empty_data() {
        assert!(GenerationEncoder::new(cfg(), &[0u8; 65]).is_err());
        assert!(GenerationEncoder::new(cfg(), &[]).is_err());
    }

    #[test]
    fn systematic_packets_are_the_original_blocks() {
        let data: Vec<u8> = (0..64).collect();
        let enc = GenerationEncoder::new(cfg(), &data).unwrap();
        for i in 0..4 {
            let pkt = enc.systematic_packet(SessionId::new(1), 0, i);
            assert_eq!(pkt.payload(), &data[i * 16..(i + 1) * 16]);
            let mut unit = vec![0u8; 4];
            unit[i] = 1;
            assert_eq!(pkt.coefficients(), unit.as_slice());
        }
    }

    #[test]
    fn coded_packet_matches_manual_combination() {
        let data: Vec<u8> = (0..64).collect();
        let enc = GenerationEncoder::new(cfg(), &data).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let pkt = enc.coded_packet(SessionId::new(1), 3, &mut rng);
        assert_eq!(pkt.generation(), 3);
        let mut expect = vec![0u8; 16];
        let rows: Vec<&[u8]> = enc.blocks().iter().map(|b| b.as_slice()).collect();
        bulk::linear_combine(&mut expect, pkt.coefficients(), &rows);
        assert_eq!(pkt.payload(), expect.as_slice());
    }

    #[test]
    fn never_emits_zero_coefficients() {
        let enc = GenerationEncoder::new(cfg(), &[1u8; 64]).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            let pkt = enc.coded_packet(SessionId::new(1), 0, &mut rng);
            assert!(pkt.coefficients().iter().any(|&c| c != 0));
        }
    }

    #[test]
    fn pooled_batch_matches_manual_combination_and_recycles() {
        let data: Vec<u8> = (0..64).collect();
        let enc = GenerationEncoder::new(cfg(), &data).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut pool = PayloadPool::new();
        let mut out = Vec::new();
        enc.coded_packets_into(SessionId::new(2), 1, 8, &mut rng, &mut pool, &mut out);
        assert_eq!(out.len(), 8);
        for pkt in &out {
            let mut expect = vec![0u8; 16];
            let rows: Vec<&[u8]> = enc.blocks().iter().map(|b| b.as_slice()).collect();
            bulk::linear_combine(&mut expect, pkt.coefficients(), &rows);
            assert_eq!(pkt.payload(), expect.as_slice());
        }
        for pkt in out.drain(..) {
            assert_eq!(pool.recycle(pkt), 2);
        }
        assert_eq!(pool.idle(), 16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn systematic_out_of_range_panics() {
        let enc = GenerationEncoder::new(cfg(), &[1u8; 64]).unwrap();
        let _ = enc.systematic_packet(SessionId::new(1), 0, 4);
    }
}
