//! Error types for the RLNC codec.

use std::error::Error;
use std::fmt;

/// Errors raised while configuring or running the codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// A generation/block configuration parameter was zero or too large.
    InvalidConfig {
        /// Human-readable description of the offending parameter.
        reason: String,
    },
    /// The supplied payload does not match the configured generation layout.
    PayloadSize {
        /// Bytes expected by the configuration.
        expected: usize,
        /// Bytes actually supplied.
        actual: usize,
    },
    /// A coefficient vector length did not match the generation size.
    CoefficientCount {
        /// Coefficients expected (= blocks per generation).
        expected: usize,
        /// Coefficients supplied.
        actual: usize,
    },
    /// Attempted to extract decoded data before the decoder reached full
    /// rank.
    NotDecoded {
        /// Current decoder rank.
        rank: usize,
        /// Rank required to decode (= blocks per generation).
        needed: usize,
    },
    /// A recoder was asked for a coded packet before buffering any input.
    EmptyRecoder,
    /// A sliding-window encoder was pushed a symbol while its window was
    /// already at capacity (the sender must wait for an ack to advance),
    /// or a windowed packet referenced symbols beyond what a decoder's
    /// window can hold.
    WindowFull {
        /// Configured window capacity in symbols.
        capacity: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::InvalidConfig { reason } => {
                write!(f, "invalid codec configuration: {reason}")
            }
            CodecError::PayloadSize { expected, actual } => {
                write!(
                    f,
                    "payload size mismatch: expected {expected} bytes, got {actual}"
                )
            }
            CodecError::CoefficientCount { expected, actual } => {
                write!(
                    f,
                    "coefficient count mismatch: expected {expected}, got {actual}"
                )
            }
            CodecError::NotDecoded { rank, needed } => {
                write!(f, "generation not decoded yet: rank {rank} of {needed}")
            }
            CodecError::EmptyRecoder => write!(f, "recoder buffer is empty"),
            CodecError::WindowFull { capacity } => {
                write!(f, "sliding window full at {capacity} symbols")
            }
        }
    }
}

impl Error for CodecError {}

/// Errors raised while parsing an NC header from the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeaderError {
    /// The datagram is shorter than the fixed header prefix.
    Truncated {
        /// Bytes needed for the fixed prefix plus coefficients.
        needed: usize,
        /// Bytes available.
        available: usize,
    },
    /// The magic byte identifying NC packets did not match.
    BadMagic {
        /// The byte found where the magic was expected.
        found: u8,
    },
    /// The packet-kind byte did not match the expected wire kind (e.g. a
    /// legacy generational packet fed to the windowed parser).
    BadKind {
        /// The kind the parser was asked for.
        expected: u8,
        /// The kind byte found on the wire.
        found: u8,
    },
}

impl fmt::Display for HeaderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeaderError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated NC header: need {needed} bytes, have {available}"
                )
            }
            HeaderError::BadMagic { found } => {
                write!(f, "not an NC packet: bad magic byte {found:#04x}")
            }
            HeaderError::BadKind { expected, found } => {
                write!(
                    f,
                    "wrong NC packet kind: expected {expected:#04x}, found {found:#04x}"
                )
            }
        }
    }
}

impl Error for HeaderError {}
