//! Randomized linear network coding (RLNC) over GF(2^8).
//!
//! This crate implements the data-plane coding scheme of *"Virtualized
//! Network Coding Functions on The Internet"* (ICDCS 2017):
//!
//! * source data is divided into **generations**, each further divided into
//!   **blocks** (default: 4 blocks of 1460 bytes — the MTU-fitting layout
//!   the paper derives in Sec. III-B);
//! * an **encoded block** is a random linear combination of the blocks in
//!   one generation, with coefficients drawn uniformly from GF(2^8);
//! * each coded packet carries an **NC header** (session id, generation id,
//!   coefficient vector) between the UDP header and the payload;
//! * intermediate nodes **recode**: fresh random combinations of whatever
//!   coded packets they have buffered for a generation, computed in a
//!   pipelined fashion (the first packet of a generation is forwarded
//!   verbatim — exactly the behaviour described in Sec. III-B-2);
//! * receivers run a **progressive Gaussian-elimination decoder** and can
//!   reconstruct a generation from any `g` linearly independent packets.
//!
//! # Quick start
//!
//! ```
//! use ncvnf_rlnc::{GenerationConfig, GenerationEncoder, GenerationDecoder};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), ncvnf_rlnc::CodecError> {
//! let cfg = GenerationConfig::new(64, 4)?;
//! let data = vec![7u8; cfg.generation_payload()];
//! let encoder = GenerationEncoder::new(cfg, &data)?;
//! let mut decoder = GenerationDecoder::new(cfg);
//! let mut rng = StdRng::seed_from_u64(42);
//! while !decoder.is_complete() {
//!     let pkt = encoder.coded_packet(0.into(), 0, &mut rng);
//!     let _ = decoder.receive(pkt.coefficients(), pkt.payload());
//! }
//! assert_eq!(decoder.decoded_payload().unwrap(), data);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod decoder;
mod encoder;
mod error;
mod header;
pub mod metrics;
mod object;
mod pool;
mod rank;
mod recoder;
mod redundancy;
pub mod seeded;
pub mod window;

pub use config::{CodingMode, GenerationConfig};
pub use decoder::{GenerationDecoder, ReceiveOutcome};
pub use encoder::GenerationEncoder;
pub use error::{CodecError, HeaderError};
pub use header::{
    wire_kind, CodedPacket, NcHeader, PacketView, SessionId, WindowAck, WindowPacket,
    WindowPacketView, WireKind, NC_KIND_WINDOW, NC_KIND_WINDOW_ACK, NC_MAGIC, NC_VERSION,
};
pub use metrics::{PoolMetrics, RlncMetrics};
pub use object::{ObjectDecoder, ObjectEncoder};
pub use pool::{PayloadPool, PoolStats};
pub use rank::RankTracker;
pub use recoder::Recoder;
pub use redundancy::{AdaptiveRedundancy, AimdConfig, RedundancyPolicy};
pub use window::{WindowConfig, WindowDecoder, WindowEncoder, WindowOutcome, WindowRecoder};

/// Probability that a uniformly random `g x g` matrix over GF(q) is
/// invertible: `Π_{i=1..g} (1 - q^{-i})`.
///
/// This is the success probability of decoding from exactly `g` random
/// coded packets, and drives the field-size ablation (the paper cites
/// GF(2^8) as the throughput-optimal choice).
///
/// # Examples
///
/// ```
/// let p = ncvnf_rlnc::invertibility_probability(256.0, 4);
/// assert!(p > 0.99 && p < 1.0);
/// ```
pub fn invertibility_probability(field_order: f64, generation_size: u32) -> f64 {
    (1..=generation_size)
        .map(|i| 1.0 - field_order.powi(-(i as i32)))
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invertibility_monotone_in_field_order() {
        let p2 = invertibility_probability(2.0, 4);
        let p16 = invertibility_probability(16.0, 4);
        let p256 = invertibility_probability(256.0, 4);
        assert!(p2 < p16 && p16 < p256);
        // Classic constant: over GF(2) the probability tends to ~0.2888.
        let p2_large = invertibility_probability(2.0, 64);
        assert!((p2_large - 0.2888).abs() < 0.001);
    }
}
