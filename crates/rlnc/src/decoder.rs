//! Progressive Gaussian-elimination decoder for one generation.

use ncvnf_gf256::bulk;
use ncvnf_gf256::{Field, Gf256};

use crate::config::GenerationConfig;
use crate::error::CodecError;

/// Result of feeding one coded packet to a [`GenerationDecoder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReceiveOutcome {
    /// The packet increased the decoder's rank.
    Innovative {
        /// Rank after absorbing the packet.
        rank: usize,
    },
    /// The packet was linearly dependent on already-received packets.
    Redundant,
    /// The packet arrived after the generation was already decoded.
    AlreadyComplete,
}

/// Decodes one generation from coded packets, incrementally.
///
/// The decoder keeps the received coefficient vectors in reduced row
/// echelon form, applying every row operation to the payloads in lockstep.
/// Decoding finishes as soon as `g` linearly independent packets have been
/// absorbed — "the data can be successfully recovered as long as sufficient
/// number of packets are received" — regardless of order, duplication or
/// loss.
#[derive(Debug, Clone)]
pub struct GenerationDecoder {
    config: GenerationConfig,
    /// Coefficient rows in RREF. `rows[i]` pairs with `payloads[i]`.
    coeff_rows: Vec<Vec<u8>>,
    payloads: Vec<Vec<u8>>,
    /// `pivot_of_col[c] = Some(row)` if column `c` is a pivot column.
    pivot_of_col: Vec<Option<usize>>,
    /// Reusable elimination workspace — incoming packets are reduced here
    /// so redundant packets (the common case past full rank) cost no heap
    /// allocation.
    coeff_scratch: Vec<u8>,
    data_scratch: Vec<u8>,
    /// Count of packets seen (innovative + redundant), for stats.
    packets_seen: u64,
}

impl GenerationDecoder {
    /// Creates an empty decoder for one generation.
    pub fn new(config: GenerationConfig) -> Self {
        GenerationDecoder {
            config,
            coeff_rows: Vec::with_capacity(config.blocks_per_generation()),
            payloads: Vec::with_capacity(config.blocks_per_generation()),
            pivot_of_col: vec![None; config.blocks_per_generation()],
            coeff_scratch: vec![0u8; config.blocks_per_generation()],
            data_scratch: vec![0u8; config.block_size()],
            packets_seen: 0,
        }
    }

    /// The layout this decoder expects.
    pub fn config(&self) -> GenerationConfig {
        self.config
    }

    /// Current rank (number of linearly independent packets absorbed).
    pub fn rank(&self) -> usize {
        self.coeff_rows.len()
    }

    /// True when the generation can be fully decoded.
    pub fn is_complete(&self) -> bool {
        self.rank() == self.config.blocks_per_generation()
    }

    /// Total packets fed to this decoder, including redundant ones.
    pub fn packets_seen(&self) -> u64 {
        self.packets_seen
    }

    /// Absorbs one coded packet.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::CoefficientCount`] or
    /// [`CodecError::PayloadSize`] if the packet does not match the
    /// configured layout.
    pub fn receive(
        &mut self,
        coefficients: &[u8],
        payload: &[u8],
    ) -> Result<ReceiveOutcome, CodecError> {
        let g = self.config.blocks_per_generation();
        if coefficients.len() != g {
            return Err(CodecError::CoefficientCount {
                expected: g,
                actual: coefficients.len(),
            });
        }
        if payload.len() != self.config.block_size() {
            return Err(CodecError::PayloadSize {
                expected: self.config.block_size(),
                actual: payload.len(),
            });
        }
        self.packets_seen += 1;
        if self.is_complete() {
            return Ok(ReceiveOutcome::AlreadyComplete);
        }

        // Structured elimination, part 1: a systematic packet (single
        // nonzero coefficient) either lands directly in an empty pivot
        // slot, or — when that slot's pivot row is itself a unit vector —
        // is a scalar duplicate of a block we already hold. Neither case
        // needs the full elimination pass, and the duplicate case (common
        // under systematic retransmission) costs no payload work at all.
        if let Some(col) = single_nonzero_column(coefficients) {
            match self.pivot_of_col[col] {
                Some(row) if is_unit_row(&self.coeff_rows[row], col) => {
                    return Ok(ReceiveOutcome::Redundant);
                }
                None => {
                    self.coeff_scratch.fill(0);
                    self.coeff_scratch[col] = 1;
                    self.data_scratch.copy_from_slice(payload);
                    let c = coefficients[col];
                    if c != 1 {
                        let inv = Gf256::new(c).inv().value();
                        bulk::scale_slice(&mut self.data_scratch, inv);
                    }
                    self.install_scratch_row(col);
                    return Ok(ReceiveOutcome::Innovative { rank: self.rank() });
                }
                // The pivot row carries mass outside its pivot column, so
                // eliminating the incoming unit vector against it exposes
                // that mass — fall through to the general pass.
                Some(_) => {}
            }
        }

        // Reduce into the reusable scratch row: redundant packets never
        // touch the heap, innovative ones (at most `g` per generation) are
        // copied out of the scratch when installed.
        self.coeff_scratch.copy_from_slice(coefficients);
        self.data_scratch.copy_from_slice(payload);

        // Eliminate every pivot column from the incoming row (pivot rows
        // are normalized to 1 at their pivot, so the factor is the entry
        // itself). The first nonzero entry in a pivot-free column becomes
        // the new pivot; later pivot columns must still be eliminated to
        // keep the matrix fully reduced.
        let mut new_pivot = None;
        for col in 0..g {
            if self.coeff_scratch[col] == 0 {
                continue;
            }
            match self.pivot_of_col[col] {
                Some(row) => {
                    let factor = self.coeff_scratch[col];
                    bulk::mul_add_slice(&mut self.coeff_scratch, &self.coeff_rows[row], factor);
                    bulk::mul_add_slice(&mut self.data_scratch, &self.payloads[row], factor);
                    debug_assert_eq!(self.coeff_scratch[col], 0);
                }
                None => {
                    if new_pivot.is_none() {
                        new_pivot = Some(col);
                    }
                }
            }
        }
        let Some(col) = new_pivot else {
            return Ok(ReceiveOutcome::Redundant);
        };
        let inv = Gf256::new(self.coeff_scratch[col]).inv().value();
        bulk::scale_slice(&mut self.coeff_scratch, inv);
        bulk::scale_slice(&mut self.data_scratch, inv);
        self.install_scratch_row(col);
        Ok(ReceiveOutcome::Innovative { rank: self.rank() })
    }

    /// Installs the normalized scratch row with pivot `col`, then
    /// back-substitutes it out of all existing rows to keep the matrix
    /// fully reduced.
    fn install_scratch_row(&mut self, col: usize) {
        let new_row = self.coeff_rows.len();
        for r in 0..new_row {
            let factor = self.coeff_rows[r][col];
            if factor != 0 {
                bulk::mul_add_slice(&mut self.coeff_rows[r], &self.coeff_scratch, factor);
                bulk::mul_add_slice(&mut self.payloads[r], &self.data_scratch, factor);
            }
        }
        self.coeff_rows.push(self.coeff_scratch.clone());
        self.payloads.push(self.data_scratch.clone());
        self.pivot_of_col[col] = Some(new_row);
    }

    /// Columns (block indices) that have no pivot yet. With a systematic
    /// sender these are exactly the original blocks still missing, which
    /// lets a receiver request precise retransmissions.
    pub fn missing_columns(&self) -> Vec<usize> {
        self.pivot_of_col
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_none())
            .map(|(c, _)| c)
            .collect()
    }

    /// The decoded blocks in generation order.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::NotDecoded`] until the decoder reaches full
    /// rank.
    pub fn decoded_blocks(&self) -> Result<Vec<&[u8]>, CodecError> {
        if !self.is_complete() {
            return Err(CodecError::NotDecoded {
                rank: self.rank(),
                needed: self.config.blocks_per_generation(),
            });
        }
        // Fully reduced + full rank means row with pivot column c holds
        // exactly original block c.
        Ok(self
            .pivot_of_col
            .iter()
            .map(|p| self.payloads[p.expect("full rank implies all pivots present")].as_slice())
            .collect())
    }

    /// The decoded generation payload as one contiguous buffer.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::NotDecoded`] until the decoder reaches full
    /// rank.
    pub fn decoded_payload(&self) -> Result<Vec<u8>, CodecError> {
        let blocks = self.decoded_blocks()?;
        let mut out = Vec::with_capacity(self.config.generation_payload());
        for b in blocks {
            out.extend_from_slice(b);
        }
        Ok(out)
    }
}

/// The index of the single nonzero coefficient, or `None` if there are
/// zero or several (part 2 of structured elimination: recognizing
/// systematic packets without scanning payloads).
fn single_nonzero_column(coefficients: &[u8]) -> Option<usize> {
    let mut found = None;
    for (i, &c) in coefficients.iter().enumerate() {
        if c != 0 {
            if found.is_some() {
                return None;
            }
            found = Some(i);
        }
    }
    found
}

/// True when `row` is the unit vector for `col` (pivot rows are
/// normalized, so the pivot entry is 1 whenever this returns true).
fn is_unit_row(row: &[u8], col: usize) -> bool {
    row.iter().enumerate().all(|(i, &c)| (i == col) == (c != 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::GenerationEncoder;
    use crate::header::SessionId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> GenerationConfig {
        GenerationConfig::new(32, 4).unwrap()
    }

    #[test]
    fn decodes_from_systematic_packets_in_any_order() {
        let data: Vec<u8> = (0..128).collect();
        let enc = GenerationEncoder::new(cfg(), &data).unwrap();
        let mut dec = GenerationDecoder::new(cfg());
        for i in [2usize, 0, 3, 1] {
            let pkt = enc.systematic_packet(SessionId::new(0), 0, i);
            let out = dec.receive(pkt.coefficients(), pkt.payload()).unwrap();
            assert!(matches!(out, ReceiveOutcome::Innovative { .. }));
        }
        assert_eq!(dec.decoded_payload().unwrap(), data);
    }

    #[test]
    fn decodes_from_random_packets() {
        let data: Vec<u8> = (0..128).map(|i| (i * 37 + 11) as u8).collect();
        let enc = GenerationEncoder::new(cfg(), &data).unwrap();
        let mut dec = GenerationDecoder::new(cfg());
        let mut rng = StdRng::seed_from_u64(99);
        let mut packets = 0;
        while !dec.is_complete() {
            let pkt = enc.coded_packet(SessionId::new(0), 0, &mut rng);
            dec.receive(pkt.coefficients(), pkt.payload()).unwrap();
            packets += 1;
            assert!(packets < 32, "decoder failed to converge");
        }
        assert_eq!(dec.decoded_payload().unwrap(), data);
    }

    #[test]
    fn duplicate_packets_are_redundant() {
        let enc = GenerationEncoder::new(cfg(), &[5u8; 128]).unwrap();
        let mut dec = GenerationDecoder::new(cfg());
        let mut rng = StdRng::seed_from_u64(3);
        let pkt = enc.coded_packet(SessionId::new(0), 0, &mut rng);
        assert!(matches!(
            dec.receive(pkt.coefficients(), pkt.payload()).unwrap(),
            ReceiveOutcome::Innovative { rank: 1 }
        ));
        assert_eq!(
            dec.receive(pkt.coefficients(), pkt.payload()).unwrap(),
            ReceiveOutcome::Redundant
        );
        assert_eq!(dec.rank(), 1);
        assert_eq!(dec.packets_seen(), 2);
    }

    #[test]
    fn duplicate_systematic_packets_do_not_consume_rank() {
        let data: Vec<u8> = (0..128).collect();
        let enc = GenerationEncoder::new(cfg(), &data).unwrap();
        let mut dec = GenerationDecoder::new(cfg());
        let pkt = enc.systematic_packet(SessionId::new(0), 0, 2);
        assert!(matches!(
            dec.receive(pkt.coefficients(), pkt.payload()).unwrap(),
            ReceiveOutcome::Innovative { rank: 1 }
        ));
        // The same source block arriving verbatim again (systematic
        // retransmission) must be flagged redundant without consuming
        // rank — and so must a scalar multiple of it.
        assert_eq!(
            dec.receive(pkt.coefficients(), pkt.payload()).unwrap(),
            ReceiveOutcome::Redundant
        );
        let mut coeffs = pkt.coefficients().to_vec();
        let mut payload = pkt.payload().to_vec();
        bulk::scale_slice(&mut coeffs, 9);
        bulk::scale_slice(&mut payload, 9);
        assert_eq!(
            dec.receive(&coeffs, &payload).unwrap(),
            ReceiveOutcome::Redundant
        );
        assert_eq!(dec.rank(), 1);
        // The decoder still converges on the remaining blocks.
        for i in [0usize, 1, 3] {
            let pkt = enc.systematic_packet(SessionId::new(0), 0, i);
            dec.receive(pkt.coefficients(), pkt.payload()).unwrap();
        }
        assert_eq!(dec.decoded_payload().unwrap(), data);
    }

    #[test]
    fn systematic_after_dense_falls_through_to_general_elimination() {
        // A unit vector whose column already has a (non-unit) pivot row
        // must take the general path and still decode correctly.
        let data: Vec<u8> = (0..128).map(|i| (i * 13 + 5) as u8).collect();
        let enc = GenerationEncoder::new(cfg(), &data).unwrap();
        let mut dec = GenerationDecoder::new(cfg());
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..2 {
            let pkt = enc.coded_packet(SessionId::new(0), 0, &mut rng);
            dec.receive(pkt.coefficients(), pkt.payload()).unwrap();
        }
        for i in 0..4 {
            let pkt = enc.systematic_packet(SessionId::new(0), 0, i);
            dec.receive(pkt.coefficients(), pkt.payload()).unwrap();
        }
        assert_eq!(dec.decoded_payload().unwrap(), data);
    }

    #[test]
    fn scaled_copy_is_redundant() {
        let enc = GenerationEncoder::new(cfg(), &[5u8; 128]).unwrap();
        let mut dec = GenerationDecoder::new(cfg());
        let mut rng = StdRng::seed_from_u64(4);
        let pkt = enc.coded_packet(SessionId::new(0), 0, &mut rng);
        dec.receive(pkt.coefficients(), pkt.payload()).unwrap();
        // Multiply the whole packet by 7: still in the span.
        let mut coeffs = pkt.coefficients().to_vec();
        let mut payload = pkt.payload().to_vec();
        bulk::scale_slice(&mut coeffs, 7);
        bulk::scale_slice(&mut payload, 7);
        assert_eq!(
            dec.receive(&coeffs, &payload).unwrap(),
            ReceiveOutcome::Redundant
        );
    }

    #[test]
    fn extra_packets_after_completion_are_flagged() {
        let data = vec![1u8; 128];
        let enc = GenerationEncoder::new(cfg(), &data).unwrap();
        let mut dec = GenerationDecoder::new(cfg());
        for i in 0..4 {
            let pkt = enc.systematic_packet(SessionId::new(0), 0, i);
            dec.receive(pkt.coefficients(), pkt.payload()).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(1);
        let pkt = enc.coded_packet(SessionId::new(0), 0, &mut rng);
        assert_eq!(
            dec.receive(pkt.coefficients(), pkt.payload()).unwrap(),
            ReceiveOutcome::AlreadyComplete
        );
    }

    #[test]
    fn rejects_wrong_shapes() {
        let mut dec = GenerationDecoder::new(cfg());
        assert!(matches!(
            dec.receive(&[1, 2, 3], &[0u8; 32]),
            Err(CodecError::CoefficientCount { .. })
        ));
        assert!(matches!(
            dec.receive(&[1, 2, 3, 4], &[0u8; 31]),
            Err(CodecError::PayloadSize { .. })
        ));
    }

    #[test]
    fn not_decoded_error_reports_rank() {
        let dec = GenerationDecoder::new(cfg());
        match dec.decoded_payload() {
            Err(CodecError::NotDecoded { rank: 0, needed: 4 }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }
}
