//! Reusable buffer pool for coded-packet payloads and coefficient vectors.
//!
//! The coding hot paths (`GenerationEncoder::coded_packets_into`,
//! `Recoder::recode_into`) check buffers out of a [`PayloadPool`], fill
//! them, and freeze them into the [`Bytes`] handles a
//! [`CodedPacket`](crate::CodedPacket) carries. Once every clone of the
//! packet has been dropped, [`PayloadPool::reclaim`] recovers the
//! allocation via [`Bytes::try_into_mut`] — in steady state the emit →
//! forward → drop → reclaim cycle touches the heap zero times per packet
//! (verified by `tests/alloc_steady_state.rs`).

use bytes::{Bytes, BytesMut};

use crate::header::CodedPacket;

/// Counters exposed by a [`PayloadPool`]: how often checkouts were served
/// from recycled buffers versus fresh allocations, and how reclamation
/// fared. `hits / checkouts` is the pool hit rate an operator watches to
/// confirm the data path runs allocation-free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers checked out of the pool.
    pub checkouts: u64,
    /// Checkouts served by a recycled buffer (no fresh allocation).
    pub hits: u64,
    /// Buffers successfully reclaimed into the free list.
    pub reclaimed: u64,
    /// Reclaim attempts that failed because the buffer was still shared.
    pub dropped: u64,
}

impl PoolStats {
    /// Fraction of checkouts served from the free list (1.0 when warm).
    pub fn hit_rate(&self) -> f64 {
        if self.checkouts == 0 {
            return 0.0;
        }
        self.hits as f64 / self.checkouts as f64
    }
}

/// A free list of byte buffers for packet payloads and coefficient vectors.
///
/// Not thread-safe by design: each encoder/recoder pipeline stage owns its
/// own pool, matching the paper's per-session VNF processes.
#[derive(Debug, Default)]
pub struct PayloadPool {
    buffers: Vec<BytesMut>,
    stats: PoolStats,
}

impl PayloadPool {
    /// An empty pool; buffers are allocated on first checkout and recycled
    /// thereafter.
    pub fn new() -> Self {
        PayloadPool::default()
    }

    /// A pool pre-seeded with `count` buffers of `capacity` bytes, so even
    /// the first packets avoid allocation.
    pub fn with_buffers(count: usize, capacity: usize) -> Self {
        PayloadPool {
            buffers: (0..count)
                .map(|_| BytesMut::with_capacity(capacity))
                .collect(),
            stats: PoolStats::default(),
        }
    }

    /// Buffers currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.buffers.len()
    }

    /// Checkout/reclaim counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    fn checkout(&mut self) -> BytesMut {
        self.stats.checkouts += 1;
        match self.buffers.pop() {
            Some(buf) => {
                self.stats.hits += 1;
                buf
            }
            None => BytesMut::new(),
        }
    }

    /// Checks out a buffer of exactly `len` zeroed bytes, reusing a
    /// recycled allocation when one is available.
    pub fn checkout_zeroed(&mut self, len: usize) -> BytesMut {
        let mut buf = self.checkout();
        buf.clear();
        buf.resize(len, 0);
        buf
    }

    /// Checks out a buffer holding a copy of `data`, reusing a recycled
    /// allocation when one is available (the ingress twin of
    /// [`checkout_zeroed`](Self::checkout_zeroed) — wire bytes are copied
    /// straight into pooled storage instead of a fresh allocation).
    pub fn checkout_copy(&mut self, data: &[u8]) -> BytesMut {
        let mut buf = self.checkout();
        buf.clear();
        buf.extend_from_slice(data);
        buf
    }

    /// Returns a buffer to the pool if `bytes` is the sole owner of its
    /// storage; reports whether the reclamation succeeded.
    pub fn reclaim(&mut self, bytes: Bytes) -> bool {
        match bytes.try_into_mut() {
            Ok(buf) => {
                self.stats.reclaimed += 1;
                self.buffers.push(buf);
                true
            }
            Err(_) => {
                self.stats.dropped += 1;
                false
            }
        }
    }

    /// Reclaims both buffers of a finished packet (payload and coefficient
    /// vector); returns how many were recovered (0–2).
    pub fn recycle(&mut self, packet: CodedPacket) -> usize {
        let (header, payload) = packet.into_parts();
        usize::from(self.reclaim(header.coefficients)) + usize::from(self.reclaim(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_is_zeroed_and_reuses_buffers() {
        let mut pool = PayloadPool::new();
        let mut buf = pool.checkout_zeroed(8);
        assert_eq!(&buf[..], &[0u8; 8]);
        buf[0] = 0xFF;
        let ptr = buf.as_ref().as_ptr();
        assert!(pool.reclaim(buf.freeze()));
        assert_eq!(pool.idle(), 1);
        let again = pool.checkout_zeroed(8);
        assert_eq!(again.as_ref().as_ptr(), ptr, "allocation was reused");
        assert_eq!(&again[..], &[0u8; 8], "stale contents are cleared");
    }

    #[test]
    fn shared_buffers_are_not_reclaimed() {
        let mut pool = PayloadPool::new();
        let frozen = pool.checkout_zeroed(4).freeze();
        let keep = frozen.clone();
        assert!(!pool.reclaim(frozen));
        assert_eq!(pool.idle(), 0);
        assert!(pool.reclaim(keep));
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn checkout_copy_reuses_and_counts() {
        let mut pool = PayloadPool::new();
        let buf = pool.checkout_copy(b"abcd");
        assert_eq!(&buf[..], b"abcd");
        assert!(pool.reclaim(buf.freeze()));
        let again = pool.checkout_copy(b"xy");
        assert_eq!(&again[..], b"xy");
        let stats = pool.stats();
        assert_eq!(stats.checkouts, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.reclaimed, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn recycle_recovers_both_packet_buffers() {
        use crate::header::{NcHeader, SessionId};
        let mut pool = PayloadPool::new();
        let coeffs = pool.checkout_zeroed(4).freeze();
        let payload = pool.checkout_zeroed(16).freeze();
        let pkt = CodedPacket::new(
            NcHeader {
                session: SessionId::new(1),
                generation: 0,
                coefficients: coeffs,
            },
            payload,
        );
        assert_eq!(pool.recycle(pkt), 2);
        assert_eq!(pool.idle(), 2);
    }
}
