//! Reusable buffer pool for coded-packet payloads and coefficient vectors.
//!
//! The coding hot paths (`GenerationEncoder::coded_packets_into`,
//! `Recoder::recode_into`) check buffers out of a [`PayloadPool`], fill
//! them, and freeze them into the [`Bytes`] handles a
//! [`CodedPacket`](crate::CodedPacket) carries. Once every clone of the
//! packet has been dropped, [`PayloadPool::reclaim`] recovers the
//! allocation via [`Bytes::try_into_mut`] — in steady state the emit →
//! forward → drop → reclaim cycle touches the heap zero times per packet
//! (verified by `tests/alloc_steady_state.rs`).

use bytes::{Bytes, BytesMut};

use crate::header::{CodedPacket, WindowPacket};

/// Counters exposed by a [`PayloadPool`]: how often checkouts were served
/// from recycled buffers versus fresh allocations, and how reclamation
/// fared. `hits / checkouts` is the pool hit rate an operator watches to
/// confirm the data path runs allocation-free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers checked out of the pool.
    pub checkouts: u64,
    /// Checkouts served by a recycled buffer (no fresh allocation).
    pub hits: u64,
    /// Buffers successfully reclaimed into the free list.
    pub reclaimed: u64,
    /// Reclaim attempts that failed because the buffer was still shared.
    pub dropped: u64,
    /// Reclaimed buffers released instead of retained because keeping
    /// them would exceed the pool's byte budget.
    pub evicted: u64,
}

impl PoolStats {
    /// Fraction of checkouts served from the free list (1.0 when warm).
    pub fn hit_rate(&self) -> f64 {
        if self.checkouts == 0 {
            return 0.0;
        }
        self.hits as f64 / self.checkouts as f64
    }
}

/// A free list of byte buffers for packet payloads and coefficient vectors.
///
/// Not thread-safe by design: each encoder/recoder pipeline stage owns its
/// own pool, matching the paper's per-session VNF processes.
#[derive(Debug, Default)]
pub struct PayloadPool {
    buffers: Vec<BytesMut>,
    stats: PoolStats,
    /// Byte cap on memory attributed to this pool (idle + in flight);
    /// `None` = unbounded (the pre-budget behavior).
    byte_budget: Option<usize>,
    /// Sum of capacities of the idle buffers in `buffers`.
    retained_bytes: usize,
    /// Bytes checked out and not yet offered back via
    /// [`reclaim`](Self::reclaim) — a live estimate of in-flight pooled
    /// memory, counted at checkout length granularity.
    outstanding_bytes: usize,
}

impl PayloadPool {
    /// An empty pool; buffers are allocated on first checkout and recycled
    /// thereafter.
    pub fn new() -> Self {
        PayloadPool::default()
    }

    /// A pool pre-seeded with `count` buffers of `capacity` bytes, so even
    /// the first packets avoid allocation.
    pub fn with_buffers(count: usize, capacity: usize) -> Self {
        PayloadPool {
            buffers: (0..count)
                .map(|_| BytesMut::with_capacity(capacity))
                .collect(),
            stats: PoolStats::default(),
            byte_budget: None,
            retained_bytes: count * capacity,
            outstanding_bytes: 0,
        }
    }

    /// Buffers currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.buffers.len()
    }

    /// Checkout/reclaim counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Caps the bytes attributed to this pool (idle + in flight). When a
    /// reclaim would push the idle free list past the cap the buffer's
    /// allocation is released instead of retained (counted in
    /// [`PoolStats::evicted`]). `None` removes the cap.
    pub fn set_byte_budget(&mut self, budget: Option<usize>) {
        self.byte_budget = budget;
    }

    /// The configured byte cap, if any.
    pub fn byte_budget(&self) -> Option<usize> {
        self.byte_budget
    }

    /// Sum of capacities of idle buffers in the free list.
    pub fn retained_bytes(&self) -> usize {
        self.retained_bytes
    }

    /// Bytes checked out and not yet offered back — the in-flight share
    /// of the pool's memory attribution.
    pub fn outstanding_bytes(&self) -> usize {
        self.outstanding_bytes
    }

    /// Memory pressure against the byte budget: `(idle + in flight) /
    /// budget`, or `0.0` when no budget is set. May exceed `1.0` while
    /// in-flight buffers hold more than the cap — the overload layer
    /// uses that as its shed signal.
    pub fn pressure(&self) -> f64 {
        match self.byte_budget {
            Some(budget) if budget > 0 => {
                (self.retained_bytes + self.outstanding_bytes) as f64 / budget as f64
            }
            _ => 0.0,
        }
    }

    fn checkout(&mut self) -> BytesMut {
        self.stats.checkouts += 1;
        match self.buffers.pop() {
            Some(buf) => {
                self.stats.hits += 1;
                self.retained_bytes = self.retained_bytes.saturating_sub(buf.capacity());
                buf
            }
            None => BytesMut::new(),
        }
    }

    /// Checks out a buffer of exactly `len` zeroed bytes, reusing a
    /// recycled allocation when one is available.
    pub fn checkout_zeroed(&mut self, len: usize) -> BytesMut {
        let mut buf = self.checkout();
        buf.clear();
        buf.resize(len, 0);
        self.outstanding_bytes += len;
        buf
    }

    /// Checks out a buffer holding a copy of `data`, reusing a recycled
    /// allocation when one is available (the ingress twin of
    /// [`checkout_zeroed`](Self::checkout_zeroed) — wire bytes are copied
    /// straight into pooled storage instead of a fresh allocation).
    pub fn checkout_copy(&mut self, data: &[u8]) -> BytesMut {
        let mut buf = self.checkout();
        buf.clear();
        buf.extend_from_slice(data);
        self.outstanding_bytes += data.len();
        buf
    }

    /// Returns a buffer to the pool if `bytes` is the sole owner of its
    /// storage; reports whether the reclamation succeeded. Under a byte
    /// budget, a sole-owner buffer that would overflow the idle cap is
    /// released back to the allocator instead (still ends its in-flight
    /// accounting, but counts as an eviction, not a reclaim).
    pub fn reclaim(&mut self, bytes: Bytes) -> bool {
        self.outstanding_bytes = self.outstanding_bytes.saturating_sub(bytes.len());
        match bytes.try_into_mut() {
            Ok(buf) => {
                if let Some(budget) = self.byte_budget {
                    if self.retained_bytes + buf.capacity() > budget {
                        self.stats.evicted += 1;
                        return false;
                    }
                }
                self.stats.reclaimed += 1;
                self.retained_bytes += buf.capacity();
                self.buffers.push(buf);
                true
            }
            Err(_) => {
                self.stats.dropped += 1;
                false
            }
        }
    }

    /// Reclaims both buffers of a finished packet (payload and coefficient
    /// vector); returns how many were recovered (0–2).
    pub fn recycle(&mut self, packet: CodedPacket) -> usize {
        let (header, payload) = packet.into_parts();
        usize::from(self.reclaim(header.coefficients)) + usize::from(self.reclaim(payload))
    }

    /// Reclaims both buffers of a finished sliding-window packet; returns
    /// how many were recovered (0–2).
    pub fn recycle_window(&mut self, packet: WindowPacket) -> usize {
        usize::from(self.reclaim(packet.coefficients)) + usize::from(self.reclaim(packet.payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_is_zeroed_and_reuses_buffers() {
        let mut pool = PayloadPool::new();
        let mut buf = pool.checkout_zeroed(8);
        assert_eq!(&buf[..], &[0u8; 8]);
        buf[0] = 0xFF;
        let ptr = buf.as_ref().as_ptr();
        assert!(pool.reclaim(buf.freeze()));
        assert_eq!(pool.idle(), 1);
        let again = pool.checkout_zeroed(8);
        assert_eq!(again.as_ref().as_ptr(), ptr, "allocation was reused");
        assert_eq!(&again[..], &[0u8; 8], "stale contents are cleared");
    }

    #[test]
    fn shared_buffers_are_not_reclaimed() {
        let mut pool = PayloadPool::new();
        let frozen = pool.checkout_zeroed(4).freeze();
        let keep = frozen.clone();
        assert!(!pool.reclaim(frozen));
        assert_eq!(pool.idle(), 0);
        assert!(pool.reclaim(keep));
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn checkout_copy_reuses_and_counts() {
        let mut pool = PayloadPool::new();
        let buf = pool.checkout_copy(b"abcd");
        assert_eq!(&buf[..], b"abcd");
        assert!(pool.reclaim(buf.freeze()));
        let again = pool.checkout_copy(b"xy");
        assert_eq!(&again[..], b"xy");
        let stats = pool.stats();
        assert_eq!(stats.checkouts, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.reclaimed, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn byte_budget_evicts_instead_of_retaining() {
        let mut pool = PayloadPool::new();
        let a = pool.checkout_zeroed(16);
        let b = pool.checkout_zeroed(16);
        // Cap the pool at exactly one buffer's worth of idle storage.
        pool.set_byte_budget(Some(a.capacity()));
        assert_eq!(pool.byte_budget(), Some(a.capacity()));
        assert_eq!(pool.outstanding_bytes(), 32);
        assert!(pool.pressure() >= 1.0, "in-flight bytes exceed the cap");
        assert!(pool.reclaim(a.freeze()), "first buffer fits the cap");
        assert!(
            !pool.reclaim(b.freeze()),
            "second buffer would overflow the idle cap"
        );
        let stats = pool.stats();
        assert_eq!(stats.reclaimed, 1);
        assert_eq!(stats.evicted, 1);
        assert_eq!(stats.dropped, 0);
        assert_eq!(pool.idle(), 1);
        assert_eq!(pool.outstanding_bytes(), 0);
    }

    #[test]
    fn pressure_is_zero_without_budget() {
        let mut pool = PayloadPool::new();
        let _buf = pool.checkout_zeroed(64);
        assert_eq!(pool.pressure(), 0.0);
        assert_eq!(pool.outstanding_bytes(), 64);
    }

    #[test]
    fn recycle_recovers_both_packet_buffers() {
        use crate::header::{NcHeader, SessionId};
        let mut pool = PayloadPool::new();
        let coeffs = pool.checkout_zeroed(4).freeze();
        let payload = pool.checkout_zeroed(16).freeze();
        let pkt = CodedPacket::new(
            NcHeader {
                session: SessionId::new(1),
                generation: 0,
                coefficients: coeffs,
            },
            payload,
        );
        assert_eq!(pool.recycle(pkt), 2);
        assert_eq!(pool.idle(), 2);
    }
}
