//! Sliding-window (finite-window streaming) coding.
//!
//! The generational codec batches data into fixed generations and decodes
//! whole generations at once — throughput-optimal, but a latency-sensitive
//! stream stalls for a full generation on any loss. This module trades a
//! little throughput for bounded latency: the sender keeps a finite
//! **window** of the most recent unacknowledged symbols, every coded
//! packet combines only symbols inside that window, and the receiver
//! delivers symbols *in order* the moment they become determined —
//! no generation boundaries, no batch stalls.
//!
//! Wire format: [`WindowPacket`] / [`WindowAck`](crate::WindowAck)
//! (kinds 2 and 3 next to the legacy generational header — see
//! [`NcHeader`](crate::NcHeader)).
//!
//! # Window lifecycle
//!
//! A symbol moves through four stages: **pushed** into the sender window,
//! **covered** by systematic + repair packets, **delivered** in order by
//! the receiver, and **acked** back — which slides the sender's window
//! base forward and frees space for new symbols:
//!
//! ```
//! use ncvnf_rlnc::window::{WindowConfig, WindowDecoder, WindowEncoder, WindowOutcome};
//! use ncvnf_rlnc::{PayloadPool, SessionId};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let cfg = WindowConfig::new(32, 8).unwrap(); // 32-byte symbols, window of 8
//! let mut enc = WindowEncoder::new(cfg, SessionId::new(1));
//! let mut dec = WindowDecoder::new(cfg);
//! let (mut rng, mut pool) = (StdRng::seed_from_u64(7), PayloadPool::new());
//!
//! // Push two symbols; emit them systematically; the receiver delivers
//! // each in order on arrival.
//! for i in 0..2u8 {
//!     let idx = enc.push(&[i; 32]).unwrap();
//!     let pkt = enc.systematic_packet_pooled(idx, &mut pool).unwrap();
//!     let out = dec.receive(pkt.base, &pkt.coefficients, &pkt.payload).unwrap();
//!     assert!(matches!(out, WindowOutcome::Delivered { .. }));
//! }
//! assert_eq!(dec.delivered(), 2);
//!
//! // The cumulative ack slides the sender window: both symbols leave it.
//! enc.handle_ack(dec.cumulative_ack());
//! assert_eq!(enc.base(), 2);
//! assert_eq!(enc.live(), 0);
//! ```
//!
//! Loss is repaired from the **live window**: a receiver that detects a
//! gap sends a [`WindowAck`](crate::WindowAck) with `repair_wanted > 0`, and the sender
//! answers with [`WindowEncoder::coded_packet_pooled`] bursts — random
//! combinations of exactly the unacknowledged symbols, so any
//! `missing` independent repair packets close the gap.

use std::collections::VecDeque;

use rand::Rng;

use ncvnf_gf256::bulk;
use ncvnf_gf256::{Field, Gf256};

use crate::error::CodecError;
use crate::header::{SessionId, WindowPacket};
use crate::pool::PayloadPool;

/// Layout of a windowed stream: symbol size in bytes and the maximum
/// number of in-flight (unacknowledged) symbols.
///
/// The window capacity is bounded by [`WindowPacket::MAX_WIDTH`] (255)
/// because the wire format's width byte must cover the whole window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WindowConfig {
    symbol_size: usize,
    capacity: usize,
}

impl WindowConfig {
    /// Creates a window layout.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidConfig`] if `symbol_size` is zero or
    /// `capacity` is outside `1..=255`.
    pub fn new(symbol_size: usize, capacity: usize) -> Result<Self, CodecError> {
        if symbol_size == 0 {
            return Err(CodecError::InvalidConfig {
                reason: "symbol size must be positive".into(),
            });
        }
        if capacity == 0 || capacity > WindowPacket::MAX_WIDTH {
            return Err(CodecError::InvalidConfig {
                reason: format!(
                    "window capacity {capacity} outside 1..={}",
                    WindowPacket::MAX_WIDTH
                ),
            });
        }
        Ok(WindowConfig {
            symbol_size,
            capacity,
        })
    }

    /// Bytes per stream symbol.
    pub fn symbol_size(&self) -> usize {
        self.symbol_size
    }

    /// Maximum in-flight symbols (the window size `W`).
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Source side of a windowed stream: owns the live window of
/// unacknowledged symbols and emits systematic and repair packets over
/// it.
#[derive(Debug, Clone)]
pub struct WindowEncoder {
    config: WindowConfig,
    session: SessionId,
    /// Absolute index of the oldest live symbol.
    base: u64,
    /// Live symbols, `base` first; each exactly `symbol_size` long.
    symbols: VecDeque<Vec<u8>>,
}

impl WindowEncoder {
    /// Creates an encoder with an empty window starting at index 0.
    pub fn new(config: WindowConfig, session: SessionId) -> Self {
        WindowEncoder {
            config,
            session,
            base: 0,
            symbols: VecDeque::with_capacity(config.capacity()),
        }
    }

    /// The stream layout.
    pub fn config(&self) -> WindowConfig {
        self.config
    }

    /// Absolute index of the oldest unacknowledged symbol.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Symbols currently in the window.
    pub fn live(&self) -> usize {
        self.symbols.len()
    }

    /// Index the next [`push`](Self::push) will occupy.
    pub fn next_index(&self) -> u64 {
        self.base + self.symbols.len() as u64
    }

    /// Appends one symbol to the window; returns its absolute index.
    /// Short symbols are zero-padded to the configured size.
    ///
    /// # Errors
    ///
    /// [`CodecError::WindowFull`] if the window is at capacity (wait for
    /// an ack); [`CodecError::PayloadSize`] if `data` is empty or longer
    /// than one symbol.
    pub fn push(&mut self, data: &[u8]) -> Result<u64, CodecError> {
        if self.symbols.len() >= self.config.capacity() {
            return Err(CodecError::WindowFull {
                capacity: self.config.capacity(),
            });
        }
        if data.is_empty() || data.len() > self.config.symbol_size() {
            return Err(CodecError::PayloadSize {
                expected: self.config.symbol_size(),
                actual: data.len(),
            });
        }
        let mut symbol = vec![0u8; self.config.symbol_size()];
        symbol[..data.len()].copy_from_slice(data);
        self.symbols.push_back(symbol);
        Ok(self.base + self.symbols.len() as u64 - 1)
    }

    /// Slides the window base forward: all symbols below `cumulative`
    /// are acknowledged and leave the window.
    pub fn handle_ack(&mut self, cumulative: u64) {
        while self.base < cumulative && !self.symbols.is_empty() {
            self.symbols.pop_front();
            self.base += 1;
        }
    }

    /// Emits symbol `index` verbatim (width-1 unit coefficient vector —
    /// the cheapest possible wire form, 14 bytes of overhead).
    ///
    /// # Errors
    ///
    /// [`CodecError::EmptyRecoder`] if `index` is not in the live window.
    pub fn systematic_packet_pooled(
        &self,
        index: u64,
        pool: &mut PayloadPool,
    ) -> Result<WindowPacket, CodecError> {
        let rel = index.checked_sub(self.base).map(|r| r as usize);
        let Some(symbol) = rel.and_then(|r| self.symbols.get(r)) else {
            return Err(CodecError::EmptyRecoder);
        };
        let mut coefficients = pool.checkout_zeroed(1);
        coefficients[0] = 1;
        let payload = pool.checkout_copy(symbol);
        Ok(WindowPacket {
            session: self.session,
            base: index,
            coefficients: coefficients.freeze(),
            payload: payload.freeze(),
        })
    }

    /// Emits one repair packet: a uniformly random (never all-zero)
    /// combination of every live symbol. Any `k` such packets repair `k`
    /// losses anywhere in the window with high probability.
    ///
    /// # Errors
    ///
    /// [`CodecError::EmptyRecoder`] if the window is empty.
    pub fn coded_packet_pooled<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        pool: &mut PayloadPool,
    ) -> Result<WindowPacket, CodecError> {
        if self.symbols.is_empty() {
            return Err(CodecError::EmptyRecoder);
        }
        let w = self.symbols.len();
        let mut coefficients = pool.checkout_zeroed(w);
        loop {
            rng.fill(&mut coefficients[..]);
            if coefficients.iter().any(|&c| c != 0) {
                break;
            }
        }
        let mut payload = pool.checkout_zeroed(self.config.symbol_size());
        for (&c, symbol) in coefficients.iter().zip(self.symbols.iter()) {
            bulk::mul_add_slice(&mut payload, symbol, c);
        }
        Ok(WindowPacket {
            session: self.session,
            base: self.base,
            coefficients: coefficients.freeze(),
            payload: payload.freeze(),
        })
    }

    /// Appends `count` repair packets to `out` (the NACK-burst emit path:
    /// recovery answers a [`crate::WindowAck`] with `repair_wanted`
    /// fresh combinations from the live window).
    ///
    /// # Errors
    ///
    /// [`CodecError::EmptyRecoder`] if the window is empty.
    pub fn repair_burst_into<R: Rng + ?Sized>(
        &self,
        count: usize,
        rng: &mut R,
        pool: &mut PayloadPool,
        out: &mut Vec<WindowPacket>,
    ) -> Result<(), CodecError> {
        out.reserve(count);
        for _ in 0..count {
            out.push(self.coded_packet_pooled(rng, pool)?);
        }
        Ok(())
    }
}

/// What a [`WindowDecoder`] did with one packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WindowOutcome {
    /// One or more symbols became determined and were delivered in
    /// order.
    Delivered {
        /// Absolute index of the first delivered symbol.
        first: u64,
        /// The delivered symbols, consecutive from `first`.
        payloads: Vec<Vec<u8>>,
    },
    /// The packet added rank but nothing was deliverable yet.
    Innovative,
    /// The packet was linearly dependent on what the decoder holds.
    Redundant,
    /// The packet only referenced symbols older than the retained
    /// history (a very late duplicate); it was dropped.
    Stale,
}

/// Receiver side of a windowed stream: in-order delivery with
/// progressive elimination over a sliding column range.
///
/// Columns are absolute symbol indices. The matrix spans
/// `[delivered, delivered + capacity)`; already-delivered symbols are
/// retained (up to one window's worth) so late packets that still
/// reference them can be reduced against known data instead of being
/// dropped.
#[derive(Debug, Clone)]
pub struct WindowDecoder {
    config: WindowConfig,
    /// Next in-order symbol index to deliver (everything below is done).
    delivered: u64,
    /// Recently delivered symbols, oldest first; the retained lookback
    /// for packets whose window still covers delivered columns.
    history: VecDeque<Vec<u8>>,
    /// RREF rows over columns `delivered..delivered + capacity`,
    /// relative to `delivered`.
    rows: Vec<Vec<u8>>,
    payloads: Vec<Vec<u8>>,
    /// `pivot_of[c] = Some(row)` if relative column `c` is a pivot.
    pivot_of: Vec<Option<usize>>,
    coeff_scratch: Vec<u8>,
    data_scratch: Vec<u8>,
    packets_seen: u64,
}

impl WindowDecoder {
    /// Creates an empty decoder expecting symbol 0 first.
    pub fn new(config: WindowConfig) -> Self {
        WindowDecoder {
            config,
            delivered: 0,
            history: VecDeque::with_capacity(config.capacity()),
            rows: Vec::new(),
            payloads: Vec::new(),
            pivot_of: vec![None; config.capacity()],
            coeff_scratch: vec![0u8; config.capacity()],
            data_scratch: vec![0u8; config.symbol_size()],
            packets_seen: 0,
        }
    }

    /// The stream layout.
    pub fn config(&self) -> WindowConfig {
        self.config
    }

    /// Symbols delivered in order so far (also the next expected index).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// The cumulative-ack value to send back: the next symbol index this
    /// decoder needs.
    pub fn cumulative_ack(&self) -> u64 {
        self.delivered
    }

    /// Undelivered rank currently held (independent combinations beyond
    /// the delivery point).
    pub fn pending_rank(&self) -> usize {
        self.rows.len()
    }

    /// Packets fed to this decoder, including redundant/stale ones.
    pub fn packets_seen(&self) -> u64 {
        self.packets_seen
    }

    /// Absorbs one windowed packet (`coefficients[i]` applies to symbol
    /// `base + i`) and delivers any symbols that became determined.
    ///
    /// # Errors
    ///
    /// [`CodecError::PayloadSize`] on a wrong-size payload;
    /// [`CodecError::CoefficientCount`] on an empty or over-wide
    /// coefficient vector; [`CodecError::WindowFull`] if the packet
    /// references symbols beyond what this window can hold (sender and
    /// receiver disagree on the capacity).
    pub fn receive(
        &mut self,
        base: u64,
        coefficients: &[u8],
        payload: &[u8],
    ) -> Result<WindowOutcome, CodecError> {
        let cap = self.config.capacity();
        if payload.len() != self.config.symbol_size() {
            return Err(CodecError::PayloadSize {
                expected: self.config.symbol_size(),
                actual: payload.len(),
            });
        }
        if coefficients.is_empty() || coefficients.len() > WindowPacket::MAX_WIDTH {
            return Err(CodecError::CoefficientCount {
                expected: cap,
                actual: coefficients.len(),
            });
        }
        self.packets_seen += 1;

        // Align the packet onto the matrix columns: contributions from
        // already-delivered symbols are subtracted using the retained
        // history; live columns land in the scratch row.
        let floor = self.delivered - self.history.len() as u64;
        self.coeff_scratch.fill(0);
        self.data_scratch.copy_from_slice(payload);
        let mut live_mass = false;
        for (i, &c) in coefficients.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let col = base + i as u64;
            if col < floor {
                return Ok(WindowOutcome::Stale);
            }
            if col < self.delivered {
                let known = &self.history[(col - floor) as usize];
                bulk::mul_add_slice(&mut self.data_scratch, known, c);
            } else {
                let rel = (col - self.delivered) as usize;
                if rel >= cap {
                    return Err(CodecError::WindowFull { capacity: cap });
                }
                self.coeff_scratch[rel] = c;
                live_mass = true;
            }
        }
        if !live_mass {
            // Every referenced symbol was already delivered.
            return Ok(WindowOutcome::Redundant);
        }

        // Standard progressive RREF absorb over the relative columns.
        let mut new_pivot = None;
        for col in 0..cap {
            if self.coeff_scratch[col] == 0 {
                continue;
            }
            match self.pivot_of[col] {
                Some(row) => {
                    let factor = self.coeff_scratch[col];
                    bulk::mul_add_slice(&mut self.coeff_scratch, &self.rows[row], factor);
                    bulk::mul_add_slice(&mut self.data_scratch, &self.payloads[row], factor);
                }
                None => {
                    if new_pivot.is_none() {
                        new_pivot = Some(col);
                    }
                }
            }
        }
        let Some(col) = new_pivot else {
            return Ok(WindowOutcome::Redundant);
        };
        let inv = Gf256::new(self.coeff_scratch[col]).inv().value();
        bulk::scale_slice(&mut self.coeff_scratch, inv);
        bulk::scale_slice(&mut self.data_scratch, inv);
        let new_row = self.rows.len();
        for r in 0..new_row {
            let factor = self.rows[r][col];
            if factor != 0 {
                bulk::mul_add_slice(&mut self.rows[r], &self.coeff_scratch, factor);
                bulk::mul_add_slice(&mut self.payloads[r], &self.data_scratch, factor);
            }
        }
        self.rows.push(self.coeff_scratch.clone());
        self.payloads.push(self.data_scratch.clone());
        self.pivot_of[col] = Some(new_row);

        // In-order delivery: while the front column's pivot row is a
        // unit vector, that symbol is fully determined — hand it out and
        // slide the matrix left one column.
        let first = self.delivered;
        let mut out = Vec::new();
        while let Some(row) = self.pivot_of[0] {
            if !self.rows[row].iter().skip(1).all(|&c| c == 0) {
                break;
            }
            let payload = self.remove_row(row);
            if self.history.len() == cap {
                self.history.pop_front();
            }
            out.push(payload.clone());
            self.history.push_back(payload);
            self.delivered += 1;
            // Slide every remaining row (and the pivot map) left; the
            // departed column is zero everywhere else by full reduction.
            for r in &mut self.rows {
                r.rotate_left(1);
                r[cap - 1] = 0;
            }
            self.pivot_of.remove(0);
            self.pivot_of.push(None);
        }
        if out.is_empty() {
            Ok(WindowOutcome::Innovative)
        } else {
            Ok(WindowOutcome::Delivered {
                first,
                payloads: out,
            })
        }
    }

    /// Removes row `row`, fixing up the pivot map, and returns its
    /// payload.
    fn remove_row(&mut self, row: usize) -> Vec<u8> {
        self.rows.remove(row);
        let payload = self.payloads.remove(row);
        for p in self.pivot_of.iter_mut() {
            match *p {
                Some(r) if r == row => *p = None,
                Some(r) if r > row => *p = Some(r - 1),
                _ => {}
            }
        }
        payload
    }
}

/// In-network recoder for windowed streams: buffers independent
/// combinations and emits fresh ones, exactly like the generational
/// [`Recoder`](crate::Recoder) but over a sliding column range.
///
/// Coefficients align by absolute symbol index, so combinations of
/// packets with *different* bases remain valid windowed packets — the
/// defining recoding property carries over to streams.
#[derive(Debug, Clone)]
pub struct WindowRecoder {
    config: WindowConfig,
    session: SessionId,
    /// Base column of the buffer; advances with acks or when traffic
    /// moves past the capacity.
    floor: u64,
    /// Buffered echelon rows relative to `floor` (sorted by leading
    /// index, leading entries normalized to 1).
    rows: Vec<Vec<u8>>,
    payloads: Vec<Vec<u8>>,
    coeff_scratch: Vec<u8>,
    data_scratch: Vec<u8>,
    weights_scratch: Vec<u8>,
    packets_in: u64,
    packets_out: u64,
}

impl WindowRecoder {
    /// Creates an empty windowed recoder.
    pub fn new(config: WindowConfig, session: SessionId) -> Self {
        WindowRecoder {
            config,
            session,
            floor: 0,
            rows: Vec::new(),
            payloads: Vec::new(),
            coeff_scratch: vec![0u8; config.capacity()],
            data_scratch: vec![0u8; config.symbol_size()],
            weights_scratch: Vec::new(),
            packets_in: 0,
            packets_out: 0,
        }
    }

    /// The session this recoder serves.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// Independent combinations currently buffered.
    pub fn rank(&self) -> usize {
        self.rows.len()
    }

    /// Packets absorbed so far.
    pub fn packets_in(&self) -> u64 {
        self.packets_in
    }

    /// Packets emitted so far.
    pub fn packets_out(&self) -> u64 {
        self.packets_out
    }

    /// Oldest symbol index the buffer can still represent.
    pub fn floor(&self) -> u64 {
        self.floor
    }

    /// Slides the buffer floor to `cumulative` (symbols below it are
    /// delivered end-to-end; rows pinned below the new floor are
    /// dropped).
    pub fn handle_ack(&mut self, cumulative: u64) {
        self.slide_to(cumulative);
    }

    fn slide_to(&mut self, new_floor: u64) {
        if new_floor <= self.floor {
            return;
        }
        let shift = (new_floor - self.floor) as usize;
        let cap = self.config.capacity();
        let mut i = 0;
        while i < self.rows.len() {
            let lead = self.rows[i].iter().position(|&c| c != 0).unwrap_or(cap);
            if lead < shift.min(cap) {
                // Row references evicted columns; it cannot be shifted.
                self.rows.remove(i);
                self.payloads.remove(i);
            } else {
                i += 1;
            }
        }
        for r in &mut self.rows {
            if shift >= cap {
                r.fill(0);
            } else {
                r.rotate_left(shift);
                r[cap - shift..].fill(0);
            }
        }
        self.floor = new_floor;
    }

    /// Buffers one windowed packet; returns whether it was innovative.
    ///
    /// Packets entirely below the floor are dropped (`Ok(false)`); a
    /// packet reaching past `floor + capacity` slides the floor forward
    /// (the stream has moved on — old rows that cannot follow are
    /// evicted).
    ///
    /// # Errors
    ///
    /// [`CodecError::PayloadSize`] / [`CodecError::CoefficientCount`] on
    /// shape mismatches.
    pub fn absorb(
        &mut self,
        base: u64,
        coefficients: &[u8],
        payload: &[u8],
    ) -> Result<bool, CodecError> {
        let cap = self.config.capacity();
        if payload.len() != self.config.symbol_size() {
            return Err(CodecError::PayloadSize {
                expected: self.config.symbol_size(),
                actual: payload.len(),
            });
        }
        if coefficients.is_empty() || coefficients.len() > WindowPacket::MAX_WIDTH {
            return Err(CodecError::CoefficientCount {
                expected: cap,
                actual: coefficients.len(),
            });
        }
        self.packets_in += 1;
        let Some(last) = coefficients.iter().rposition(|&c| c != 0) else {
            return Ok(false);
        };
        let top = base + last as u64; // highest referenced column
        if top < self.floor {
            return Ok(false); // entirely stale
        }
        if self.rows.is_empty() {
            // First live packet pins the buffer to the stream position.
            self.floor = self.floor.max(base);
        }
        if top >= self.floor + cap as u64 {
            self.slide_to(top + 1 - cap as u64);
        }
        if base < self.floor {
            // Partially stale: references evicted columns we cannot
            // represent — drop rather than corrupt the buffer.
            if coefficients
                .iter()
                .enumerate()
                .any(|(i, &c)| c != 0 && base + (i as u64) < self.floor)
            {
                return Ok(false);
            }
        }
        // Align onto the relative columns and eliminate triangularly.
        self.coeff_scratch.fill(0);
        self.data_scratch.copy_from_slice(payload);
        for (i, &c) in coefficients.iter().enumerate() {
            if c != 0 {
                let rel = (base + i as u64 - self.floor) as usize;
                self.coeff_scratch[rel] = c;
            }
        }
        for row in 0..self.rows.len() {
            let lead = self.rows[row]
                .iter()
                .position(|&c| c != 0)
                .expect("buffered rows are nonzero");
            let factor = self.coeff_scratch[lead];
            if factor != 0 {
                // Leading entries are normalized to 1 on insert.
                bulk::mul_add_slice(&mut self.coeff_scratch, &self.rows[row], factor);
                bulk::mul_add_slice(&mut self.data_scratch, &self.payloads[row], factor);
            }
        }
        let Some(lead) = self.coeff_scratch.iter().position(|&c| c != 0) else {
            return Ok(false);
        };
        let inv = Gf256::new(self.coeff_scratch[lead]).inv().value();
        bulk::scale_slice(&mut self.coeff_scratch, inv);
        bulk::scale_slice(&mut self.data_scratch, inv);
        self.rows.push(self.coeff_scratch.clone());
        self.payloads.push(self.data_scratch.clone());
        let mut i = self.rows.len() - 1;
        while i > 0 && leading(&self.rows[i]) < leading(&self.rows[i - 1]) {
            self.rows.swap(i, i - 1);
            self.payloads.swap(i, i - 1);
            i -= 1;
        }
        Ok(true)
    }

    /// Emits a fresh random combination of the buffered rows as a
    /// windowed packet (buffers from `pool`; allocation-free once warm).
    ///
    /// # Errors
    ///
    /// [`CodecError::EmptyRecoder`] if nothing is buffered.
    pub fn recode_into<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        pool: &mut PayloadPool,
    ) -> Result<WindowPacket, CodecError> {
        if self.rows.is_empty() {
            return Err(CodecError::EmptyRecoder);
        }
        let cap = self.config.capacity();
        self.weights_scratch.resize(self.rows.len(), 0);
        loop {
            rng.fill(&mut self.weights_scratch[..]);
            if self.weights_scratch.iter().any(|&w| w != 0) {
                break;
            }
        }
        let mut combined = pool.checkout_zeroed(cap);
        let mut payload = pool.checkout_zeroed(self.config.symbol_size());
        for (i, &w) in self.weights_scratch.iter().enumerate() {
            bulk::mul_add_slice(&mut combined, &self.rows[i], w);
            bulk::mul_add_slice(&mut payload, &self.payloads[i], w);
        }
        // Trim to the populated span so the wire width stays minimal.
        let width = combined.iter().rposition(|&c| c != 0).map_or(1, |p| p + 1);
        combined.resize(width, 0);
        self.packets_out += 1;
        Ok(WindowPacket {
            session: self.session,
            base: self.floor,
            coefficients: combined.freeze(),
            payload: payload.freeze(),
        })
    }
}

fn leading(row: &[u8]) -> usize {
    row.iter().position(|&c| c != 0).unwrap_or(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> WindowConfig {
        WindowConfig::new(16, 4).unwrap()
    }

    fn symbol(tag: u8) -> Vec<u8> {
        (0..16).map(|i| tag.wrapping_mul(31) ^ i).collect()
    }

    #[test]
    fn config_rejects_degenerate_layouts() {
        assert!(WindowConfig::new(0, 4).is_err());
        assert!(WindowConfig::new(16, 0).is_err());
        assert!(WindowConfig::new(16, 256).is_err());
        assert!(WindowConfig::new(16, 255).is_ok());
    }

    #[test]
    fn systematic_stream_delivers_in_order() {
        let mut enc = WindowEncoder::new(cfg(), SessionId::new(1));
        let mut dec = WindowDecoder::new(cfg());
        let mut pool = PayloadPool::new();
        for tag in 0..10u8 {
            let idx = enc.push(&symbol(tag)).unwrap();
            let pkt = enc.systematic_packet_pooled(idx, &mut pool).unwrap();
            let out = dec
                .receive(pkt.base, &pkt.coefficients, &pkt.payload)
                .unwrap();
            match out {
                WindowOutcome::Delivered { first, payloads } => {
                    assert_eq!(first, idx);
                    assert_eq!(payloads, vec![symbol(tag)]);
                }
                other => panic!("unexpected {other:?}"),
            }
            enc.handle_ack(dec.cumulative_ack());
        }
        assert_eq!(dec.delivered(), 10);
        assert_eq!(enc.live(), 0);
    }

    #[test]
    fn window_full_blocks_push_until_ack() {
        let mut enc = WindowEncoder::new(cfg(), SessionId::new(1));
        for tag in 0..4u8 {
            enc.push(&symbol(tag)).unwrap();
        }
        assert!(matches!(
            enc.push(&symbol(9)),
            Err(CodecError::WindowFull { capacity: 4 })
        ));
        enc.handle_ack(2);
        assert_eq!(enc.base(), 2);
        assert!(enc.push(&symbol(9)).is_ok());
    }

    #[test]
    fn repair_burst_recovers_a_lost_symbol() {
        let mut enc = WindowEncoder::new(cfg(), SessionId::new(1));
        let mut dec = WindowDecoder::new(cfg());
        let mut pool = PayloadPool::new();
        let mut rng = StdRng::seed_from_u64(5);
        // Push 3 symbols; drop the middle systematic packet.
        for tag in 0..3u8 {
            let idx = enc.push(&symbol(tag)).unwrap();
            if tag == 1 {
                continue; // lost on the wire
            }
            let pkt = enc.systematic_packet_pooled(idx, &mut pool).unwrap();
            dec.receive(pkt.base, &pkt.coefficients, &pkt.payload)
                .unwrap();
        }
        // Symbol 0 delivered; 2 is held back behind the gap.
        assert_eq!(dec.delivered(), 1);
        assert_eq!(dec.pending_rank(), 1);
        // One repair combination from the live window closes the gap and
        // releases both pending symbols in order.
        let mut burst = Vec::new();
        enc.repair_burst_into(1, &mut rng, &mut pool, &mut burst)
            .unwrap();
        let out = dec
            .receive(burst[0].base, &burst[0].coefficients, &burst[0].payload)
            .unwrap();
        match out {
            WindowOutcome::Delivered { first, payloads } => {
                assert_eq!(first, 1);
                assert_eq!(payloads, vec![symbol(1), symbol(2)]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(dec.delivered(), 3);
    }

    #[test]
    fn late_duplicates_are_stale_or_redundant_not_corrupting() {
        let mut enc = WindowEncoder::new(cfg(), SessionId::new(1));
        let mut dec = WindowDecoder::new(cfg());
        let mut pool = PayloadPool::new();
        let mut kept = Vec::new();
        for tag in 0..6u8 {
            let idx = enc.push(&symbol(tag)).unwrap();
            let pkt = enc.systematic_packet_pooled(idx, &mut pool).unwrap();
            kept.push(pkt.clone());
            dec.receive(pkt.base, &pkt.coefficients, &pkt.payload)
                .unwrap();
            enc.handle_ack(dec.cumulative_ack());
        }
        // Replaying a recent packet: its symbol is within the retained
        // history, so it reduces to nothing.
        let recent = &kept[4];
        assert_eq!(
            dec.receive(recent.base, &recent.coefficients, &recent.payload)
                .unwrap(),
            WindowOutcome::Redundant
        );
        // Push the history window far past symbol 0, then replay it:
        // only referenced columns older than the lookback are Stale.
        for tag in 6..12u8 {
            let idx = enc.push(&symbol(tag)).unwrap();
            let pkt = enc.systematic_packet_pooled(idx, &mut pool).unwrap();
            dec.receive(pkt.base, &pkt.coefficients, &pkt.payload)
                .unwrap();
            enc.handle_ack(dec.cumulative_ack());
        }
        let ancient = &kept[0];
        assert_eq!(
            dec.receive(ancient.base, &ancient.coefficients, &ancient.payload)
                .unwrap(),
            WindowOutcome::Stale
        );
        assert_eq!(dec.delivered(), 12);
    }

    #[test]
    fn recoder_mixes_packets_with_different_bases() {
        let mut enc = WindowEncoder::new(cfg(), SessionId::new(2));
        let mut rec = WindowRecoder::new(cfg(), SessionId::new(2));
        let mut dec = WindowDecoder::new(cfg());
        let mut pool = PayloadPool::new();
        let mut rng = StdRng::seed_from_u64(11);
        // Two systematic packets with different bases land in the relay.
        for tag in 0..2u8 {
            let idx = enc.push(&symbol(tag)).unwrap();
            let pkt = enc.systematic_packet_pooled(idx, &mut pool).unwrap();
            assert!(rec
                .absorb(pkt.base, &pkt.coefficients, &pkt.payload)
                .unwrap());
        }
        assert_eq!(rec.rank(), 2);
        // Recoded combinations of both still decode at the end host.
        let mut steps = 0;
        while dec.delivered() < 2 {
            let out = rec.recode_into(&mut rng, &mut pool).unwrap();
            dec.receive(out.base, &out.coefficients, &out.payload)
                .unwrap();
            steps += 1;
            assert!(steps < 32, "windowed recode failed to converge");
        }
        assert_eq!(dec.delivered(), 2);
    }

    #[test]
    fn recoder_slides_with_the_stream() {
        let big = WindowConfig::new(16, 4).unwrap();
        let mut rec = WindowRecoder::new(big, SessionId::new(3));
        let mut pool = PayloadPool::new();
        // Absorb unit packets far apart: the buffer follows the stream,
        // evicting rows that fall behind.
        for idx in [0u64, 1, 9, 10] {
            rec.absorb(idx, &[1u8], &symbol(idx as u8)).unwrap();
        }
        assert!(rec.floor() >= 7, "floor slid forward, got {}", rec.floor());
        assert!(rec.rank() >= 2);
        // Acks slide the floor too.
        rec.handle_ack(11);
        assert_eq!(rec.floor(), 11);
        assert_eq!(rec.rank(), 0);
        assert!(matches!(
            rec.recode_into(&mut StdRng::seed_from_u64(1), &mut pool),
            Err(CodecError::EmptyRecoder)
        ));
    }
}
