//! Generation/block layout configuration.

use crate::error::CodecError;

/// Layout of one generation: how source bytes are divided into blocks.
///
/// The paper's production setting is 1460-byte blocks and 4 blocks per
/// generation, chosen so that block + NC header (12 bytes at g = 4) + UDP
/// header (8) + IP header (20) exactly fill a 1500-byte MTU, and so that
/// throughput peaks (Fig. 4) while decode latency stays low.
///
/// # Examples
///
/// ```
/// use ncvnf_rlnc::GenerationConfig;
/// let cfg = GenerationConfig::paper_default();
/// assert_eq!(cfg.block_size(), 1460);
/// assert_eq!(cfg.blocks_per_generation(), 4);
/// assert_eq!(cfg.generation_payload(), 5840);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GenerationConfig {
    block_size: usize,
    blocks_per_generation: usize,
}

impl GenerationConfig {
    /// Maximum supported generation size. GF(2^8) coefficients are one byte
    /// each; beyond this the header overhead and decoding cost are
    /// impractical (the paper's Fig. 4 shows throughput plunging past 16).
    pub const MAX_GENERATION_SIZE: usize = 1024;

    /// Creates a layout with the given block size (bytes) and generation
    /// size (blocks).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidConfig`] if either parameter is zero or
    /// the generation size exceeds [`Self::MAX_GENERATION_SIZE`].
    pub fn new(block_size: usize, blocks_per_generation: usize) -> Result<Self, CodecError> {
        if block_size == 0 {
            return Err(CodecError::InvalidConfig {
                reason: "block size must be positive".into(),
            });
        }
        if blocks_per_generation == 0 {
            return Err(CodecError::InvalidConfig {
                reason: "generation size must be positive".into(),
            });
        }
        if blocks_per_generation > Self::MAX_GENERATION_SIZE {
            return Err(CodecError::InvalidConfig {
                reason: format!(
                    "generation size {blocks_per_generation} exceeds maximum {}",
                    Self::MAX_GENERATION_SIZE
                ),
            });
        }
        Ok(GenerationConfig {
            block_size,
            blocks_per_generation,
        })
    }

    /// The paper's deployed configuration: 1460-byte blocks, 4 per
    /// generation.
    pub fn paper_default() -> Self {
        GenerationConfig {
            block_size: 1460,
            blocks_per_generation: 4,
        }
    }

    /// Bytes per block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Blocks per generation (the generation size `g`).
    pub fn blocks_per_generation(&self) -> usize {
        self.blocks_per_generation
    }

    /// Source bytes carried by one full generation.
    pub fn generation_payload(&self) -> usize {
        self.block_size * self.blocks_per_generation
    }

    /// Size of the NC header for this layout (fixed prefix plus one
    /// GF(2^8) coefficient per block).
    pub fn header_len(&self) -> usize {
        crate::header::NcHeader::FIXED_LEN + self.blocks_per_generation
    }

    /// Total on-wire bytes for one coded packet (header + one block).
    pub fn packet_len(&self) -> usize {
        self.header_len() + self.block_size
    }

    /// Fraction of each packet that is useful payload, `block /
    /// (header + block)` — the coefficient-overhead component of goodput.
    pub fn payload_efficiency(&self) -> f64 {
        self.block_size as f64 / self.packet_len() as f64
    }
}

impl Default for GenerationConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// How an encoder draws coefficient vectors for a generation's packets.
///
/// The mode trades per-packet coding cost against per-packet innovation:
/// dense combinations are maximally innovative (each repair packet is
/// useful with probability ≈ 1 − 1/255 per missing rank) but cost
/// `g` multiply-accumulates per packet; systematic and sparse packets
/// cost a fraction of that, at a small innovation penalty that only
/// matters under heavy loss.
///
/// # Examples
///
/// ```
/// use ncvnf_rlnc::CodingMode;
/// // A g=32 generation with the default sparse density: each repair
/// // packet combines 8 of the 32 blocks instead of all of them.
/// let mode = CodingMode::sparse_default(32);
/// assert_eq!(mode, CodingMode::Sparse { nonzeros: 8 });
/// assert_eq!(mode.repair_nonzeros(32), 8);
/// assert_eq!(CodingMode::Dense.repair_nonzeros(32), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CodingMode {
    /// Every packet is a uniformly random combination of all `g` blocks.
    #[default]
    Dense,
    /// The first `g` packets are the source blocks verbatim (unit
    /// coefficient vectors); repair packets beyond that are dense.
    Systematic,
    /// Systematic first pass, then repair packets that combine only
    /// `nonzeros` randomly chosen blocks — O(d·block) instead of
    /// O(g·block) per repair packet.
    Sparse {
        /// Number of nonzero coefficients per repair packet (the density
        /// knob `d`); clamped to `1..=g` at draw time.
        nonzeros: usize,
    },
}

impl CodingMode {
    /// The default sparse density for generation size `g`: `g/4`, at
    /// least 2 — wide enough that a handful of repair packets covers any
    /// loss pattern, narrow enough that repair cost stays ~4x below
    /// dense.
    pub fn sparse_default(g: usize) -> Self {
        let cap = g.max(1);
        CodingMode::Sparse {
            nonzeros: if cap < 2 { cap } else { (g / 4).clamp(2, cap) },
        }
    }

    /// Short lowercase name used in benchmark output and docs
    /// (`dense` / `systematic` / `sparse`).
    pub fn name(&self) -> &'static str {
        match self {
            CodingMode::Dense => "dense",
            CodingMode::Systematic => "systematic",
            CodingMode::Sparse { .. } => "sparse",
        }
    }

    /// Whether the first `g` packets of a generation are emitted
    /// verbatim (unit coefficient vectors).
    pub fn is_systematic_first(&self) -> bool {
        !matches!(self, CodingMode::Dense)
    }

    /// Nonzero coefficients a repair packet carries at generation size
    /// `g`: `g` for dense/systematic repair, the clamped density for
    /// sparse.
    pub fn repair_nonzeros(&self, g: usize) -> usize {
        match self {
            CodingMode::Dense | CodingMode::Systematic => g,
            CodingMode::Sparse { nonzeros } => (*nonzeros).clamp(1, g.max(1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_fits_mtu() {
        let cfg = GenerationConfig::paper_default();
        // NC header (12 bytes with 4 blocks) + UDP (8) + IP (20) + block
        // (1460) = 1500 = Ethernet MTU, as derived in Sec. III-B.
        assert_eq!(cfg.header_len(), 12);
        assert_eq!(cfg.packet_len() + 8 + 20, 1500);
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(GenerationConfig::new(0, 4).is_err());
        assert!(GenerationConfig::new(1460, 0).is_err());
        assert!(GenerationConfig::new(1460, 4096).is_err());
        assert!(GenerationConfig::new(1, 1).is_ok());
    }

    #[test]
    fn efficiency_decreases_with_generation_size() {
        let small = GenerationConfig::new(1460, 4).unwrap();
        let large = GenerationConfig::new(1460, 128).unwrap();
        assert!(small.payload_efficiency() > large.payload_efficiency());
    }
}
