//! Generation/block layout configuration.

use crate::error::CodecError;

/// Layout of one generation: how source bytes are divided into blocks.
///
/// The paper's production setting is 1460-byte blocks and 4 blocks per
/// generation, chosen so that block + NC header (12 bytes at g = 4) + UDP
/// header (8) + IP header (20) exactly fill a 1500-byte MTU, and so that
/// throughput peaks (Fig. 4) while decode latency stays low.
///
/// # Examples
///
/// ```
/// use ncvnf_rlnc::GenerationConfig;
/// let cfg = GenerationConfig::paper_default();
/// assert_eq!(cfg.block_size(), 1460);
/// assert_eq!(cfg.blocks_per_generation(), 4);
/// assert_eq!(cfg.generation_payload(), 5840);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GenerationConfig {
    block_size: usize,
    blocks_per_generation: usize,
}

impl GenerationConfig {
    /// Maximum supported generation size. GF(2^8) coefficients are one byte
    /// each; beyond this the header overhead and decoding cost are
    /// impractical (the paper's Fig. 4 shows throughput plunging past 16).
    pub const MAX_GENERATION_SIZE: usize = 1024;

    /// Creates a layout with the given block size (bytes) and generation
    /// size (blocks).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidConfig`] if either parameter is zero or
    /// the generation size exceeds [`Self::MAX_GENERATION_SIZE`].
    pub fn new(block_size: usize, blocks_per_generation: usize) -> Result<Self, CodecError> {
        if block_size == 0 {
            return Err(CodecError::InvalidConfig {
                reason: "block size must be positive".into(),
            });
        }
        if blocks_per_generation == 0 {
            return Err(CodecError::InvalidConfig {
                reason: "generation size must be positive".into(),
            });
        }
        if blocks_per_generation > Self::MAX_GENERATION_SIZE {
            return Err(CodecError::InvalidConfig {
                reason: format!(
                    "generation size {blocks_per_generation} exceeds maximum {}",
                    Self::MAX_GENERATION_SIZE
                ),
            });
        }
        Ok(GenerationConfig {
            block_size,
            blocks_per_generation,
        })
    }

    /// The paper's deployed configuration: 1460-byte blocks, 4 per
    /// generation.
    pub fn paper_default() -> Self {
        GenerationConfig {
            block_size: 1460,
            blocks_per_generation: 4,
        }
    }

    /// Bytes per block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Blocks per generation (the generation size `g`).
    pub fn blocks_per_generation(&self) -> usize {
        self.blocks_per_generation
    }

    /// Source bytes carried by one full generation.
    pub fn generation_payload(&self) -> usize {
        self.block_size * self.blocks_per_generation
    }

    /// Size of the NC header for this layout (fixed prefix plus one
    /// GF(2^8) coefficient per block).
    pub fn header_len(&self) -> usize {
        crate::header::NcHeader::FIXED_LEN + self.blocks_per_generation
    }

    /// Total on-wire bytes for one coded packet (header + one block).
    pub fn packet_len(&self) -> usize {
        self.header_len() + self.block_size
    }

    /// Fraction of each packet that is useful payload, `block /
    /// (header + block)` — the coefficient-overhead component of goodput.
    pub fn payload_efficiency(&self) -> f64 {
        self.block_size as f64 / self.packet_len() as f64
    }
}

impl Default for GenerationConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_fits_mtu() {
        let cfg = GenerationConfig::paper_default();
        // NC header (12 bytes with 4 blocks) + UDP (8) + IP (20) + block
        // (1460) = 1500 = Ethernet MTU, as derived in Sec. III-B.
        assert_eq!(cfg.header_len(), 12);
        assert_eq!(cfg.packet_len() + 8 + 20, 1500);
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(GenerationConfig::new(0, 4).is_err());
        assert!(GenerationConfig::new(1460, 0).is_err());
        assert!(GenerationConfig::new(1460, 4096).is_err());
        assert!(GenerationConfig::new(1, 1).is_ok());
    }

    #[test]
    fn efficiency_decreases_with_generation_size() {
        let small = GenerationConfig::new(1460, 4).unwrap();
        let large = GenerationConfig::new(1460, 128).unwrap();
        assert!(small.payload_efficiency() > large.payload_efficiency());
    }
}
