//! Whole-object (file) coding across many generations.
//!
//! The evaluation's workload is "a file transmission application built upon
//! the system": receivers retrieve a multi-megabyte file from the source
//! through coding VNFs. This module frames an arbitrary byte object into
//! generations and reassembles it on the receiver.
//!
//! Framing: an 8-byte big-endian length prefix is prepended to the object,
//! the result is split into generations of `g * block_size` bytes (the last
//! one zero-padded). The prefix lets the decoder strip the padding.

use rand::Rng;

use crate::config::GenerationConfig;
use crate::decoder::{GenerationDecoder, ReceiveOutcome};
use crate::encoder::GenerationEncoder;
use crate::error::CodecError;
use crate::header::{CodedPacket, SessionId};

/// Length-prefix framing size.
const LEN_PREFIX: usize = 8;

/// Encodes a byte object into coded packets spanning many generations.
#[derive(Debug, Clone)]
pub struct ObjectEncoder {
    config: GenerationConfig,
    session: SessionId,
    encoders: Vec<GenerationEncoder>,
}

impl ObjectEncoder {
    /// Frames `object` and prepares one [`GenerationEncoder`] per
    /// generation.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::PayloadSize`] if `object` is empty.
    pub fn new(
        config: GenerationConfig,
        session: SessionId,
        object: &[u8],
    ) -> Result<Self, CodecError> {
        if object.is_empty() {
            return Err(CodecError::PayloadSize {
                expected: 1,
                actual: 0,
            });
        }
        let mut framed = Vec::with_capacity(LEN_PREFIX + object.len());
        framed.extend_from_slice(&(object.len() as u64).to_be_bytes());
        framed.extend_from_slice(object);
        let per_gen = config.generation_payload();
        let encoders = framed
            .chunks(per_gen)
            .map(|chunk| GenerationEncoder::new(config, chunk))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ObjectEncoder {
            config,
            session,
            encoders,
        })
    }

    /// The layout in use.
    pub fn config(&self) -> GenerationConfig {
        self.config
    }

    /// The session id stamped on emitted packets.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// Number of generations the object spans.
    pub fn generations(&self) -> u64 {
        self.encoders.len() as u64
    }

    /// Emits one randomly coded packet for `generation`.
    ///
    /// # Panics
    ///
    /// Panics if `generation >= self.generations()`.
    pub fn coded_packet<R: Rng + ?Sized>(&self, generation: u64, rng: &mut R) -> CodedPacket {
        let enc = &self.encoders[generation as usize];
        enc.coded_packet(self.session, generation, rng)
    }

    /// Emits systematic packet `index` of `generation`.
    ///
    /// # Panics
    ///
    /// Panics if `generation` or `index` is out of range.
    pub fn systematic_packet(&self, generation: u64, index: usize) -> CodedPacket {
        self.encoders[generation as usize].systematic_packet(self.session, generation, index)
    }
}

/// Reassembles a byte object from coded packets.
#[derive(Debug)]
pub struct ObjectDecoder {
    config: GenerationConfig,
    decoders: Vec<GenerationDecoder>,
    completed: usize,
}

impl ObjectDecoder {
    /// Creates a decoder expecting `generations` generations.
    pub fn new(config: GenerationConfig, generations: u64) -> Self {
        ObjectDecoder {
            config,
            decoders: (0..generations)
                .map(|_| GenerationDecoder::new(config))
                .collect(),
            completed: 0,
        }
    }

    /// Feeds one coded packet.
    ///
    /// Packets for out-of-range generations are counted as redundant (this
    /// happens when the sender pads the tail of a transfer).
    ///
    /// # Errors
    ///
    /// Propagates layout mismatches from the per-generation decoder.
    pub fn receive(&mut self, packet: &CodedPacket) -> Result<ReceiveOutcome, CodecError> {
        let gen = packet.generation() as usize;
        if gen >= self.decoders.len() {
            return Ok(ReceiveOutcome::Redundant);
        }
        let was_complete = self.decoders[gen].is_complete();
        let outcome = self.decoders[gen].receive(packet.coefficients(), packet.payload())?;
        if !was_complete && self.decoders[gen].is_complete() {
            self.completed += 1;
        }
        Ok(outcome)
    }

    /// Generations fully decoded so far.
    pub fn generations_complete(&self) -> usize {
        self.completed
    }

    /// Decoding rank of one generation, or `None` if out of range.
    pub fn generation_rank(&self, generation: u64) -> Option<usize> {
        self.decoders.get(generation as usize).map(|d| d.rank())
    }

    /// Pivot-free columns of one generation (see
    /// [`GenerationDecoder::missing_columns`]).
    pub fn generation_missing_columns(&self, generation: u64) -> Vec<usize> {
        self.decoders
            .get(generation as usize)
            .map(|d| d.missing_columns())
            .unwrap_or_default()
    }

    /// True if `generation` has been fully decoded.
    pub fn generation_complete(&self, generation: u64) -> bool {
        self.decoders
            .get(generation as usize)
            .is_some_and(|d| d.is_complete())
    }

    /// Total generations expected.
    pub fn generations_expected(&self) -> usize {
        self.decoders.len()
    }

    /// True once every generation has been decoded.
    pub fn is_complete(&self) -> bool {
        self.completed == self.decoders.len()
    }

    /// Rank still missing across all generations (how many more innovative
    /// packets are needed in the best case).
    pub fn missing_rank(&self) -> usize {
        self.decoders
            .iter()
            .map(|d| self.config.blocks_per_generation() - d.rank())
            .sum()
    }

    /// Recovers the original object.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::NotDecoded`] if any generation is incomplete.
    pub fn into_object(self) -> Result<Vec<u8>, CodecError> {
        let mut framed = Vec::with_capacity(self.decoders.len() * self.config.generation_payload());
        for d in &self.decoders {
            framed.extend_from_slice(&d.decoded_payload()?);
        }
        if framed.len() < LEN_PREFIX {
            return Err(CodecError::PayloadSize {
                expected: LEN_PREFIX,
                actual: framed.len(),
            });
        }
        let len = u64::from_be_bytes(framed[..LEN_PREFIX].try_into().expect("prefix is 8 bytes"))
            as usize;
        if framed.len() < LEN_PREFIX + len {
            return Err(CodecError::PayloadSize {
                expected: LEN_PREFIX + len,
                actual: framed.len(),
            });
        }
        framed.drain(..LEN_PREFIX);
        framed.truncate(len);
        Ok(framed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> GenerationConfig {
        GenerationConfig::new(16, 4).unwrap()
    }

    #[test]
    fn object_roundtrip_random_packets() {
        let object: Vec<u8> = (0..500u32).map(|i| (i % 251) as u8).collect();
        let enc = ObjectEncoder::new(cfg(), SessionId::new(9), &object).unwrap();
        let mut dec = ObjectDecoder::new(cfg(), enc.generations());
        let mut rng = StdRng::seed_from_u64(31);
        let mut budget = 1000;
        while !dec.is_complete() {
            for g in 0..enc.generations() {
                let pkt = enc.coded_packet(g, &mut rng);
                dec.receive(&pkt).unwrap();
            }
            budget -= 1;
            assert!(budget > 0, "object decode failed to converge");
        }
        assert_eq!(dec.into_object().unwrap(), object);
    }

    #[test]
    fn object_roundtrip_exact_multiple_of_generation() {
        // Length chosen so framed size is NOT an exact generation multiple,
        // plus an exact-multiple case.
        for len in [cfg().generation_payload() - LEN_PREFIX, 100, 1] {
            let object: Vec<u8> = (0..len).map(|i| (i * 3) as u8).collect();
            let enc = ObjectEncoder::new(cfg(), SessionId::new(1), &object).unwrap();
            let mut dec = ObjectDecoder::new(cfg(), enc.generations());
            for g in 0..enc.generations() {
                for i in 0..4 {
                    dec.receive(&enc.systematic_packet(g, i)).unwrap();
                }
            }
            assert_eq!(dec.into_object().unwrap(), object);
        }
    }

    #[test]
    fn empty_object_rejected() {
        assert!(ObjectEncoder::new(cfg(), SessionId::new(1), &[]).is_err());
    }

    #[test]
    fn out_of_range_generation_is_redundant() {
        let enc = ObjectEncoder::new(cfg(), SessionId::new(1), &[1, 2, 3]).unwrap();
        let mut dec = ObjectDecoder::new(cfg(), 0);
        let pkt = enc.systematic_packet(0, 0);
        assert_eq!(dec.receive(&pkt).unwrap(), ReceiveOutcome::Redundant);
    }

    #[test]
    fn missing_rank_counts_down() {
        let object = vec![7u8; 100];
        let enc = ObjectEncoder::new(cfg(), SessionId::new(1), &object).unwrap();
        let mut dec = ObjectDecoder::new(cfg(), enc.generations());
        let total = dec.missing_rank();
        assert_eq!(total, enc.generations() as usize * 4);
        dec.receive(&enc.systematic_packet(0, 0)).unwrap();
        assert_eq!(dec.missing_rank(), total - 1);
    }

    #[test]
    fn incomplete_object_errors() {
        let object = vec![7u8; 100];
        let enc = ObjectEncoder::new(cfg(), SessionId::new(1), &object).unwrap();
        let dec = ObjectDecoder::new(cfg(), enc.generations());
        assert!(matches!(
            dec.into_object(),
            Err(CodecError::NotDecoded { .. })
        ));
    }
}
