//! Redundancy policy: extra coded packets per generation.
//!
//! Two flavours: the paper's *static* NC0/NC1/NC2 policies
//! ([`RedundancyPolicy`]), and an *adaptive* AIMD controller
//! ([`AdaptiveRedundancy`]) that raises the redundancy when receivers
//! NACK undecodable generations and decays it back once the path is
//! clean — "a small number of extra coded packets ... in cases of high
//! packet loss rate, and no extra coded packets if the links are
//! reliable", chosen online instead of configured up front.

/// How many extra coded packets a node emits per generation.
///
/// The paper's robustness experiments (Figs. 8–9) compare NC0 (no
/// redundancy: exactly `g` coded packets per generation), NC1 (one extra)
/// and NC2 (two extra). Redundancy trades bandwidth for loss resilience:
/// "it is desirable to produce a small number of extra coded packets for
/// each generation in cases of high packet loss rate, and no extra coded
/// packets if the links are reliable."
///
/// # Examples
///
/// ```
/// use ncvnf_rlnc::RedundancyPolicy;
/// assert_eq!(RedundancyPolicy::NC1.packets_per_generation(4), 5);
/// assert_eq!(RedundancyPolicy::new(3).extra(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RedundancyPolicy {
    extra: u32,
}

impl RedundancyPolicy {
    /// No redundancy (the paper's NC0).
    pub const NC0: RedundancyPolicy = RedundancyPolicy { extra: 0 };
    /// One extra coded packet per generation (NC1).
    pub const NC1: RedundancyPolicy = RedundancyPolicy { extra: 1 };
    /// Two extra coded packets per generation (NC2).
    pub const NC2: RedundancyPolicy = RedundancyPolicy { extra: 2 };

    /// A policy with `extra` additional coded packets per generation.
    pub const fn new(extra: u32) -> Self {
        RedundancyPolicy { extra }
    }

    /// Extra coded packets per generation.
    pub const fn extra(self) -> u32 {
        self.extra
    }

    /// Total packets emitted per generation of size `g`.
    pub fn packets_per_generation(self, generation_size: usize) -> usize {
        generation_size + self.extra as usize
    }

    /// Bandwidth expansion factor relative to sending only `g` packets.
    pub fn overhead_factor(self, generation_size: usize) -> f64 {
        self.packets_per_generation(generation_size) as f64 / generation_size as f64
    }
}

impl std::fmt::Display for RedundancyPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NC{}", self.extra)
    }
}

/// Tuning of the additive-increase / multiplicative-decrease controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AimdConfig {
    /// Redundancy never falls below this many extra packets (the
    /// configured static policy acts as the floor).
    pub floor: u32,
    /// Redundancy never rises above this many extra packets (bandwidth
    /// expansion must stay bounded even under pathological feedback).
    pub ceiling: u32,
    /// Extra packets added per observed loss event (additive increase).
    pub increase: f64,
    /// Multiplicative factor applied per clean generation (decay toward
    /// the floor); must be in `(0, 1)`.
    pub decay: f64,
}

impl Default for AimdConfig {
    fn default() -> Self {
        AimdConfig {
            floor: 0,
            ceiling: 8,
            increase: 1.0,
            decay: 0.7,
        }
    }
}

/// AIMD redundancy controller for the live data path.
///
/// Each NACK (a generation the receiver could not decode) bumps the
/// working redundancy additively; each ACKed-without-retransmit
/// generation decays it multiplicatively toward the floor.
/// [`policy`](Self::policy) rounds the working value to the
/// [`RedundancyPolicy`] the encoder applies to the *next* generation, so
/// under sustained loss the source sends more coded packets per
/// generation instead of stalling on retransmission round trips.
///
/// # Examples
///
/// ```
/// use ncvnf_rlnc::{AdaptiveRedundancy, AimdConfig};
/// let mut r = AdaptiveRedundancy::new(AimdConfig::default());
/// assert_eq!(r.policy().extra(), 0);
/// r.on_loss(2); // a NACK asking for 2 packets
/// assert!(r.policy().extra() >= 1);
/// for _ in 0..16 {
///     r.on_clean(); // the path recovered
/// }
/// assert_eq!(r.policy().extra(), 0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveRedundancy {
    config: AimdConfig,
    /// Working redundancy in fractional packets.
    extra: f64,
    /// Highest redundancy reached so far (for reporting).
    peak: f64,
}

impl AdaptiveRedundancy {
    /// A controller starting at the configured floor.
    ///
    /// # Panics
    ///
    /// Panics if `config.decay` is outside `(0, 1)`, `config.increase`
    /// is not positive, or the floor exceeds the ceiling.
    pub fn new(config: AimdConfig) -> Self {
        assert!(
            config.decay > 0.0 && config.decay < 1.0,
            "decay must be in (0, 1)"
        );
        assert!(config.increase > 0.0, "increase must be positive");
        assert!(config.floor <= config.ceiling, "floor exceeds ceiling");
        AdaptiveRedundancy {
            config,
            extra: config.floor as f64,
            peak: config.floor as f64,
        }
    }

    /// A controller whose floor is the static `policy` (the live path's
    /// drop-in replacement for a fixed NCr).
    pub fn from_policy(policy: RedundancyPolicy, mut config: AimdConfig) -> Self {
        config.floor = policy.extra();
        config.ceiling = config.ceiling.max(config.floor);
        Self::new(config)
    }

    /// The tuning in effect.
    pub fn config(&self) -> AimdConfig {
        self.config
    }

    /// Current working redundancy in fractional extra packets.
    pub fn current_extra(&self) -> f64 {
        self.extra
    }

    /// Highest working redundancy reached so far.
    pub fn peak_extra(&self) -> f64 {
        self.peak
    }

    /// The policy to apply to the next generation (working value,
    /// rounded to the nearest whole packet).
    pub fn policy(&self) -> RedundancyPolicy {
        RedundancyPolicy::new(self.extra.round() as u32)
    }

    /// Records a loss event: a NACK for `missing` packets (at least one
    /// additive step even when `missing` is 0).
    pub fn on_loss(&mut self, missing: u16) {
        let steps = (missing.max(1) as f64).min(4.0);
        self.extra = (self.extra + self.config.increase * steps).min(self.config.ceiling as f64);
        self.peak = self.peak.max(self.extra);
    }

    /// Records a congestion signal from a downstream relay (a
    /// `Congestion` feedback frame): redundancy is cut multiplicatively
    /// toward the floor — halving the working headroom per signal — so
    /// an overloaded mesh sheds the source's *extra* packets first,
    /// before the relay has to. The TCP-style asymmetry (additive raise
    /// on loss, multiplicative cut on congestion) keeps competing
    /// senders converging instead of oscillating.
    ///
    /// # Examples
    ///
    /// ```
    /// use ncvnf_rlnc::{AdaptiveRedundancy, AimdConfig};
    /// let mut r = AdaptiveRedundancy::new(AimdConfig::default());
    /// r.on_loss(4);
    /// r.on_loss(4);
    /// let before = r.current_extra();
    /// r.on_congestion();
    /// assert!(r.current_extra() <= before / 2.0 + 1e-9);
    /// ```
    pub fn on_congestion(&mut self) {
        let floor = self.config.floor as f64;
        self.extra = (floor + (self.extra - floor) * 0.5).max(floor);
        if self.extra - floor < 1e-6 {
            self.extra = floor;
        }
    }

    /// Records a clean generation (decoded without any retransmission).
    pub fn on_clean(&mut self) {
        let floor = self.config.floor as f64;
        self.extra = (floor + (self.extra - floor) * self.config.decay).max(floor);
        // Geometric decay never *reaches* the floor; snap once the gap is
        // far below packet resolution.
        if self.extra - floor < 1e-6 {
            self.extra = floor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_policies() {
        assert_eq!(RedundancyPolicy::NC0.packets_per_generation(4), 4);
        assert_eq!(RedundancyPolicy::NC1.packets_per_generation(4), 5);
        assert_eq!(RedundancyPolicy::NC2.packets_per_generation(4), 6);
        assert_eq!(RedundancyPolicy::NC2.to_string(), "NC2");
    }

    #[test]
    fn overhead_factor() {
        assert!((RedundancyPolicy::NC1.overhead_factor(4) - 1.25).abs() < 1e-12);
        assert!((RedundancyPolicy::NC0.overhead_factor(4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sustained_loss_raises_redundancy_above_floor() {
        let mut r = AdaptiveRedundancy::new(AimdConfig::default());
        assert_eq!(r.policy(), RedundancyPolicy::NC0);
        for _ in 0..3 {
            r.on_loss(1);
        }
        assert!(r.policy().extra() >= 3, "3 NACKs raise NCr to ≥3");
        assert!(r.peak_extra() >= 3.0);
    }

    #[test]
    fn redundancy_is_capped_at_the_ceiling() {
        let mut r = AdaptiveRedundancy::new(AimdConfig {
            ceiling: 4,
            ..AimdConfig::default()
        });
        for _ in 0..100 {
            r.on_loss(u16::MAX);
        }
        assert_eq!(r.current_extra(), 4.0);
        assert_eq!(r.policy().extra(), 4);
    }

    #[test]
    fn clean_path_decays_back_to_floor_within_bounded_window() {
        let mut r = AdaptiveRedundancy::from_policy(
            RedundancyPolicy::NC1,
            AimdConfig {
                ceiling: 8,
                ..AimdConfig::default()
            },
        );
        assert_eq!(r.config().floor, 1);
        for _ in 0..8 {
            r.on_loss(2);
        }
        assert_eq!(r.current_extra(), 8.0);
        // Geometric decay: (8 - 1) * 0.7^k < 0.5 for k ≥ 8, so at most
        // 8 clean generations return the rounded policy to the floor.
        let mut clean = 0;
        while r.policy().extra() > 1 {
            r.on_clean();
            clean += 1;
            assert!(
                clean <= 8,
                "decay window exceeded: extra={}",
                r.current_extra()
            );
        }
        assert!(clean > 0, "decay takes at least one clean generation");
        // Never undershoots the floor.
        for _ in 0..100 {
            r.on_clean();
        }
        assert_eq!(r.current_extra(), 1.0);
    }

    #[test]
    fn nack_size_scales_increase_but_is_bounded() {
        let mut small = AdaptiveRedundancy::new(AimdConfig::default());
        let mut big = AdaptiveRedundancy::new(AimdConfig::default());
        small.on_loss(1);
        big.on_loss(4);
        assert!(big.current_extra() > small.current_extra());
        // A pathological NACK cannot blow past 4 additive steps at once.
        let mut huge = AdaptiveRedundancy::new(AimdConfig::default());
        huge.on_loss(u16::MAX);
        assert_eq!(huge.current_extra(), 4.0);
    }

    #[test]
    fn congestion_cuts_multiplicatively_and_respects_floor() {
        let mut r = AdaptiveRedundancy::from_policy(
            RedundancyPolicy::NC2,
            AimdConfig {
                ceiling: 8,
                ..AimdConfig::default()
            },
        );
        for _ in 0..8 {
            r.on_loss(2);
        }
        assert_eq!(r.current_extra(), 8.0);
        r.on_congestion();
        assert_eq!(r.current_extra(), 5.0, "floor 2 + (8-2)/2");
        for _ in 0..64 {
            r.on_congestion();
        }
        assert_eq!(r.current_extra(), 2.0, "never undershoots the floor");
        assert_eq!(r.peak_extra(), 8.0, "peak is unaffected by the cut");
    }

    #[test]
    #[should_panic(expected = "decay must be in (0, 1)")]
    fn invalid_decay_panics() {
        let _ = AdaptiveRedundancy::new(AimdConfig {
            decay: 1.0,
            ..AimdConfig::default()
        });
    }
}
