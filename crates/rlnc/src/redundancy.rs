//! Redundancy policy: extra coded packets per generation.

/// How many extra coded packets a node emits per generation.
///
/// The paper's robustness experiments (Figs. 8–9) compare NC0 (no
/// redundancy: exactly `g` coded packets per generation), NC1 (one extra)
/// and NC2 (two extra). Redundancy trades bandwidth for loss resilience:
/// "it is desirable to produce a small number of extra coded packets for
/// each generation in cases of high packet loss rate, and no extra coded
/// packets if the links are reliable."
///
/// # Examples
///
/// ```
/// use ncvnf_rlnc::RedundancyPolicy;
/// assert_eq!(RedundancyPolicy::NC1.packets_per_generation(4), 5);
/// assert_eq!(RedundancyPolicy::new(3).extra(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RedundancyPolicy {
    extra: u32,
}

impl RedundancyPolicy {
    /// No redundancy (the paper's NC0).
    pub const NC0: RedundancyPolicy = RedundancyPolicy { extra: 0 };
    /// One extra coded packet per generation (NC1).
    pub const NC1: RedundancyPolicy = RedundancyPolicy { extra: 1 };
    /// Two extra coded packets per generation (NC2).
    pub const NC2: RedundancyPolicy = RedundancyPolicy { extra: 2 };

    /// A policy with `extra` additional coded packets per generation.
    pub const fn new(extra: u32) -> Self {
        RedundancyPolicy { extra }
    }

    /// Extra coded packets per generation.
    pub const fn extra(self) -> u32 {
        self.extra
    }

    /// Total packets emitted per generation of size `g`.
    pub fn packets_per_generation(self, generation_size: usize) -> usize {
        generation_size + self.extra as usize
    }

    /// Bandwidth expansion factor relative to sending only `g` packets.
    pub fn overhead_factor(self, generation_size: usize) -> f64 {
        self.packets_per_generation(generation_size) as f64 / generation_size as f64
    }
}

impl std::fmt::Display for RedundancyPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NC{}", self.extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_policies() {
        assert_eq!(RedundancyPolicy::NC0.packets_per_generation(4), 4);
        assert_eq!(RedundancyPolicy::NC1.packets_per_generation(4), 5);
        assert_eq!(RedundancyPolicy::NC2.packets_per_generation(4), 6);
        assert_eq!(RedundancyPolicy::NC2.to_string(), "NC2");
    }

    #[test]
    fn overhead_factor() {
        assert!((RedundancyPolicy::NC1.overhead_factor(4) - 1.25).abs() < 1e-12);
        assert!((RedundancyPolicy::NC0.overhead_factor(4) - 1.0).abs() < 1e-12);
    }
}
