//! Incremental rank tracking over GF(2^8) coefficient vectors.
//!
//! A source that draws coding coefficients at random occasionally draws a
//! vector that is linearly dependent on what it already sent — for g = 4
//! over GF(2^8) roughly one generation in 250 ends up singular when exactly
//! `g` packets are sent. [`RankTracker`] lets the source (or any sender)
//! check each candidate coefficient vector for innovation *before* emitting
//! it, so a loss-free burst of `g` packets always decodes.
//!
//! The tracker keeps only the coefficient rows, reduced to row-echelon form,
//! mirroring the elimination the decoder performs — no payloads, so the cost
//! per check is O(g^2) byte operations.

use ncvnf_gf256::{Field, Gf256};

/// Tracks the rank of a growing set of GF(2^8) coefficient vectors.
#[derive(Debug, Clone)]
pub struct RankTracker {
    generation_size: usize,
    /// Rows in echelon form, sorted by leading index; all leading entries 1.
    rows: Vec<Vec<u8>>,
    scratch: Vec<u8>,
}

impl RankTracker {
    /// A tracker for coefficient vectors of length `generation_size`.
    pub fn new(generation_size: usize) -> Self {
        Self {
            generation_size,
            rows: Vec::with_capacity(generation_size),
            scratch: vec![0u8; generation_size],
        }
    }

    /// Current rank of the absorbed set.
    pub fn rank(&self) -> usize {
        self.rows.len()
    }

    /// True once the absorbed set spans the whole generation.
    pub fn is_full(&self) -> bool {
        self.rows.len() == self.generation_size
    }

    /// Forget everything; ready for the next generation.
    pub fn reset(&mut self) {
        self.rows.clear();
    }

    /// Returns whether `coefficients` would increase the rank, without
    /// absorbing it.
    pub fn is_innovative(&mut self, coefficients: &[u8]) -> bool {
        !self.is_unit_duplicate(coefficients) && self.reduce(coefficients).is_some()
    }

    /// Absorb a coefficient vector; returns `true` if it increased the rank.
    pub fn absorb(&mut self, coefficients: &[u8]) -> bool {
        if self.is_unit_duplicate(coefficients) {
            return false;
        }
        match self.reduce(coefficients) {
            Some(lead) => {
                let pivot = self.scratch[lead];
                let inv = (Gf256::ONE / Gf256::new(pivot)).value();
                let row: Vec<u8> = self
                    .scratch
                    .iter()
                    .map(|&v| (Gf256::new(v) * Gf256::new(inv)).value())
                    .collect();
                let pos = self
                    .rows
                    .partition_point(|r| leading_index(r).unwrap_or(usize::MAX) < lead);
                self.rows.insert(pos, row);
                true
            }
            None => false,
        }
    }

    /// Fast rejection for duplicate systematic vectors: a single-nonzero
    /// vector whose column is already covered by a stored *unit* row is a
    /// scalar multiple of it — no elimination pass or scratch-row work
    /// needed. (Verbatim source packets arriving twice are the common
    /// case under systematic retransmission.)
    fn is_unit_duplicate(&self, coefficients: &[u8]) -> bool {
        assert_eq!(
            coefficients.len(),
            self.generation_size,
            "coefficient vector length must match the generation size"
        );
        let mut nonzero = coefficients.iter().enumerate().filter(|(_, &c)| c != 0);
        let Some((col, _)) = nonzero.next() else {
            return false;
        };
        if nonzero.next().is_some() {
            return false;
        }
        // Rows are sorted by leading index; a stored row leading at `col`
        // is a unit row iff nothing follows the (normalized) pivot.
        let pos = self
            .rows
            .partition_point(|r| leading_index(r).unwrap_or(usize::MAX) < col);
        matches!(
            self.rows.get(pos),
            Some(row) if leading_index(row) == Some(col)
                && row[col + 1..].iter().all(|&v| v == 0)
        )
    }

    /// Eliminate `coefficients` against the stored rows into `self.scratch`;
    /// returns the leading index of the residual, or `None` if it reduced to
    /// zero (i.e. the vector is dependent).
    fn reduce(&mut self, coefficients: &[u8]) -> Option<usize> {
        assert_eq!(
            coefficients.len(),
            self.generation_size,
            "coefficient vector length must match the generation size"
        );
        self.scratch.copy_from_slice(coefficients);
        for row in &self.rows {
            let lead = leading_index(row).expect("stored rows are nonzero");
            let factor = self.scratch[lead];
            if factor != 0 {
                for (s, &r) in self.scratch.iter_mut().zip(row.iter()) {
                    *s = (Gf256::new(*s) + Gf256::new(factor) * Gf256::new(r)).value();
                }
            }
        }
        leading_index(&self.scratch)
    }
}

fn leading_index(row: &[u8]) -> Option<usize> {
    row.iter().position(|&v| v != 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_vectors_raise_rank() {
        let mut t = RankTracker::new(4);
        assert!(t.absorb(&[1, 0, 0, 0]));
        assert!(t.absorb(&[0, 2, 0, 0]));
        assert!(t.absorb(&[1, 2, 3, 0]));
        assert_eq!(t.rank(), 3);
        assert!(!t.is_full());
        assert!(t.absorb(&[5, 6, 7, 8]));
        assert!(t.is_full());
    }

    #[test]
    fn dependent_vector_is_rejected() {
        let mut t = RankTracker::new(3);
        assert!(t.absorb(&[1, 2, 3]));
        assert!(t.absorb(&[0, 1, 1]));
        // 1*[1,2,3] + 2*[0,1,1] over GF(2^8): addition is XOR.
        let dep = [1u8, 2 ^ 2, 3 ^ 2];
        assert!(!t.is_innovative(&dep));
        assert!(!t.absorb(&dep));
        assert_eq!(t.rank(), 2);
    }

    #[test]
    fn zero_vector_is_never_innovative() {
        let mut t = RankTracker::new(4);
        assert!(!t.is_innovative(&[0, 0, 0, 0]));
        assert!(!t.absorb(&[0, 0, 0, 0]));
        assert_eq!(t.rank(), 0);
    }

    #[test]
    fn is_innovative_does_not_absorb() {
        let mut t = RankTracker::new(2);
        assert!(t.is_innovative(&[1, 1]));
        assert_eq!(t.rank(), 0);
        assert!(t.absorb(&[1, 1]));
        assert!(t.is_innovative(&[1, 0]));
        assert_eq!(t.rank(), 1);
    }

    #[test]
    fn duplicate_systematic_vectors_are_rejected_without_rank_cost() {
        let mut t = RankTracker::new(4);
        assert!(t.absorb(&[0, 0, 1, 0]));
        // Verbatim duplicate and scalar multiple of a held unit row:
        // rejected by the fast path, rank unchanged.
        assert!(!t.is_innovative(&[0, 0, 1, 0]));
        assert!(!t.absorb(&[0, 0, 1, 0]));
        assert!(!t.absorb(&[0, 0, 7, 0]));
        assert_eq!(t.rank(), 1);
        // A unit vector for a different column is still innovative.
        assert!(t.absorb(&[0, 1, 0, 0]));
        assert_eq!(t.rank(), 2);
    }

    #[test]
    fn unit_vector_against_non_unit_row_is_still_innovative() {
        let mut t = RankTracker::new(4);
        assert!(t.absorb(&[1, 2, 3, 0]));
        // Stored row leads at column 0 but carries trailing mass, so the
        // unit vector e0 is NOT in its span.
        assert!(t.is_innovative(&[1, 0, 0, 0]));
        assert!(t.absorb(&[1, 0, 0, 0]));
        assert_eq!(t.rank(), 2);
    }

    #[test]
    fn reset_clears_state() {
        let mut t = RankTracker::new(2);
        assert!(t.absorb(&[1, 0]));
        assert!(t.absorb(&[0, 1]));
        assert!(t.is_full());
        t.reset();
        assert_eq!(t.rank(), 0);
        assert!(t.is_innovative(&[1, 0]));
    }

    #[test]
    fn random_full_rank_sets_reach_full() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let g = 8;
            let mut t = RankTracker::new(g);
            let mut draws = 0usize;
            while !t.is_full() {
                let mut row = vec![0u8; g];
                rng.fill(&mut row[..]);
                t.absorb(&row);
                draws += 1;
                assert!(draws < 200, "rank should saturate quickly");
            }
        }
    }
}
