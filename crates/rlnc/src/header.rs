//! The NC packet header.
//!
//! The paper inserts a network-coding layer between UDP and the
//! application. Its header carries the session id, the generation id, and
//! the encoding coefficient vector — "a total of 8 bytes plus the length of
//! coefficients". The layout used here:
//!
//! ```text
//! byte 0      magic 0xAC — identifies NC packets (Sec. III-A: each VNF
//!             "checks if a packet has the network coding protocol header")
//! byte 1      protocol version (currently 1)
//! bytes 2-3   session id, big endian
//! bytes 4-7   generation id, big endian
//! bytes 8..   one GF(2^8) coefficient per block in the generation
//! ```

use bytes::{BufMut, Bytes, BytesMut};

use crate::error::HeaderError;

/// Magic byte identifying an NC packet.
pub const NC_MAGIC: u8 = 0xAC;
/// Protocol version encoded in byte 1.
pub const NC_VERSION: u8 = 1;

/// Identifier of a multicast session, assigned by the controller.
///
/// # Examples
///
/// ```
/// use ncvnf_rlnc::SessionId;
/// let s = SessionId::new(7);
/// assert_eq!(u16::from(s), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SessionId(u16);

impl SessionId {
    /// Wraps a raw session number.
    pub const fn new(id: u16) -> Self {
        SessionId(id)
    }

    /// Returns the raw session number.
    pub const fn value(self) -> u16 {
        self.0
    }
}

impl From<u16> for SessionId {
    fn from(id: u16) -> Self {
        SessionId(id)
    }
}

impl From<SessionId> for u16 {
    fn from(id: SessionId) -> Self {
        id.0
    }
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The parsed NC header of a coded packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NcHeader {
    /// Session this packet belongs to.
    pub session: SessionId,
    /// Generation number within the session.
    pub generation: u64,
    /// GF(2^8) encoding coefficients, one per block in the generation.
    ///
    /// Stored as [`Bytes`] so cloning a header (and hence forwarding a
    /// packet to several next hops) bumps a reference count instead of
    /// copying — and so pooled coefficient buffers can be reclaimed via
    /// [`Bytes::try_into_mut`].
    pub coefficients: Bytes,
}

impl NcHeader {
    /// Length of the fixed prefix before the coefficient vector.
    pub const FIXED_LEN: usize = 8;

    /// Total encoded length of this header.
    pub fn encoded_len(&self) -> usize {
        Self::FIXED_LEN + self.coefficients.len()
    }

    /// Serializes the header into `buf`.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u8(NC_MAGIC);
        buf.put_u8(NC_VERSION);
        buf.put_u16(self.session.value());
        buf.put_u32(self.generation as u32);
        buf.put_slice(&self.coefficients);
    }

    /// Parses a header from the start of `data`, given the generation size
    /// (the coefficient count is not self-describing on the wire; like the
    /// paper, both ends learn it from the `NC_SETTINGS` control signal).
    ///
    /// Returns the header and the number of bytes consumed.
    ///
    /// # Errors
    ///
    /// [`HeaderError::BadMagic`] if the packet is not an NC packet;
    /// [`HeaderError::Truncated`] if `data` is too short.
    pub fn parse(data: &[u8], generation_size: usize) -> Result<(Self, usize), HeaderError> {
        let needed = Self::FIXED_LEN + generation_size;
        if data.is_empty() {
            return Err(HeaderError::Truncated {
                needed,
                available: 0,
            });
        }
        if data[0] != NC_MAGIC {
            return Err(HeaderError::BadMagic { found: data[0] });
        }
        if data.len() < needed {
            return Err(HeaderError::Truncated {
                needed,
                available: data.len(),
            });
        }
        let session = SessionId::new(u16::from_be_bytes([data[2], data[3]]));
        let generation = u32::from_be_bytes([data[4], data[5], data[6], data[7]]) as u64;
        let coefficients = Bytes::copy_from_slice(&data[Self::FIXED_LEN..needed]);
        Ok((
            NcHeader {
                session,
                generation,
                coefficients,
            },
            needed,
        ))
    }
}

/// One coded packet: an NC header plus one encoded block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodedPacket {
    header: NcHeader,
    payload: Bytes,
}

impl CodedPacket {
    /// Assembles a packet from its parts.
    pub fn new(header: NcHeader, payload: Bytes) -> Self {
        CodedPacket { header, payload }
    }

    /// The session this packet belongs to.
    pub fn session(&self) -> SessionId {
        self.header.session
    }

    /// The generation number.
    pub fn generation(&self) -> u64 {
        self.header.generation
    }

    /// The encoding coefficient vector.
    pub fn coefficients(&self) -> &[u8] {
        &self.header.coefficients
    }

    /// The encoded block carried by this packet.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Borrows the full header.
    pub fn header(&self) -> &NcHeader {
        &self.header
    }

    /// Decomposes the packet into its header and payload, e.g. so a
    /// [`PayloadPool`](crate::PayloadPool) can reclaim the buffers.
    pub fn into_parts(self) -> (NcHeader, Bytes) {
        (self.header, self.payload)
    }

    /// Serializes header + payload into a single wire buffer.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.header.encoded_len() + self.payload.len());
        self.header.encode_into(&mut buf);
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Parses a wire buffer produced by [`CodedPacket::to_bytes`].
    ///
    /// # Errors
    ///
    /// Propagates header parse failures; the remainder of the buffer after
    /// the header is taken as the payload.
    pub fn from_bytes(data: &[u8], generation_size: usize) -> Result<Self, HeaderError> {
        let (header, consumed) = NcHeader::parse(data, generation_size)?;
        Ok(CodedPacket {
            header,
            payload: Bytes::copy_from_slice(&data[consumed..]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CodedPacket {
        CodedPacket::new(
            NcHeader {
                session: SessionId::new(42),
                generation: 0xDEAD,
                coefficients: Bytes::from(vec![1, 2, 3, 4]),
            },
            Bytes::from_static(b"payload bytes"),
        )
    }

    #[test]
    fn roundtrip() {
        let pkt = sample();
        let wire = pkt.to_bytes();
        assert_eq!(wire.len(), 8 + 4 + 13);
        let back = CodedPacket::from_bytes(&wire, 4).unwrap();
        assert_eq!(back, pkt);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut wire = sample().to_bytes().to_vec();
        wire[0] = 0x00;
        let err = CodedPacket::from_bytes(&wire, 4).unwrap_err();
        assert_eq!(err, HeaderError::BadMagic { found: 0 });
    }

    #[test]
    fn truncated_rejected() {
        let wire = sample().to_bytes();
        let err = CodedPacket::from_bytes(&wire[..6], 4).unwrap_err();
        assert!(matches!(err, HeaderError::Truncated { .. }));
        let err = NcHeader::parse(&[], 4).unwrap_err();
        assert!(matches!(err, HeaderError::Truncated { available: 0, .. }));
    }

    #[test]
    fn header_len_matches_paper() {
        // "8 bytes plus the length of coefficients" — 12 bytes at g = 4.
        let h = sample().header().clone();
        assert_eq!(h.encoded_len(), 12);
    }
}
