//! The NC packet header.
//!
//! The paper inserts a network-coding layer between UDP and the
//! application. Its header carries the session id, the generation id, and
//! the encoding coefficient vector — "a total of 8 bytes plus the length of
//! coefficients". The layout used here:
//!
//! ```text
//! byte 0      magic 0xAC — identifies NC packets (Sec. III-A: each VNF
//!             "checks if a packet has the network coding protocol header")
//! byte 1      protocol version (currently 1)
//! bytes 2-3   session id, big endian
//! bytes 4-7   generation id, big endian
//! bytes 8..   one GF(2^8) coefficient per block in the generation
//! ```
//!
//! # Sliding-window wire kinds
//!
//! Byte 1 doubles as a packet *kind*: the legacy generational layout above
//! carries [`NC_VERSION`] (1) there, and two additional kinds share the
//! same magic byte for finite-window streaming (see
//! [`window`](crate::window) for the codec):
//!
//! ```text
//! windowed data packet (kind 2, NC_KIND_WINDOW):
//! byte 0       magic 0xAC
//! byte 1       kind 2
//! bytes 2-3    session id, big endian
//! bytes 4-11   window base: absolute index of the first symbol the
//!              coefficient vector refers to, big endian
//! byte 12      window width w (1-255): coefficient count; coefficient i
//!              applies to symbol base + i
//! bytes 13..   w GF(2^8) coefficients, then the coded payload
//!
//! window ack/nack frame (kind 3, NC_KIND_WINDOW_ACK), 14 bytes:
//! byte 0       magic 0xAC
//! byte 1       kind 3
//! bytes 2-3    session id, big endian
//! bytes 4-11   cumulative: next symbol index the receiver needs
//!              (everything below it was delivered in order), big endian
//! byte 12      repair packets wanted (0 = pure ack, >0 = NACK burst ask)
//! byte 13      reserved (0)
//! ```
//!
//! Legacy kinds remain decodable: [`NcHeader::parse`] checks only the
//! magic byte, and [`wire_kind`] lets dispatchers classify a datagram
//! before picking a parser — unknown kind bytes classify as legacy, so
//! pre-window peers interoperate unchanged.

use bytes::{BufMut, Bytes, BytesMut};

use crate::error::HeaderError;
use crate::pool::PayloadPool;

/// Magic byte identifying an NC packet.
pub const NC_MAGIC: u8 = 0xAC;
/// Protocol version encoded in byte 1.
pub const NC_VERSION: u8 = 1;
/// Kind byte of a sliding-window data packet.
pub const NC_KIND_WINDOW: u8 = 2;
/// Kind byte of a sliding-window ack/nack frame.
pub const NC_KIND_WINDOW_ACK: u8 = 3;

/// Classification of an NC datagram by its kind byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireKind {
    /// Legacy generational coded packet ([`NcHeader`] layout).
    Generation,
    /// Sliding-window data packet ([`WindowPacket`] layout).
    Window,
    /// Sliding-window ack/nack frame ([`WindowAck`] layout).
    WindowAck,
}

/// Classifies a datagram by magic + kind byte without parsing it.
///
/// `None` means the buffer is not an NC packet at all. Unknown kind
/// bytes classify as [`WireKind::Generation`], matching the legacy
/// parser's behavior of ignoring the version byte.
#[must_use]
pub fn wire_kind(data: &[u8]) -> Option<WireKind> {
    if data.len() < 2 || data[0] != NC_MAGIC {
        return None;
    }
    Some(match data[1] {
        NC_KIND_WINDOW => WireKind::Window,
        NC_KIND_WINDOW_ACK => WireKind::WindowAck,
        _ => WireKind::Generation,
    })
}

/// Identifier of a multicast session, assigned by the controller.
///
/// # Examples
///
/// ```
/// use ncvnf_rlnc::SessionId;
/// let s = SessionId::new(7);
/// assert_eq!(u16::from(s), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SessionId(u16);

impl SessionId {
    /// Wraps a raw session number.
    pub const fn new(id: u16) -> Self {
        SessionId(id)
    }

    /// Returns the raw session number.
    pub const fn value(self) -> u16 {
        self.0
    }
}

impl From<u16> for SessionId {
    fn from(id: u16) -> Self {
        SessionId(id)
    }
}

impl From<SessionId> for u16 {
    fn from(id: SessionId) -> Self {
        id.0
    }
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The parsed NC header of a coded packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NcHeader {
    /// Session this packet belongs to.
    pub session: SessionId,
    /// Generation number within the session.
    pub generation: u64,
    /// GF(2^8) encoding coefficients, one per block in the generation.
    ///
    /// Stored as [`Bytes`] so cloning a header (and hence forwarding a
    /// packet to several next hops) bumps a reference count instead of
    /// copying — and so pooled coefficient buffers can be reclaimed via
    /// [`Bytes::try_into_mut`].
    pub coefficients: Bytes,
}

impl NcHeader {
    /// Length of the fixed prefix before the coefficient vector.
    pub const FIXED_LEN: usize = 8;

    /// Total encoded length of this header.
    pub fn encoded_len(&self) -> usize {
        Self::FIXED_LEN + self.coefficients.len()
    }

    /// Serializes the header into `buf`.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u8(NC_MAGIC);
        buf.put_u8(NC_VERSION);
        buf.put_u16(self.session.value());
        buf.put_u32(self.generation as u32);
        buf.put_slice(&self.coefficients);
    }

    /// Parses a header from the start of `data`, given the generation size
    /// (the coefficient count is not self-describing on the wire; like the
    /// paper, both ends learn it from the `NC_SETTINGS` control signal).
    ///
    /// Returns the header and the number of bytes consumed.
    ///
    /// # Errors
    ///
    /// [`HeaderError::BadMagic`] if the packet is not an NC packet;
    /// [`HeaderError::Truncated`] if `data` is too short.
    pub fn parse(data: &[u8], generation_size: usize) -> Result<(Self, usize), HeaderError> {
        let needed = Self::FIXED_LEN + generation_size;
        if data.is_empty() {
            return Err(HeaderError::Truncated {
                needed,
                available: 0,
            });
        }
        if data[0] != NC_MAGIC {
            return Err(HeaderError::BadMagic { found: data[0] });
        }
        if data.len() < needed {
            return Err(HeaderError::Truncated {
                needed,
                available: data.len(),
            });
        }
        let session = SessionId::new(u16::from_be_bytes([data[2], data[3]]));
        let generation = u32::from_be_bytes([data[4], data[5], data[6], data[7]]) as u64;
        let coefficients = Bytes::copy_from_slice(&data[Self::FIXED_LEN..needed]);
        Ok((
            NcHeader {
                session,
                generation,
                coefficients,
            },
            needed,
        ))
    }

    /// Reads just `(session, generation)` from the fixed prefix, without
    /// knowing the generation size and without touching the heap.
    ///
    /// This is the dispatch peek a sharded relay runs on every ingress
    /// datagram to pick the owning shard before full parsing; `None`
    /// means the datagram is not a (complete) NC packet.
    #[must_use]
    pub fn peek_ids(data: &[u8]) -> Option<(SessionId, u64)> {
        if data.len() < Self::FIXED_LEN || data[0] != NC_MAGIC {
            return None;
        }
        let session = SessionId::new(u16::from_be_bytes([data[2], data[3]]));
        let generation = u32::from_be_bytes([data[4], data[5], data[6], data[7]]) as u64;
        Some((session, generation))
    }
}

/// One coded packet: an NC header plus one encoded block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodedPacket {
    header: NcHeader,
    payload: Bytes,
}

impl CodedPacket {
    /// Assembles a packet from its parts.
    pub fn new(header: NcHeader, payload: Bytes) -> Self {
        CodedPacket { header, payload }
    }

    /// The session this packet belongs to.
    pub fn session(&self) -> SessionId {
        self.header.session
    }

    /// The generation number.
    pub fn generation(&self) -> u64 {
        self.header.generation
    }

    /// The encoding coefficient vector.
    pub fn coefficients(&self) -> &[u8] {
        &self.header.coefficients
    }

    /// The encoded block carried by this packet.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Borrows the full header.
    pub fn header(&self) -> &NcHeader {
        &self.header
    }

    /// Decomposes the packet into its header and payload, e.g. so a
    /// [`PayloadPool`](crate::PayloadPool) can reclaim the buffers.
    pub fn into_parts(self) -> (NcHeader, Bytes) {
        (self.header, self.payload)
    }

    /// Total wire length of this packet (header + payload).
    pub fn wire_len(&self) -> usize {
        self.header.encoded_len() + self.payload.len()
    }

    /// Serializes header + payload into a single wire buffer.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        self.header.encode_into(&mut buf);
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Appends the wire form to `out` (the relay hot path: with a reused
    /// `out` of settled capacity, serialization performs no allocation,
    /// unlike [`to_bytes`](Self::to_bytes) which builds a fresh buffer).
    pub fn write_into(&self, out: &mut Vec<u8>) {
        out.push(NC_MAGIC);
        out.push(NC_VERSION);
        out.extend_from_slice(&self.header.session.value().to_be_bytes());
        out.extend_from_slice(&(self.header.generation as u32).to_be_bytes());
        out.extend_from_slice(&self.header.coefficients);
        out.extend_from_slice(&self.payload);
    }

    /// Parses a wire buffer produced by [`CodedPacket::to_bytes`].
    ///
    /// # Errors
    ///
    /// Propagates header parse failures; the remainder of the buffer after
    /// the header is taken as the payload.
    pub fn from_bytes(data: &[u8], generation_size: usize) -> Result<Self, HeaderError> {
        let (header, consumed) = NcHeader::parse(data, generation_size)?;
        Ok(CodedPacket {
            header,
            payload: Bytes::copy_from_slice(&data[consumed..]),
        })
    }

    /// Like [`from_bytes`](Self::from_bytes), but the coefficient and
    /// payload storage come from `pool` — with a warm pool the ingress
    /// parse copies wire bytes into recycled buffers instead of
    /// allocating two fresh ones per packet. Recycle the packet back into
    /// the pool once processing is done.
    ///
    /// # Errors
    ///
    /// Same conditions as [`from_bytes`](Self::from_bytes).
    pub fn from_bytes_pooled(
        data: &[u8],
        generation_size: usize,
        pool: &mut PayloadPool,
    ) -> Result<Self, HeaderError> {
        Ok(PacketView::parse(data, generation_size)?.to_owned_pooled(pool))
    }
}

/// A zero-copy view of a coded packet still sitting in a receive buffer.
///
/// The relay hot path parses ingress datagrams into a view instead of an
/// owned [`CodedPacket`]: a recoding or decoding VNF only *reads* the
/// coefficients and payload, so copying them into per-packet buffers is
/// wasted work unless the packet itself must travel on verbatim — in
/// which case [`to_owned_pooled`](Self::to_owned_pooled) materializes it
/// from recycled pool storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketView<'a> {
    session: SessionId,
    generation: u64,
    coefficients: &'a [u8],
    payload: &'a [u8],
}

impl<'a> PacketView<'a> {
    /// Parses a wire buffer without copying anything, with the same
    /// validation as [`CodedPacket::from_bytes`].
    ///
    /// # Errors
    ///
    /// [`HeaderError::BadMagic`] if the buffer is not an NC packet;
    /// [`HeaderError::Truncated`] if it is too short.
    pub fn parse(data: &'a [u8], generation_size: usize) -> Result<Self, HeaderError> {
        let needed = NcHeader::FIXED_LEN + generation_size;
        if data.is_empty() {
            return Err(HeaderError::Truncated {
                needed,
                available: 0,
            });
        }
        if data[0] != NC_MAGIC {
            return Err(HeaderError::BadMagic { found: data[0] });
        }
        if data.len() < needed {
            return Err(HeaderError::Truncated {
                needed,
                available: data.len(),
            });
        }
        Ok(PacketView {
            session: SessionId::new(u16::from_be_bytes([data[2], data[3]])),
            generation: u32::from_be_bytes([data[4], data[5], data[6], data[7]]) as u64,
            coefficients: &data[NcHeader::FIXED_LEN..needed],
            payload: &data[needed..],
        })
    }

    /// The session this packet belongs to.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// The generation number.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The encoding coefficient vector.
    pub fn coefficients(&self) -> &'a [u8] {
        self.coefficients
    }

    /// The encoded block carried by this packet.
    pub fn payload(&self) -> &'a [u8] {
        self.payload
    }

    /// Copies the view into an owned packet backed by recycled buffers
    /// from `pool` (recycle it back once sent).
    pub fn to_owned_pooled(&self, pool: &mut PayloadPool) -> CodedPacket {
        CodedPacket {
            header: NcHeader {
                session: self.session,
                generation: self.generation,
                coefficients: pool.checkout_copy(self.coefficients).freeze(),
            },
            payload: pool.checkout_copy(self.payload).freeze(),
        }
    }
}

/// One sliding-window coded packet: a combination of up to 255
/// consecutive stream symbols starting at an absolute `base` index.
///
/// Unlike the generational [`CodedPacket`], the coefficient count is
/// self-describing on the wire (the width byte), so windowed streams
/// need no out-of-band generation-size agreement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowPacket {
    /// Session this packet belongs to.
    pub session: SessionId,
    /// Absolute index of the first symbol the coefficients refer to.
    pub base: u64,
    /// GF(2^8) coefficients; entry `i` applies to symbol `base + i`.
    pub coefficients: Bytes,
    /// The coded payload (one symbol's worth of bytes).
    pub payload: Bytes,
}

impl WindowPacket {
    /// Length of the fixed prefix before the coefficient vector.
    pub const FIXED_LEN: usize = 13;
    /// Maximum coefficient count the width byte can express.
    pub const MAX_WIDTH: usize = 255;

    /// Total wire length of this packet.
    pub fn wire_len(&self) -> usize {
        Self::FIXED_LEN + self.coefficients.len() + self.payload.len()
    }

    /// Appends the wire form to `out` (allocation-free with a reused
    /// buffer, like [`CodedPacket::write_into`]).
    ///
    /// # Panics
    ///
    /// Panics if the coefficient vector is empty or longer than
    /// [`Self::MAX_WIDTH`].
    pub fn write_into(&self, out: &mut Vec<u8>) {
        let w = self.coefficients.len();
        assert!(
            (1..=Self::MAX_WIDTH).contains(&w),
            "window width {w} outside 1..=255"
        );
        out.push(NC_MAGIC);
        out.push(NC_KIND_WINDOW);
        out.extend_from_slice(&self.session.value().to_be_bytes());
        out.extend_from_slice(&self.base.to_be_bytes());
        out.push(w as u8);
        out.extend_from_slice(&self.coefficients);
        out.extend_from_slice(&self.payload);
    }

    /// Serializes the packet into a fresh wire buffer.
    pub fn to_bytes(&self) -> Bytes {
        let mut out = Vec::with_capacity(self.wire_len());
        self.write_into(&mut out);
        Bytes::from(out)
    }

    /// Parses a wire buffer produced by [`WindowPacket::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`HeaderError::BadMagic`] / [`HeaderError::BadKind`] if the buffer
    /// is not a windowed NC packet; [`HeaderError::Truncated`] if it is
    /// too short for its declared width.
    pub fn from_bytes(data: &[u8]) -> Result<Self, HeaderError> {
        let view = WindowPacketView::parse(data)?;
        Ok(WindowPacket {
            session: view.session,
            base: view.base,
            coefficients: Bytes::copy_from_slice(view.coefficients),
            payload: Bytes::copy_from_slice(view.payload),
        })
    }
}

/// A zero-copy view of a [`WindowPacket`] still in a receive buffer
/// (the windowed twin of [`PacketView`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowPacketView<'a> {
    session: SessionId,
    base: u64,
    coefficients: &'a [u8],
    payload: &'a [u8],
}

impl<'a> WindowPacketView<'a> {
    /// Parses a windowed data packet without copying anything.
    ///
    /// # Errors
    ///
    /// Same conditions as [`WindowPacket::from_bytes`].
    pub fn parse(data: &'a [u8]) -> Result<Self, HeaderError> {
        if data.is_empty() {
            return Err(HeaderError::Truncated {
                needed: WindowPacket::FIXED_LEN,
                available: 0,
            });
        }
        if data[0] != NC_MAGIC {
            return Err(HeaderError::BadMagic { found: data[0] });
        }
        if data.len() < WindowPacket::FIXED_LEN {
            return Err(HeaderError::Truncated {
                needed: WindowPacket::FIXED_LEN,
                available: data.len(),
            });
        }
        if data[1] != NC_KIND_WINDOW {
            return Err(HeaderError::BadKind {
                expected: NC_KIND_WINDOW,
                found: data[1],
            });
        }
        let width = data[12] as usize;
        let needed = WindowPacket::FIXED_LEN + width;
        if width == 0 || data.len() < needed {
            return Err(HeaderError::Truncated {
                needed,
                available: data.len(),
            });
        }
        Ok(WindowPacketView {
            session: SessionId::new(u16::from_be_bytes([data[2], data[3]])),
            base: u64::from_be_bytes(data[4..12].try_into().expect("8 bytes")),
            coefficients: &data[WindowPacket::FIXED_LEN..needed],
            payload: &data[needed..],
        })
    }

    /// The session this packet belongs to.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// Absolute index of the first symbol the coefficients refer to.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The coefficient vector (entry `i` applies to symbol `base + i`).
    pub fn coefficients(&self) -> &'a [u8] {
        self.coefficients
    }

    /// The coded payload.
    pub fn payload(&self) -> &'a [u8] {
        self.payload
    }

    /// Copies the view into an owned packet backed by recycled buffers
    /// from `pool` (recycle both buffers once sent).
    pub fn to_owned_pooled(&self, pool: &mut PayloadPool) -> WindowPacket {
        WindowPacket {
            session: self.session,
            base: self.base,
            coefficients: pool.checkout_copy(self.coefficients).freeze(),
            payload: pool.checkout_copy(self.payload).freeze(),
        }
    }
}

/// A sliding-window ack/nack frame: cumulative in-order delivery point
/// plus an optional repair ask (the windowed analogue of the
/// generational feedback NACK, answered from the live window instead of
/// a whole generation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowAck {
    /// Session being acknowledged.
    pub session: SessionId,
    /// Next symbol index the receiver needs: all symbols below it were
    /// delivered in order. The sender slides its window base up to here.
    pub cumulative: u64,
    /// Repair packets the receiver wants (0 = pure ack; >0 turns the
    /// frame into a NACK asking for a burst of fresh combinations).
    pub repair_wanted: u8,
}

impl WindowAck {
    /// Fixed wire length of an ack frame.
    pub const WIRE_LEN: usize = 14;

    /// Serializes the frame.
    pub fn encode(&self) -> [u8; Self::WIRE_LEN] {
        let mut out = [0u8; Self::WIRE_LEN];
        out[0] = NC_MAGIC;
        out[1] = NC_KIND_WINDOW_ACK;
        out[2..4].copy_from_slice(&self.session.value().to_be_bytes());
        out[4..12].copy_from_slice(&self.cumulative.to_be_bytes());
        out[12] = self.repair_wanted;
        out
    }

    /// Parses an ack frame.
    ///
    /// # Errors
    ///
    /// [`HeaderError::BadMagic`] / [`HeaderError::BadKind`] on foreign
    /// bytes; [`HeaderError::Truncated`] if shorter than
    /// [`Self::WIRE_LEN`].
    pub fn parse(data: &[u8]) -> Result<Self, HeaderError> {
        if data.is_empty() {
            return Err(HeaderError::Truncated {
                needed: Self::WIRE_LEN,
                available: 0,
            });
        }
        if data[0] != NC_MAGIC {
            return Err(HeaderError::BadMagic { found: data[0] });
        }
        if data.len() < Self::WIRE_LEN {
            return Err(HeaderError::Truncated {
                needed: Self::WIRE_LEN,
                available: data.len(),
            });
        }
        if data[1] != NC_KIND_WINDOW_ACK {
            return Err(HeaderError::BadKind {
                expected: NC_KIND_WINDOW_ACK,
                found: data[1],
            });
        }
        Ok(WindowAck {
            session: SessionId::new(u16::from_be_bytes([data[2], data[3]])),
            cumulative: u64::from_be_bytes(data[4..12].try_into().expect("8 bytes")),
            repair_wanted: data[12],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CodedPacket {
        CodedPacket::new(
            NcHeader {
                session: SessionId::new(42),
                generation: 0xDEAD,
                coefficients: Bytes::from(vec![1, 2, 3, 4]),
            },
            Bytes::from_static(b"payload bytes"),
        )
    }

    #[test]
    fn roundtrip() {
        let pkt = sample();
        let wire = pkt.to_bytes();
        assert_eq!(wire.len(), 8 + 4 + 13);
        let back = CodedPacket::from_bytes(&wire, 4).unwrap();
        assert_eq!(back, pkt);
    }

    #[test]
    fn pooled_parse_and_write_into_match_allocating_twins() {
        let pkt = sample();
        let wire = pkt.to_bytes();
        let mut pool = PayloadPool::new();
        let back = CodedPacket::from_bytes_pooled(&wire, 4, &mut pool).unwrap();
        assert_eq!(back, pkt);
        let mut out = Vec::new();
        back.write_into(&mut out);
        assert_eq!(&out[..], &wire[..]);
        assert_eq!(out.len(), back.wire_len());
        // The pooled parse's buffers go back to the free list.
        assert_eq!(pool.recycle(back), 2);
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn view_parse_borrows_and_owned_copy_matches() {
        let pkt = sample();
        let wire = pkt.to_bytes();
        let view = PacketView::parse(&wire, 4).unwrap();
        assert_eq!(view.session(), pkt.session());
        assert_eq!(view.generation(), pkt.generation());
        assert_eq!(view.coefficients(), pkt.coefficients());
        assert_eq!(view.payload(), pkt.payload());
        let mut pool = PayloadPool::new();
        let owned = view.to_owned_pooled(&mut pool);
        assert_eq!(owned, pkt);
        assert!(PacketView::parse(&wire[..6], 4).is_err());
        assert!(PacketView::parse(b"\x00junk-not-nc", 4).is_err());
    }

    #[test]
    fn pooled_parse_rejects_bad_input() {
        let mut pool = PayloadPool::new();
        let mut wire = sample().to_bytes().to_vec();
        wire[0] = 0x00;
        assert!(CodedPacket::from_bytes_pooled(&wire, 4, &mut pool).is_err());
        assert!(CodedPacket::from_bytes_pooled(&[], 4, &mut pool).is_err());
        assert!(CodedPacket::from_bytes_pooled(&[NC_MAGIC, 1, 0], 4, &mut pool).is_err());
        assert_eq!(pool.stats().checkouts, 0, "failed parses never checkout");
    }

    #[test]
    fn bad_magic_rejected() {
        let mut wire = sample().to_bytes().to_vec();
        wire[0] = 0x00;
        let err = CodedPacket::from_bytes(&wire, 4).unwrap_err();
        assert_eq!(err, HeaderError::BadMagic { found: 0 });
    }

    #[test]
    fn truncated_rejected() {
        let wire = sample().to_bytes();
        let err = CodedPacket::from_bytes(&wire[..6], 4).unwrap_err();
        assert!(matches!(err, HeaderError::Truncated { .. }));
        let err = NcHeader::parse(&[], 4).unwrap_err();
        assert!(matches!(err, HeaderError::Truncated { available: 0, .. }));
    }

    #[test]
    fn window_packet_roundtrip_and_classification() {
        let pkt = WindowPacket {
            session: SessionId::new(9),
            base: 0x1_0000_0007,
            coefficients: Bytes::from(vec![3, 0, 5]),
            payload: Bytes::from_static(b"window payload"),
        };
        let wire = pkt.to_bytes();
        assert_eq!(wire.len(), 13 + 3 + 14);
        assert_eq!(wire_kind(&wire), Some(WireKind::Window));
        let back = WindowPacket::from_bytes(&wire).unwrap();
        assert_eq!(back, pkt);
        let view = WindowPacketView::parse(&wire).unwrap();
        assert_eq!(view.session(), pkt.session);
        assert_eq!(view.base(), pkt.base);
        assert_eq!(view.coefficients(), &pkt.coefficients[..]);
        assert_eq!(view.payload(), &pkt.payload[..]);
        let mut pool = PayloadPool::new();
        assert_eq!(view.to_owned_pooled(&mut pool), pkt);
    }

    #[test]
    fn window_ack_roundtrip_and_classification() {
        let ack = WindowAck {
            session: SessionId::new(4),
            cumulative: 77,
            repair_wanted: 3,
        };
        let wire = ack.encode();
        assert_eq!(wire_kind(&wire), Some(WireKind::WindowAck));
        assert_eq!(WindowAck::parse(&wire).unwrap(), ack);
        assert!(WindowAck::parse(&wire[..10]).is_err());
    }

    #[test]
    fn legacy_packets_classify_as_generation() {
        let wire = sample().to_bytes();
        assert_eq!(wire_kind(&wire), Some(WireKind::Generation));
        assert_eq!(wire_kind(b"zz"), None);
        assert_eq!(wire_kind(&[NC_MAGIC]), None);
        // Unknown future kinds fall back to the legacy classification.
        assert_eq!(wire_kind(&[NC_MAGIC, 9, 0, 0]), Some(WireKind::Generation));
    }

    #[test]
    fn window_parsers_reject_foreign_and_truncated_bytes() {
        let pkt = WindowPacket {
            session: SessionId::new(1),
            base: 5,
            coefficients: Bytes::from(vec![1, 2]),
            payload: Bytes::from_static(b"xy"),
        };
        let wire = pkt.to_bytes();
        // Legacy packet fed to the windowed parser: kind mismatch.
        let legacy = sample().to_bytes();
        assert!(matches!(
            WindowPacketView::parse(&legacy),
            Err(HeaderError::BadKind { .. })
        ));
        assert!(matches!(
            WindowPacketView::parse(&wire[..12]),
            Err(HeaderError::Truncated { .. })
        ));
        assert!(matches!(
            WindowPacketView::parse(b"\x00nope"),
            Err(HeaderError::BadMagic { .. })
        ));
        // Windowed packet fed to the ack parser: kind mismatch.
        assert!(matches!(
            WindowAck::parse(&wire),
            Err(HeaderError::BadKind { .. })
        ));
    }

    #[test]
    fn header_len_matches_paper() {
        // "8 bytes plus the length of coefficients" — 12 bytes at g = 4.
        let h = sample().header().clone();
        assert_eq!(h.encoded_len(), 12);
    }
}
